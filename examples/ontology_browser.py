"""Ontology visualization: the three paradigms of survey §3.5.

Extracts a class hierarchy from schema triples and renders it as

* a node-link diagram (the VOWL / OntoGraf family),
* nested CropCircles (geometric containment),
* a NodeTrix hybrid over the instance graph (OntoTrix's idea),

plus the JSON VOWL-like spec for external renderers.
"""

import json
import os

from repro.graph import layered_layout
from repro.ontology import extract_ontology, ontology_graph, ontology_tree, vowl_spec
from repro.rdf import Graph, parse_turtle
from repro.viz import render_cropcircles, render_node_link

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")

SCHEMA = """
@prefix ex: <http://example.org/schema/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix owl: <http://www.w3.org/2002/07/owl#> .
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .

ex:Thing a owl:Class ; rdfs:label "Thing" .
ex:Agent rdfs:subClassOf ex:Thing ; rdfs:label "Agent" .
ex:Person rdfs:subClassOf ex:Agent ; rdfs:label "Person" .
ex:Artist rdfs:subClassOf ex:Person ; rdfs:label "Artist" .
ex:Scientist rdfs:subClassOf ex:Person ; rdfs:label "Scientist" .
ex:Organization rdfs:subClassOf ex:Agent ; rdfs:label "Organization" .
ex:University rdfs:subClassOf ex:Organization ; rdfs:label "University" .
ex:Place rdfs:subClassOf ex:Thing ; rdfs:label "Place" .
ex:City rdfs:subClassOf ex:Place ; rdfs:label "City" .
ex:Work rdfs:subClassOf ex:Thing ; rdfs:label "Work" .

ex:affiliatedWith a rdf:Property ; rdfs:domain ex:Person ; rdfs:range ex:Organization .
ex:bornIn a rdf:Property ; rdfs:domain ex:Person ; rdfs:range ex:City .
ex:created a rdf:Property ; rdfs:domain ex:Artist ; rdfs:range ex:Work .

ex:einstein a ex:Scientist . ex:curie a ex:Scientist .
ex:picasso a ex:Artist . ex:dali a ex:Artist . ex:kahlo a ex:Artist .
ex:mit a ex:University . ex:eth a ex:University .
ex:paris a ex:City . ex:guernica a ex:Work .
"""


def main() -> None:
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    store = Graph(parse_turtle(SCHEMA))
    summary = extract_ontology(store)
    print(f"ontology: {summary.class_count} classes, depth {summary.depth()}, "
          f"{len(summary.properties)} properties")
    for root in summary.roots:
        print(f"  root {summary.classes[root].label}: "
              f"{summary.subtree_instances(root)} instances in subtree")

    # node-link (layered) view
    graph = ontology_graph(summary)
    positions = layered_layout(graph)
    node_link_path = os.path.join(OUTPUT_DIR, "ontology_nodelink.svg")
    with open(node_link_path, "w", encoding="utf-8") as fh:
        fh.write(render_node_link(graph, positions, labels=True, width=900, height=500))
    print(f"node-link view → {node_link_path}")

    # CropCircles containment view
    crop_path = os.path.join(OUTPUT_DIR, "ontology_cropcircles.svg")
    with open(crop_path, "w", encoding="utf-8") as fh:
        fh.write(render_cropcircles(ontology_tree(summary)))
    print(f"CropCircles view → {crop_path}")

    # VOWL-like spec for external renderers
    spec_path = os.path.join(OUTPUT_DIR, "ontology_vowl.json")
    with open(spec_path, "w", encoding="utf-8") as fh:
        json.dump(vowl_spec(summary), fh, indent=2)
    print(f"VOWL-like spec → {spec_path}")


if __name__ == "__main__":
    main()
