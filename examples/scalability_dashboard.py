"""A composite dashboard over a large synthetic LOD event stream.

Puts the scalability stack on one canvas (VizBoard-style composition):

* a heatmap of 200k spatio-temporal events served by the Nanocube index,
* the event-rate time series reduced with M4,
* a streaming histogram of a measure maintained in bounded memory,
* a streamgraph of per-region activity.

Everything on screen is display-bound: no panel's element count depends on
the 200k input events.
"""

import os
import random

import numpy as np

from repro.approx import StreamingHistogram, m4_aggregate
from repro.graph import Rect
from repro.hierarchy import Nanocube
from repro.viz import (
    ChartConfig,
    DataTable,
    Panel,
    compose_dashboard,
    histogram,
    line_chart,
    render_heatmap,
    streamgraph,
)

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")
N_EVENTS = 200_000


def make_events(seed: int = 0):
    """Events clustered around three 'cities', drifting over time."""
    rng = random.Random(seed)
    centres = [(200.0, 300.0), (600.0, 600.0), (850.0, 200.0)]
    events = []
    for i in range(N_EVENTS):
        cx, cy = centres[rng.choices([0, 1, 2], weights=[5, 3, 2])[0]]
        t = rng.uniform(0, 10_000)
        events.append(
            (
                rng.gauss(cx + t * 0.01, 60.0),
                rng.gauss(cy, 60.0),
                t,
            )
        )
    return events


def main() -> None:
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    events = make_events()
    cube = Nanocube(events, max_depth=7, leaf_capacity=128)
    print(f"indexed {len(cube):,} events into {cube.node_count:,} quadtree nodes")

    # panel 1: density heatmap (fixed 24×24 lattice)
    grid = cube.density_grid(24, 24)
    heatmap_panel = Panel(render_heatmap(grid, 420, 300), title="Event density")

    # panel 2: M4-reduced event-rate series
    edges = np.linspace(0, 10_000, 201)
    world = Rect(cube.bounds.x0, cube.bounds.y0, cube.bounds.x1, cube.bounds.y1)
    rate = cube.time_histogram(world, list(edges))
    mt, mv = m4_aggregate(edges[:-1], np.asarray(rate, dtype=float), width=200)
    table = DataTable.from_rows(
        [{"t": float(t), "events": float(v)} for t, v in zip(mt, mv)]
    )
    rate_panel = Panel(
        line_chart(table, "t", "events", ChartConfig(width=420, height=300)),
        title=f"Event rate (M4: {len(rate)} bins → {len(mt)} tuples)",
    )

    # panel 3: streaming histogram of x positions (bounded memory)
    stream = StreamingHistogram(max_bins=24)
    stream.extend(e[0] for e in events)
    histogram_panel = Panel(
        histogram(stream.to_chart_bins(), ChartConfig(width=420, height=300)),
        title=f"x distribution ({len(stream)} streaming bins over {stream.total:,} values)",
    )

    # panel 4: per-region activity streamgraph
    thirds = [
        Rect(0, cube.bounds.y0, 400, cube.bounds.y1),
        Rect(400, cube.bounds.y0, 700, cube.bounds.y1),
        Rect(700, cube.bounds.y0, cube.bounds.x1, cube.bounds.y1),
    ]
    coarse_edges = list(np.linspace(0, 10_000, 21))
    series = {
        name: [float(v) for v in cube.time_histogram(region, coarse_edges)]
        for name, region in zip(("west", "centre", "east"), thirds)
    }
    stream_panel = Panel(
        streamgraph(coarse_edges[:-1], series, ChartConfig(width=420, height=300)),
        title="Activity by region",
    )

    dashboard = compose_dashboard(
        [heatmap_panel, rate_panel, histogram_panel, stream_panel],
        columns=2,
        title=f"{N_EVENTS:,} events, display-bound rendering",
    )
    path = os.path.join(OUTPUT_DIR, "scalability_dashboard.svg")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dashboard)
    print(f"dashboard → {path}")

    # the point, in numbers:
    rect_count = dashboard.count("<rect")
    print(f"total SVG rectangles on the dashboard: {rect_count} "
          f"(vs {N_EVENTS:,} raw events)")


if __name__ == "__main__":
    main()
