"""Statistical Linked Data: browsing an RDF Data Cube (survey §3.3).

The CubeViz / OpenCube workflow: discover ``qb:DataSet``s, inspect the
structure, pivot to a two-dimensional table, slice, and chart.
"""

import os

from repro.cube import (
    DataCube,
    cube_bar_chart,
    cube_line_chart,
    discover_datasets,
    pivot_table,
    rollup,
    slice_cube,
)
from repro.rdf import Graph
from repro.workload import statistical_cube

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def main() -> None:
    store = Graph(
        statistical_cube(
            {
                "year": [str(y) for y in range(2006, 2014)],
                "region": ["north", "south", "east", "west"],
                "sex": ["male", "female"],
            },
            measures=("population",),
            seed=3,
        )
    )
    (dataset,) = discover_datasets(store)
    cube = DataCube.from_store(store, dataset)
    print(f"dataset '{cube.label}': {len(cube)} observations")
    print(f"dimensions: {cube.dimension_keys}")
    print(f"measures:   {cube.measure_keys}")

    # -- pivot table (the OpenCube Browser view) -----------------------------
    rows, cols, matrix = pivot_table(
        cube, "dim-year", "dim-region", "measure-population"
    )
    print("\npopulation by year × region (sum over sex):")
    header = " | ".join(f"{c:>8}" for c in cols)
    print(f"{'year':>6} | {header}")
    for year, line in zip(rows, matrix):
        cells = " | ".join(f"{v:>8,.0f}" for v in line)
        print(f"{year:>6} | {cells}")

    # -- slice & roll-up ---------------------------------------------------------
    north = slice_cube(cube, "dim-region", "north")
    print(f"\nslice region=north: {len(north)} observations")
    by_year = rollup(north, keep=["dim-year"], aggregate="sum")
    for row in by_year[:3]:
        print(f"  {row['dim-year']}: {row['measure-population']:,.0f}")

    # -- charts ---------------------------------------------------------------------
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    bar_path = os.path.join(OUTPUT_DIR, "cube_regions.svg")
    with open(bar_path, "w", encoding="utf-8") as fh:
        fh.write(cube_bar_chart(cube, "dim-region", "measure-population"))
    line_path = os.path.join(OUTPUT_DIR, "cube_trend.svg")
    with open(line_path, "w", encoding="utf-8") as fh:
        fh.write(cube_line_chart(cube, "dim-year", "measure-population"))
    print(f"\nbar chart  → {bar_path}")
    print(f"line chart → {line_path}")


if __name__ == "__main__":
    main()
