"""City explorer: faceted + multilevel exploration of a geo/temporal dataset.

Recreates the workflow of the survey's domain-specific systems (§3.3 —
Map4rdf, Facete, SexTant) and of SynopsViz's hierarchical numeric
exploration, over a synthetic LOD city dataset:

* keyword search to find an entry point,
* faceted refinement with live counts,
* a HETree drill-down over ``ex:population`` (overview → zoom → details),
* a proportional-symbol map and a founding-year timeline.
"""

import os

from repro.explore import (
    ExplorationSession,
    FacetedBrowser,
    KeywordIndex,
    OperationKind,
)
from repro.hierarchy import hetree_for_property
from repro.rdf import Graph
from repro.viz import (
    TimelineEvent,
    extract_geo_points,
    render_point_map,
    render_timeline,
)
from repro.workload import EX, lod_dataset

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def main() -> None:
    store = Graph(lod_dataset(300, seed=42))
    session = ExplorationSession(user="demo")
    print(f"dataset: {len(store)} triples about 300 cities")

    # -- keyword entry point ------------------------------------------------
    index = KeywordIndex(store)
    hits = index.search("athens", limit=3)
    session.record(OperationKind.SEARCH, "athens", len(hits))
    print("\nkeyword search 'athens':")
    for resource, score in hits:
        print(f"  {index.label_of(resource):<14} score={score:.3f}")

    # -- faceted refinement ----------------------------------------------------
    browser = FacetedBrowser(store)
    session.record(OperationKind.OVERVIEW, "all cities", len(browser))
    facet = browser.class_facet()
    print("\nclass facet:")
    for value in facet.values[:3]:
        print(f"  {value.label:<12} {value.count}")
    browser.select_range(EX.population, 10_000, 1_000_000)
    session.record(OperationKind.FILTER, "population 10k-1M", len(browser))
    print(f"\nafter population filter: {len(browser)} cities in focus")

    # -- multilevel numeric exploration (SynopsViz / HETree) ---------------------
    tree = hetree_for_property(store, EX.population, kind="content", degree=4)
    overview = tree.overview_level(8)
    session.record(OperationKind.DRILL_DOWN, "population hierarchy", len(overview))
    print("\npopulation overview (HETree level):")
    for node in overview:
        stats = node.stats
        print(
            f"  [{stats.minimum:>12,.0f}, {stats.maximum:>12,.0f}]"
            f"  n={stats.count:<4} mean={stats.mean:,.0f}"
        )
    top = max(overview, key=lambda n: n.stats.count)
    print(
        f"drilling into the densest interval "
        f"[{top.low:,.0f}, {top.high:,.0f}) with {top.stats.count} cities"
    )
    details = tree.items_in_range(top.low, top.high)[:5]
    session.record(OperationKind.DETAILS, "densest interval", len(details))
    for value, subject in details:
        print(f"    {store.label(subject):<14} population={value:,.0f}")

    # -- map and timeline views -----------------------------------------------
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    points = extract_geo_points(store, value_predicate=EX.population)
    map_path = os.path.join(OUTPUT_DIR, "city_map.svg")
    with open(map_path, "w", encoding="utf-8") as fh:
        fh.write(render_point_map(points))

    events = []
    for subject, _, year in store.triples((None, EX.founded, None)):
        events.append(TimelineEvent(float(year.value), float(year.value), store.label(subject)))
    events.sort(key=lambda e: e.start)
    timeline_path = os.path.join(OUTPUT_DIR, "city_timeline.svg")
    with open(timeline_path, "w", encoding="utf-8") as fh:
        fh.write(render_timeline(events[:40]))

    print(f"\nmap → {map_path}")
    print(f"timeline → {timeline_path}")
    print(
        f"\nsession: {len(session)} operations, "
        f"mantra respected: {session.follows_mantra()}"
    )


if __name__ == "__main__":
    main()
