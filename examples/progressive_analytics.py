"""Billion-row habits on a laptop: the survey §2 scalability toolkit.

Demonstrates the three techniques the survey says modern systems must
combine, on a one-million-value dataset:

1. **progressive approximation** — a bounded-error mean long before the
   exact answer;
2. **M4 aggregation** — a 500k-point series reduced ~150× with no visible
   difference at chart resolution;
3. **adaptive indexing (cracking)** — range queries that get faster the
   more you explore, with zero preprocessing.
"""

import time

import numpy as np

from repro.approx import ProgressiveAggregator, m4_aggregate, pixel_error, rasterize_minmax
from repro.store import CrackedColumn, ScanColumn
from repro.workload import drilldown_ranges, numeric_values, time_series


def progressive_demo() -> None:
    values = numeric_values(1_000_000, "lognormal", seed=1)
    print("=== progressive approximation (N = 1,000,000) ===")
    true_mean = float(np.mean(values))
    agg = ProgressiveAggregator(values, seed=0)
    for estimate in agg.run(chunk_size=50_000):
        print(f"  {estimate}")
        if estimate.ci_halfwidth < 0.5:
            print(f"  stopped early at {estimate.fraction:.0%} of the data "
                  f"(true mean {true_mean:.3f})")
            break


def m4_demo() -> None:
    print("\n=== M4 pixel-perfect reduction (N = 500,000) ===")
    values = time_series(500_000, seed=2)
    times = np.arange(len(values), dtype=float)
    width, height = 800, 240
    mt, mv = m4_aggregate(times, values, width)
    full = rasterize_minmax(times, values, width, height)
    reduced = rasterize_minmax(
        mt, mv, width, height,
        t_domain=(0.0, float(len(values) - 1)),
        v_domain=(float(values.min()), float(values.max())),
    )
    print(f"  {len(values):,} points → {len(mt):,} tuples "
          f"({len(values) / len(mt):.0f}x reduction)")
    print(f"  pixel disagreement vs full rendering: {pixel_error(full, reduced):.4%}")


def cracking_demo() -> None:
    print("\n=== adaptive indexing: 150-query drill-down session ===")
    values = numeric_values(1_000_000, "uniform", seed=3)
    session = drilldown_ranges(150, seed=1)

    cracked = CrackedColumn(values)
    start = time.perf_counter()
    for lo, hi in session:
        cracked.range_count(lo, hi)
    cracked_seconds = time.perf_counter() - start

    scan = ScanColumn(values)
    start = time.perf_counter()
    for lo, hi in session:
        scan.range_count(lo, hi)
    scan_seconds = time.perf_counter() - start

    print(f"  cracking:    {cracked_seconds:.2f}s "
          f"({cracked.work_counter / 1e6:.1f}M elements partitioned, "
          f"{cracked.piece_count} pieces)")
    print(f"  always-scan: {scan_seconds:.2f}s "
          f"({scan.work_counter / 1e6:.0f}M elements scanned)")
    print(f"  speedup: {scan_seconds / cracked_seconds:.1f}x, no preprocessing phase")


if __name__ == "__main__":
    progressive_demo()
    m4_demo()
    cracking_demo()
