"""Quickstart: load Linked Data, query it, get a recommended chart.

The five-minute tour of the toolkit's core loop — the loop every system in
the survey implements some part of:

    RDF in → SPARQL → typed table → recommended visualization → SVG out
"""

import os

from repro.rdf import Graph, parse_turtle
from repro.recommend import auto_visualize, recommend
from repro.sparql import query
from repro.viz import DataTable

TURTLE = """
@prefix ex: <http://example.org/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .

ex:athens   rdfs:label "Athens" ;   ex:population 664046 ;  ex:country "Greece" .
ex:lisbon   rdfs:label "Lisbon" ;   ex:population 544851 ;  ex:country "Portugal" .
ex:bordeaux rdfs:label "Bordeaux" ; ex:population 257068 ;  ex:country "France" .
ex:helsinki rdfs:label "Helsinki" ; ex:population 658864 ;  ex:country "Finland" .
ex:zagreb   rdfs:label "Zagreb" ;   ex:population 790017 ;  ex:country "Croatia" .
"""

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def main() -> None:
    # 1. Parse Turtle into an indexed in-memory graph.
    graph = Graph(parse_turtle(TURTLE))
    print(f"loaded {len(graph)} triples")

    # 2. Ask it questions with SPARQL.
    result = query(
        graph,
        """
        PREFIX ex: <http://example.org/>
        PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
        SELECT ?name ?population WHERE {
            ?city rdfs:label ?name ; ex:population ?population .
        } ORDER BY DESC(?population)
        """,
    )
    print("\nquery result:")
    print(result.to_table())

    # 3. Let the recommender propose visualizations for the result shape.
    table = DataTable.from_rows(result.to_dicts())
    print("\nrecommendations:")
    for rec in recommend(table, max_results=3):
        print(f"  {rec.chart:<8} score={rec.score:.2f}  ({rec.explanation})")

    # 4. Or do it all in one call: query → profile → recommend → render.
    svg, choice = auto_visualize(
        graph,
        """
        PREFIX ex: <http://example.org/>
        PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
        SELECT ?name ?population WHERE {
            ?city rdfs:label ?name ; ex:population ?population .
        }
        """,
    )
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    path = os.path.join(OUTPUT_DIR, "quickstart.svg")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(svg)
    print(f"\nrendered a {choice.chart} chart → {path}")


if __name__ == "__main__":
    main()
