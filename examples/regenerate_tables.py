"""Regenerate the survey's Tables 1 and 2 from the structured catalog.

Run with ``python examples/regenerate_tables.py`` to print both feature
matrices plus the Discussion section's aggregate findings.
"""

from repro.catalog import (
    ALL_SYSTEMS,
    Category,
    approximation_gap,
    category_counts,
    render_table1,
    render_table2,
)


def main() -> None:
    print("Table 1: Generic Visualization Systems")
    print(render_table1())
    print("\n\nTable 2: Graph-based Visualization Systems")
    print(render_table2())

    print("\n\nSurvey coverage by category:")
    counts = category_counts()
    for category in Category:
        print(f"  {category.value:<48} {counts.get(category, 0):>3}")
    print(f"  {'total systems catalogued':<48} {len(ALL_SYSTEMS):>3}")

    gap = approximation_gap()
    print("\nDiscussion findings (recomputed):")
    print(f"  generic systems using approximation:  {', '.join(gap['approximation'])}")
    print(f"  generic systems computing incrementally: {', '.join(gap['incremental'])}")
    print(f"  generic systems using external memory:   {', '.join(gap['disk'])}")
    print(
        "  graph systems not bound to main memory:  "
        + ", ".join(gap["graph_systems_with_memory_independence"])
    )


if __name__ == "__main__":
    main()
