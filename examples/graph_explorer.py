"""Graph explorer: the §3.4/§4 pipeline for large RDF graphs.

The survey's prescription for graphs too big to draw: cluster → abstract →
render the super-graph, expand on demand, bundle the edges, and keep the
geometry disk-resident behind window queries (graphVizdb). This example
runs the whole chain on a 3,000-node power-law graph and writes three SVGs.
"""

import os
import tempfile

from repro.graph import (
    AbstractionPyramid,
    DiskGraphStore,
    PropertyGraph,
    Rect,
    SupernodeView,
    fruchterman_reingold,
    hierarchical_edge_bundling,
    ink_ratio,
    louvain_communities,
    modularity,
    pagerank,
)
from repro.rdf import Graph
from repro.viz import render_node_link, render_nodetrix
from repro.workload import powerlaw_link_graph

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")
N = 3_000


def main() -> None:
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    graph = PropertyGraph.from_store(Graph(powerlaw_link_graph(N, seed=7)))
    print(f"graph: {graph.node_count} nodes, {graph.edge_count} edges")

    # -- cluster & abstract ---------------------------------------------------
    communities = louvain_communities(graph, seed=0)
    q = modularity(graph, communities)
    print(f"Louvain: {max(communities) + 1} communities, modularity {q:.3f}")

    pyramid = AbstractionPyramid(graph, seed=0)
    for level in range(pyramid.height):
        print(
            f"  level {level}: {pyramid.levels[level].node_count} nodes, "
            f"{pyramid.levels[level].edge_count} edges"
        )

    # -- render the abstracted view, then expand one super-node ---------------
    top_level = pyramid.height - 1
    supergraph = pyramid.levels[top_level]
    positions = fruchterman_reingold(supergraph, iterations=60, seed=1)
    overview_path = os.path.join(OUTPUT_DIR, "graph_overview.svg")
    with open(overview_path, "w", encoding="utf-8") as fh:
        fh.write(render_node_link(supergraph, positions, labels=False))
    print(f"abstracted overview → {overview_path}")

    view = SupernodeView(pyramid, level=1)
    nodes, edges = view.visible_elements()
    biggest = max(
        pyramid.membership[1], key=lambda c: len(pyramid.membership[1][c])
    )
    view.expand(biggest)
    expanded_nodes, expanded_edges = view.visible_elements()
    print(
        f"expand super-node {biggest}: {len(nodes)}→{len(expanded_nodes)} visible "
        f"nodes, {edges}→{expanded_edges} visible edges"
    )

    # -- bundle edges on a mid-sized detail view --------------------------------
    detail = graph.subgraph(pyramid.membership[1][biggest])
    detail_pos = fruchterman_reingold(detail, iterations=40, seed=2)
    detail_pyramid = AbstractionPyramid(detail, seed=0)
    bundles = hierarchical_edge_bundling(detail, detail_pos, detail_pyramid, beta=0.85)
    ink = ink_ratio(bundles, detail, detail_pos)
    bundled_path = os.path.join(OUTPUT_DIR, "graph_bundled.svg")
    with open(bundled_path, "w", encoding="utf-8") as fh:
        fh.write(render_node_link(detail, detail_pos, bundles=bundles))
    print(f"bundled detail view (ink ratio {ink:.2f}) → {bundled_path}")

    # -- NodeTrix hybrid of the densest communities ------------------------------
    nodetrix_path = os.path.join(OUTPUT_DIR, "graph_nodetrix.svg")
    sample = graph.subgraph(range(300))
    with open(nodetrix_path, "w", encoding="utf-8") as fh:
        fh.write(render_nodetrix(sample, seed=0))
    print(f"NodeTrix hybrid → {nodetrix_path}")

    # -- disk-resident viewport exploration (graphVizdb architecture) -------------
    full_positions = fruchterman_reingold(graph, iterations=15, seed=3)
    with tempfile.TemporaryDirectory() as tmp:
        store = DiskGraphStore.build(graph, full_positions, tmp, tiles=12)
        window = Rect(300.0, 300.0, 700.0, 700.0)
        visible_nodes, visible_edges = store.window_query(window)
        print(
            f"window query: {len(visible_nodes)} nodes / {len(visible_edges)} edges "
            f"visible; resident {store.resident_bytes // 1024} KiB "
            f"of {store.disk_bytes // 1024} KiB on disk"
        )
        store.close()

    # -- who matters: PageRank top 5 ---------------------------------------------
    ranks = pagerank(graph)
    top = sorted(range(graph.node_count), key=lambda v: -ranks[v])[:5]
    print("top-5 PageRank hubs:")
    for v in top:
        print(f"  {graph.node_at(v)}  rank={ranks[v]:.4f} degree={graph.degree(v)}")


if __name__ == "__main__":
    main()
