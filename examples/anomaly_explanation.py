"""Assisted exploration: explaining anomalies and steering by example.

Survey §2's "Variety of Tasks & Users" pillar: beyond rendering, modern
systems *assist* — they explain surprising aggregates (Scorpion [141]) and
learn what the user is looking for from examples ([37]). Both on a sensor
scenario:

1. an hourly average-temperature bar chart shows two anomalous hours;
   `explain_outliers` pinpoints the faulty sensor;
2. the analyst marks a few readings as interesting; `ExampleSteering`
   learns the numeric region and proposes what to inspect next.
"""

import random

from repro.explain import ExampleSteering, explain_outliers
from repro.viz import ChartConfig, DataTable, bar_chart


def build_readings(seed: int = 0) -> list[dict]:
    rng = random.Random(seed)
    rows = []
    for hour in range(8):
        for sensor in ("s1", "s2", "s3", "s4"):
            for _ in range(12):
                temperature = rng.gauss(21.0, 0.7)
                if sensor == "s2" and hour >= 6:  # the injected fault
                    temperature += 35.0
                rows.append(
                    {
                        "hour": hour,
                        "sensor": sensor,
                        "voltage": round(rng.gauss(3.3, 0.05), 3),
                        "temperature": round(temperature, 2),
                    }
                )
    return rows


def main() -> None:
    rows = build_readings()

    # the aggregate view the user is looking at
    hourly: dict[int, list[float]] = {}
    for row in rows:
        hourly.setdefault(row["hour"], []).append(row["temperature"])
    table = DataTable.from_rows(
        [{"hour": str(h), "avg_temp": sum(v) / len(v)} for h, v in sorted(hourly.items())]
    )
    svg = bar_chart(table, "hour", "avg_temp", ChartConfig(title="Avg temperature by hour"))
    print("hourly averages:")
    for row in table.rows:
        marker = "  ← anomalous" if float(row["avg_temp"]) > 25 else ""
        print(f"  hour {row['hour']}: {float(row['avg_temp']):5.1f}°C{marker}")

    # 1. explain the anomaly
    explanations = explain_outliers(
        rows,
        group_by="hour",
        measure="temperature",
        outlier_groups=[6, 7],
        direction="high",
    )
    print("\nwhy are hours 6-7 hot? top explanations:")
    for explanation in explanations[:3]:
        print(f"  {explanation}")

    # 2. steer by example toward the interesting readings
    steering = ExampleSteering(["temperature", "voltage"])
    hot = [r for r in rows if r["temperature"] > 40]
    cold = [r for r in rows if r["temperature"] < 25]
    for row in hot[:3]:
        steering.label(row, relevant=True)
    for row in cold[:3]:
        steering.label(row, relevant=False)
    region = steering.learn_region()
    print(f"\nlearned interest region: {region.describe()}")
    print(f"training accuracy: {steering.accuracy(region):.0%}")
    candidates = steering.next_candidates(rows, k=3, region=region)
    print("next readings to inspect:")
    for row in candidates:
        print(f"  sensor={row['sensor']} hour={row['hour']} temp={row['temperature']}")
    print(f"\nas a SPARQL filter: FILTER ({region.to_sparql_filter({'temperature': 't'})})")


if __name__ == "__main__":
    main()
