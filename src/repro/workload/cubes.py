"""RDF Data Cube (QB vocabulary) workload generator.

Produces statistical datasets shaped like the ones the survey's Section 3.3
systems (CubeViz, OpenCube, LDCE) browse: a data structure definition with
dimensions/measures, plus observations over the dimension cross product.
"""

from __future__ import annotations

import random
from typing import Iterator, Sequence

from ..rdf.namespace import Namespace
from ..rdf.terms import IRI, Literal, Triple
from ..rdf.vocab import QB, RDF, RDFS

__all__ = ["statistical_cube", "CUBE"]

CUBE = Namespace("http://example.org/cube/")


def statistical_cube(
    dimensions: dict[str, Sequence[str]] | None = None,
    measures: Sequence[str] = ("population",),
    seed: int = 0,
    dataset_name: str = "demographics",
) -> Iterator[Triple]:
    """Generate a full QB dataset: DSD, component specs, and observations.

    ``dimensions`` maps dimension name → list of member labels, e.g.
    ``{"year": ["2010", "2011"], "region": ["north", "south"]}``; one
    observation is emitted per member combination with a random value per
    measure.
    """
    if dimensions is None:
        dimensions = {
            "year": [str(y) for y in range(2008, 2014)],
            "region": ["north", "south", "east", "west"],
            "sex": ["male", "female"],
        }
    rng = random.Random(seed)
    dataset = CUBE[dataset_name]
    dsd = CUBE[f"{dataset_name}-dsd"]

    yield Triple(dataset, RDF.type, QB.DataSet)
    yield Triple(dataset, RDFS.label, Literal(dataset_name))
    yield Triple(dataset, QB.structure, dsd)
    yield Triple(dsd, RDF.type, QB.DataStructureDefinition)

    dimension_iris: dict[str, IRI] = {}
    for name in dimensions:
        dim = CUBE[f"dim-{name}"]
        dimension_iris[name] = dim
        component = CUBE[f"{dataset_name}-comp-{name}"]
        yield Triple(dsd, QB.component, component)
        yield Triple(component, QB.dimension, dim)
        yield Triple(dim, RDF.type, QB.DimensionProperty)
        yield Triple(dim, RDFS.label, Literal(name))

    measure_iris: dict[str, IRI] = {}
    for name in measures:
        measure = CUBE[f"measure-{name}"]
        measure_iris[name] = measure
        component = CUBE[f"{dataset_name}-comp-{name}"]
        yield Triple(dsd, QB.component, component)
        yield Triple(component, QB.measure, measure)
        yield Triple(measure, RDF.type, QB.MeasureProperty)
        yield Triple(measure, RDFS.label, Literal(name))

    # Observations over the dimension cross product.
    names = list(dimensions)
    combos: list[tuple[str, ...]] = [()]
    for name in names:
        combos = [prior + (member,) for prior in combos for member in dimensions[name]]
    for index, combo in enumerate(combos):
        observation = CUBE[f"{dataset_name}-obs{index}"]
        yield Triple(observation, RDF.type, QB.Observation)
        yield Triple(observation, QB.dataSet, dataset)
        for name, member in zip(names, combo):
            yield Triple(observation, dimension_iris[name], Literal(member))
        for name in measures:
            value = round(rng.lognormvariate(8, 0.8), 1)
            yield Triple(observation, measure_iris[name], Literal(value))
