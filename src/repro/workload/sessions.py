"""Exploration-session trace generators.

Section 2 defines the exploration scenario: "users perform a sequence of
operations, in which the result of each operation determines the
formulation of the next operation". The caching (C9), cracking (C8), and
viewport (C5) benchmarks need exactly such sequences — with *locality*,
because real pan/zoom/drill interactions move between neighbouring regions,
not random ones.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["PanZoomStep", "pan_zoom_trace", "drilldown_ranges", "tile_requests"]


@dataclass(frozen=True)
class PanZoomStep:
    """One viewport interaction: the visible world-space window."""

    x: float
    y: float
    width: float
    height: float
    zoom_level: int

    @property
    def bounds(self) -> tuple[float, float, float, float]:
        return (self.x, self.y, self.x + self.width, self.y + self.height)


def pan_zoom_trace(
    n_steps: int,
    world: float = 1000.0,
    start_view: float = 250.0,
    seed: int = 0,
    pan_fraction: float = 0.25,
) -> list[PanZoomStep]:
    """A session of pans (75%) and zooms (25%) with spatial locality.

    Pans move the window by ``pan_fraction`` of its size in a random
    direction; zooms halve or double the window around its centre. The
    window is clamped to the ``[0, world]²`` extent.
    """
    rng = random.Random(seed)
    x, y = (world - start_view) / 2, (world - start_view) / 2
    size = start_view
    zoom = 0
    steps: list[PanZoomStep] = [PanZoomStep(x, y, size, size, zoom)]
    for _ in range(n_steps - 1):
        if rng.random() < 0.25:  # zoom
            if rng.random() < 0.5 and size > world / 64:
                size, zoom = size / 2, zoom + 1
                x += size / 2
                y += size / 2
            elif size < world / 2:
                x -= size / 2
                y -= size / 2
                size, zoom = size * 2, zoom - 1
        else:  # pan
            dx = rng.choice([-1, 0, 1]) * size * pan_fraction
            dy = rng.choice([-1, 0, 1]) * size * pan_fraction
            x += dx
            y += dy
        x = min(max(x, 0.0), world - size)
        y = min(max(y, 0.0), world - size)
        steps.append(PanZoomStep(x, y, size, size, zoom))
    return steps


def tile_requests(
    trace: list[PanZoomStep], tile_size: float = 125.0
) -> list[list[tuple[int, int]]]:
    """Translate a pan/zoom trace into per-step lists of needed tile ids."""
    requests: list[list[tuple[int, int]]] = []
    for step in trace:
        x0, y0, x1, y1 = step.bounds
        tiles = [
            (tx, ty)
            for tx in range(int(x0 // tile_size), int(x1 // tile_size) + 1)
            for ty in range(int(y0 // tile_size), int(y1 // tile_size) + 1)
        ]
        requests.append(tiles)
    return requests


def drilldown_ranges(
    n_queries: int,
    low: float = 0.0,
    high: float = 1000.0,
    seed: int = 0,
    focus_factor: float = 0.6,
    refocus_probability: float = 0.15,
) -> list[tuple[float, float]]:
    """A drill-down range-query session (the cracking workload of [144]).

    Each query narrows the previous range by ``focus_factor`` around a
    random point inside it; occasionally the user re-focuses on a fresh
    region (``refocus_probability``), restarting the drill-down.
    """
    rng = random.Random(seed)
    queries: list[tuple[float, float]] = []
    lo, hi = low, high
    for _ in range(n_queries):
        if hi - lo < (high - low) / 1e4 or rng.random() < refocus_probability:
            centre = rng.uniform(low, high)
            half = (high - low) * rng.uniform(0.1, 0.3)
            lo, hi = max(low, centre - half), min(high, centre + half)
        span = (hi - lo) * focus_factor
        anchor = rng.uniform(lo, hi - span) if span < hi - lo else lo
        lo, hi = anchor, anchor + span
        queries.append((lo, hi))
    return queries
