"""Synthetic Linked Data graph generators.

The surveyed systems are evaluated on real WoD sources (DBpedia,
LinkedGeoData, university data clouds, ...) that are not available offline.
These generators produce RDF with the same *structural* characteristics the
exploration techniques are sensitive to:

* **power-law degree distribution** — LOD link graphs are scale-free, which
  is exactly what stresses graph layout, clustering, and sampling;
* **typed entities with mixed-datatype property tables** — what facet
  extraction, recommendation, and the HETree consume;
* **labels** — what keyword search indexes.

All generators are deterministic given a ``seed``.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..rdf.namespace import Namespace
from ..rdf.terms import IRI, Literal, Triple
from ..rdf.vocab import FOAF, RDF, RDFS, XSD

__all__ = ["EX", "social_graph", "typed_entities", "powerlaw_link_graph", "lod_dataset"]

EX = Namespace("http://example.org/data/")

_FIRST_NAMES = [
    "Alice", "Bob", "Carol", "Dave", "Eve", "Frank", "Grace", "Heidi",
    "Ivan", "Judy", "Mallory", "Niaj", "Olivia", "Peggy", "Rupert", "Sybil",
    "Trent", "Uma", "Victor", "Wendy",
]

_CITY_NAMES = [
    "Athens", "Bordeaux", "Cairo", "Dublin", "Edinburgh", "Florence",
    "Geneva", "Helsinki", "Istanbul", "Jakarta", "Kyoto", "Lisbon",
]


def powerlaw_link_graph(
    n_nodes: int,
    edges_per_node: int = 2,
    seed: int = 0,
    predicate: IRI | None = None,
    node_factory=None,
) -> Iterator[Triple]:
    """Preferential-attachment (Barabási–Albert style) link triples.

    Node ``i`` attaches to ``edges_per_node`` earlier nodes chosen with
    probability proportional to their current degree, yielding the heavy-
    tailed degree distribution typical of LOD link structures.
    ``node_factory(i)`` customizes node IRIs (default ``ex:node<i>``).
    """
    if n_nodes < 2:
        raise ValueError("need at least 2 nodes")
    rng = random.Random(seed)
    predicate = predicate or EX.linksTo
    make_node = node_factory or (lambda i: EX[f"node{i}"])
    # repeated-nodes trick: sampling uniformly from this list is sampling
    # proportionally to degree.
    degree_pool: list[int] = [0]
    for node in range(1, n_nodes):
        m = min(edges_per_node, node)
        targets: set[int] = set()
        while len(targets) < m:
            targets.add(rng.choice(degree_pool))
        for target in targets:
            yield Triple(make_node(node), predicate, make_node(target))
            degree_pool.append(target)
            degree_pool.append(node)


def social_graph(n_people: int, seed: int = 0) -> Iterator[Triple]:
    """A FOAF-style social network with names, ages, and knows-links."""
    rng = random.Random(seed)
    for i in range(n_people):
        person = EX[f"person{i}"]
        name = f"{rng.choice(_FIRST_NAMES)} {chr(65 + i % 26)}."
        yield Triple(person, RDF.type, FOAF.Person)
        yield Triple(person, FOAF.name, Literal(name))
        yield Triple(person, RDFS.label, Literal(name))
        yield Triple(person, FOAF.age, Literal(rng.randint(18, 90)))
    yield from powerlaw_link_graph(
        max(n_people, 2),
        edges_per_node=2,
        seed=seed + 1,
        predicate=FOAF.knows,
        node_factory=lambda i: EX[f"person{i}"],
    )


def typed_entities(
    n_entities: int,
    n_classes: int = 5,
    numeric_properties: int = 2,
    categorical_properties: int = 2,
    seed: int = 0,
) -> Iterator[Triple]:
    """Entities spread over classes with numeric + categorical attributes.

    Class sizes are Zipf-distributed (class 0 is the largest), mirroring how
    LOD class extensions are skewed; categorical values are drawn from small
    per-property vocabularies so facet counts are interesting.
    """
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) for rank in range(n_classes)]
    categories = {
        p: [f"value{p}_{v}" for v in range(3 + p)] for p in range(categorical_properties)
    }
    for i in range(n_entities):
        entity = EX[f"entity{i}"]
        cls = rng.choices(range(n_classes), weights=weights)[0]
        yield Triple(entity, RDF.type, EX[f"Class{cls}"])
        yield Triple(entity, RDFS.label, Literal(f"Entity {i}"))
        for p in range(numeric_properties):
            value = rng.gauss(50 * (p + 1), 10 * (p + 1))
            yield Triple(entity, EX[f"numeric{p}"], Literal(round(value, 3)))
        for p in range(categorical_properties):
            yield Triple(entity, EX[f"category{p}"], Literal(rng.choice(categories[p])))


def lod_dataset(
    n_entities: int = 200,
    seed: int = 0,
    with_spatial: bool = True,
    with_temporal: bool = True,
) -> Iterator[Triple]:
    """A mixed LOD-like dataset touching every data type of survey Table 1.

    Numeric (population), temporal (founding year), spatial (lat/long),
    hierarchical (rdfs:subClassOf chain), and graph (links) — the N/T/S/H/G
    columns of the survey's generic-systems comparison.
    """
    rng = random.Random(seed)
    geo = Namespace("http://www.w3.org/2003/01/geo/wgs84_pos#")
    # A small class hierarchy.
    yield Triple(EX.City, RDFS.subClassOf, EX.Settlement)
    yield Triple(EX.Settlement, RDFS.subClassOf, EX.Place)
    for i in range(n_entities):
        city = EX[f"city{i}"]
        name = f"{rng.choice(_CITY_NAMES)}-{i}"
        yield Triple(city, RDF.type, EX.City)
        yield Triple(city, RDFS.label, Literal(name))
        yield Triple(city, EX.population, Literal(int(rng.lognormvariate(10, 1.2))))
        if with_temporal:
            year = rng.randint(800, 2000)
            yield Triple(
                city, EX.founded, Literal(str(year), datatype=str(XSD.gYear))
            )
        if with_spatial:
            yield Triple(city, geo.lat, Literal(round(rng.uniform(-60, 70), 5)))
            yield Triple(city, geo.long, Literal(round(rng.uniform(-180, 180), 5)))
    yield from powerlaw_link_graph(
        max(n_entities, 2),
        edges_per_node=2,
        seed=seed + 7,
        predicate=EX.twinnedWith,
        node_factory=lambda i: EX[f"city{i}"],
    )
