"""Synthetic LOD workload generators (the paper's evaluation substrate).

Real WoD sources (DBpedia, LinkedGeoData, ...) are unavailable offline; the
generators here reproduce the structural properties the surveyed techniques
are sensitive to. See DESIGN.md's substitution table.
"""

from .cubes import CUBE, statistical_cube
from .properties import DISTRIBUTIONS, numeric_values, temporal_values, time_series
from .rdf_graphs import EX, lod_dataset, powerlaw_link_graph, social_graph, typed_entities
from .sessions import PanZoomStep, drilldown_ranges, pan_zoom_trace, tile_requests

__all__ = [
    "CUBE",
    "DISTRIBUTIONS",
    "EX",
    "PanZoomStep",
    "drilldown_ranges",
    "lod_dataset",
    "numeric_values",
    "pan_zoom_trace",
    "powerlaw_link_graph",
    "social_graph",
    "statistical_cube",
    "temporal_values",
    "tile_requests",
    "time_series",
    "typed_entities",
]
