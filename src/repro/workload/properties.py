"""Numeric, temporal, and time-series value generators.

The approximation stack (:mod:`repro.approx`) and the HETree
(:mod:`repro.hierarchy`) are exercised over controlled value distributions:
skew is what separates equi-width from equi-depth binning, and burstiness is
what separates M4 from uniform downsampling.
"""

from __future__ import annotations

import math
import random
from typing import Callable

import numpy as np

__all__ = [
    "numeric_values",
    "temporal_values",
    "time_series",
    "DISTRIBUTIONS",
]


def _uniform(rng: random.Random, n: int) -> list[float]:
    return [rng.uniform(0, 1000) for _ in range(n)]


def _normal(rng: random.Random, n: int) -> list[float]:
    return [rng.gauss(500, 100) for _ in range(n)]


def _lognormal(rng: random.Random, n: int) -> list[float]:
    return [rng.lognormvariate(5, 1.0) for _ in range(n)]


def _zipf_like(rng: random.Random, n: int) -> list[float]:
    # Pareto tail: heavily skewed, many small values, few huge ones.
    return [rng.paretovariate(1.5) * 10 for _ in range(n)]


def _bimodal(rng: random.Random, n: int) -> list[float]:
    return [
        rng.gauss(200, 30) if rng.random() < 0.5 else rng.gauss(800, 30)
        for _ in range(n)
    ]


DISTRIBUTIONS: dict[str, Callable[[random.Random, int], list[float]]] = {
    "uniform": _uniform,
    "normal": _normal,
    "lognormal": _lognormal,
    "zipf": _zipf_like,
    "bimodal": _bimodal,
}


def numeric_values(n: int, distribution: str = "uniform", seed: int = 0) -> np.ndarray:
    """``n`` floats from a named distribution (see :data:`DISTRIBUTIONS`)."""
    try:
        generator = DISTRIBUTIONS[distribution]
    except KeyError:
        raise ValueError(
            f"unknown distribution {distribution!r}; "
            f"choose from {sorted(DISTRIBUTIONS)}"
        ) from None
    return np.asarray(generator(random.Random(seed), n))


def temporal_values(
    n: int,
    start_year: int = 1900,
    end_year: int = 2020,
    seed: int = 0,
    recency_bias: float = 2.0,
) -> list[int]:
    """``n`` years, skewed toward recent dates (as LOD timestamps are).

    ``recency_bias > 1`` concentrates mass near ``end_year``; ``1.0`` is
    uniform.
    """
    rng = random.Random(seed)
    span = end_year - start_year
    return [
        start_year + int(span * (rng.random() ** (1.0 / recency_bias)))
        for _ in range(n)
    ]


def time_series(
    n: int,
    seed: int = 0,
    trend: float = 0.01,
    noise: float = 1.0,
    spike_probability: float = 0.001,
    spike_scale: float = 40.0,
) -> np.ndarray:
    """A random-walk series with occasional spikes.

    Spikes are the features a *visually faithful* downsampling (M4, C4
    benchmark) must preserve and a uniform downsampling tends to miss.
    """
    rng = np.random.default_rng(seed)
    steps = rng.normal(loc=trend, scale=noise, size=n)
    series = np.cumsum(steps)
    spikes = rng.random(n) < spike_probability
    series[spikes] += rng.choice([-1.0, 1.0], size=int(spikes.sum())) * spike_scale
    # gentle seasonality so zoomed-in windows have structure too
    series += 5.0 * np.sin(np.arange(n) * (2 * math.pi / max(n // 8, 1)))
    return series
