"""Streaming (one-pass, bounded-memory) summaries for dynamic data.

Survey §2: "in other cases ... data is received in a stream fashion",
which "prevents a preprocessing phase". Summaries must then be maintained
online in bounded memory:

* :class:`StreamingHistogram` — a fixed-budget histogram that adapts its
  bins as the value domain grows (nearest-pair bin merging, the
  Ben-Haim & Tom-Tov streaming histogram used by decision-tree learners);
* :class:`StreamingExtremes` — running min/max/top-k without storage.

Together with :func:`repro.approx.sampling.reservoir_sample` and the
Welford statistics in :class:`repro.hierarchy.stats.NodeStats`, these cover
the summaries a live endpoint view needs.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, insort

__all__ = ["StreamingHistogram", "StreamingExtremes"]


class StreamingHistogram:
    """Fixed-budget online histogram (Ben-Haim & Tom-Tov).

    Maintains at most ``max_bins`` (centroid, count) pairs; inserting a new
    value adds a unit bin and, on overflow, merges the two closest
    centroids. ``counts_between`` interpolates like the original paper.
    """

    def __init__(self, max_bins: int = 64) -> None:
        if max_bins < 2:
            raise ValueError("max_bins must be >= 2")
        self.max_bins = max_bins
        self._bins: list[list[float]] = []  # sorted [centroid, count]
        self.total = 0

    def add(self, value: float) -> None:
        value = float(value)
        self.total += 1
        index = bisect_left(self._bins, [value, float("-inf")])
        if index < len(self._bins) and self._bins[index][0] == value:
            self._bins[index][1] += 1
        else:
            insort(self._bins, [value, 1.0])
            if len(self._bins) > self.max_bins:
                self._merge_closest()

    def extend(self, values) -> None:
        for value in values:
            self.add(value)

    def merge(self, other: "StreamingHistogram") -> None:
        """Absorb another histogram (Ben-Haim & Tom-Tov's parallel merge):
        pool both bin lists, then re-merge nearest centroids until back
        under this histogram's budget. Order-insensitive up to the usual
        centroid-approximation error, so shard partials compose."""
        if not isinstance(other, StreamingHistogram):
            raise ValueError(
                f"cannot merge {type(other).__name__} into StreamingHistogram"
            )
        for centroid, count in other._bins:
            index = bisect_left(self._bins, [centroid, float("-inf")])
            if index < len(self._bins) and self._bins[index][0] == centroid:
                self._bins[index][1] += count
            else:
                insort(self._bins, [centroid, count])
        self.total += other.total
        while len(self._bins) > self.max_bins:
            self._merge_closest()

    def _merge_closest(self) -> None:
        gaps = [
            (self._bins[i + 1][0] - self._bins[i][0], i)
            for i in range(len(self._bins) - 1)
        ]
        _, i = min(gaps)
        a, b = self._bins[i], self._bins[i + 1]
        merged_count = a[1] + b[1]
        centroid = (a[0] * a[1] + b[0] * b[1]) / merged_count
        self._bins[i] = [centroid, merged_count]
        del self._bins[i + 1]

    @property
    def bins(self) -> list[tuple[float, float]]:
        """Sorted (centroid, count) pairs."""
        return [(c, n) for c, n in self._bins]

    def count_below(self, value: float) -> float:
        """Estimated number of seen values ≤ ``value`` (interpolated)."""
        if not self._bins:
            return 0.0
        if value < self._bins[0][0]:
            return 0.0
        if value >= self._bins[-1][0]:
            return float(self.total)
        total = 0.0
        for i in range(len(self._bins) - 1):
            c0, n0 = self._bins[i]
            c1, n1 = self._bins[i + 1]
            if value < c0:
                break
            if value >= c1:
                total += n0
                continue
            # inside the trapezoid between centroids: linear interpolation
            fraction = (value - c0) / (c1 - c0)
            total += n0 / 2.0 + (n0 / 2.0 + n1 / 2.0 * fraction) * fraction
            break
        return min(total + self._bins[0][1] / 2.0, float(self.total))

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile via inverse interpolation."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self._bins:
            raise ValueError("empty histogram")
        target = q * self.total
        lo = self._bins[0][0]
        hi = self._bins[-1][0]
        if hi == lo:
            return lo
        for _ in range(40):  # bisection on the CDF estimate
            mid = (lo + hi) / 2.0
            if self.count_below(mid) < target:
                lo = mid
            else:
                hi = mid
        return (lo + hi) / 2.0

    def to_chart_bins(self):
        """Adapter to :class:`repro.approx.binning.Bin` for the histogram
        renderer (approximate counts, exact budget)."""
        from ..hierarchy.stats import NodeStats
        from .binning import Bin

        result = []
        for i, (centroid, count) in enumerate(self._bins):
            low = centroid if i == 0 else (self._bins[i - 1][0] + centroid) / 2.0
            high = centroid if i == len(self._bins) - 1 else (
                centroid + self._bins[i + 1][0]
            ) / 2.0
            stats = NodeStats()
            stats.count = int(round(count))
            stats.minimum = low
            stats.maximum = high
            stats.mean = centroid
            result.append(Bin(low, high, int(round(count)), stats))
        return result

    def __len__(self) -> int:
        return len(self._bins)


class StreamingExtremes:
    """Running min / max / top-k over a stream, O(k) memory."""

    def __init__(self, k: int = 10) -> None:
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self._top: list[float] = []  # min-heap of the k largest
        self.count = 0

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if len(self._top) < self.k:
            heapq.heappush(self._top, value)
        elif value > self._top[0]:
            heapq.heapreplace(self._top, value)

    def extend(self, values) -> None:
        for value in values:
            self.add(value)

    @property
    def top_k(self) -> list[float]:
        """The k largest values seen, descending."""
        return sorted(self._top, reverse=True)
