"""Aggregation-based data reduction: binning.

The survey's second approximation family (Section 2): "(2) aggregation
(e.g., binning, clustering) [42, 25, 74, 73, 97, 138, ...]". One-dimensional
equi-width and equi-depth binning feed histograms and bar charts; the 2-D
grid binning is the imMens [97] / bin-summarise-smooth [138] primitive
behind heatmaps that render millions of points as a fixed pixel lattice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..hierarchy.stats import NodeStats

__all__ = ["Bin", "equi_width_bins", "equi_depth_bins", "grid_bins_2d"]


@dataclass(frozen=True)
class Bin:
    """One histogram bucket: interval, count, and summary statistics."""

    low: float
    high: float
    count: int
    stats: NodeStats

    @property
    def width(self) -> float:
        return self.high - self.low


def equi_width_bins(
    values: Sequence[float] | np.ndarray,
    n_bins: int,
    domain: tuple[float, float] | None = None,
) -> list[Bin]:
    """``n_bins`` equal-width buckets (the histogram default).

    The final bucket is closed on the right so the domain maximum lands in
    a bin.
    """
    if n_bins < 1:
        raise ValueError("n_bins must be positive")
    array = np.asarray(values, dtype=np.float64)
    if domain is not None:
        low, high = domain
    elif len(array):
        low, high = float(array.min()), float(array.max())
    else:
        low, high = 0.0, 1.0
    if high <= low:
        high = low + 1.0
    edges = np.linspace(low, high, n_bins + 1)
    indices = np.clip(((array - low) / (high - low) * n_bins).astype(int), 0, n_bins - 1)
    bins: list[Bin] = []
    for b in range(n_bins):
        members = array[indices == b]
        bins.append(
            Bin(float(edges[b]), float(edges[b + 1]), int(len(members)), NodeStats.of(members))
        )
    return bins


def equi_depth_bins(values: Sequence[float] | np.ndarray, n_bins: int) -> list[Bin]:
    """``n_bins`` buckets holding ~equal numbers of values (quantile bins).

    Robust to skew: a Zipfian attribute gets narrow buckets where the mass
    is and wide ones in the tail, keeping every bar readable.
    """
    if n_bins < 1:
        raise ValueError("n_bins must be positive")
    array = np.sort(np.asarray(values, dtype=np.float64))
    if not len(array):
        return []
    boundaries = [int(round(i * len(array) / n_bins)) for i in range(n_bins + 1)]
    bins: list[Bin] = []
    for b in range(n_bins):
        start, end = boundaries[b], boundaries[b + 1]
        members = array[start:end]
        if not len(members):
            continue
        low = float(members[0])
        # The next bin's first value is the exclusive upper edge when there
        # is one, so bin intervals tile the domain without gaps.
        high = float(array[end]) if end < len(array) else float(members[-1])
        bins.append(Bin(low, high, int(len(members)), NodeStats.of(members)))
    return bins


def grid_bins_2d(
    points: Sequence[tuple[float, float]] | np.ndarray,
    nx: int,
    ny: int,
    domain: tuple[float, float, float, float] | None = None,
) -> np.ndarray:
    """Count matrix of shape ``(ny, nx)`` over the bounding box.

    The heatmap primitive: output size is fixed by the *display*, not the
    data, which is precisely the survey's visual-scalability requirement.
    """
    if nx < 1 or ny < 1:
        raise ValueError("grid dimensions must be positive")
    array = np.asarray(points, dtype=np.float64)
    counts = np.zeros((ny, nx), dtype=np.int64)
    if array.size == 0:
        return counts
    if domain is not None:
        x0, y0, x1, y1 = domain
    else:
        x0, y0 = array[:, 0].min(), array[:, 1].min()
        x1, y1 = array[:, 0].max(), array[:, 1].max()
    dx = (x1 - x0) or 1.0
    dy = (y1 - y0) or 1.0
    ix = np.clip(((array[:, 0] - x0) / dx * nx).astype(int), 0, nx - 1)
    iy = np.clip(((array[:, 1] - y0) / dy * ny).astype(int), 0, ny - 1)
    np.add.at(counts, (iy, ix), 1)
    return counts
