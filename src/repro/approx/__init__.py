"""Approximation (data reduction) techniques — survey Section 2.

Sampling/filtering (:mod:`repro.approx.sampling`), aggregation/binning
(:mod:`repro.approx.binning`), pixel-perfect time-series reduction
(:mod:`repro.approx.m4`), and progressive approximate aggregation with
confidence intervals (:mod:`repro.approx.progressive`).
"""

from .diversify import diversity_score, euclidean, maxmin_diversify
from .binning import Bin, equi_depth_bins, equi_width_bins, grid_bins_2d
from .m4 import m4_aggregate, pixel_error, rasterize_minmax, uniform_downsample
from .progressive import ProgressiveAggregator, ProgressiveEstimate, StreamingMoments
from .streaming import StreamingExtremes, StreamingHistogram
from .sampling import (
    reservoir_sample,
    stratified_sample,
    uniform_sample,
    visualization_aware_sample,
    weighted_sample,
)

__all__ = [
    "Bin",
    "ProgressiveAggregator",
    "ProgressiveEstimate",
    "StreamingExtremes",
    "StreamingHistogram",
    "StreamingMoments",
    "diversity_score",
    "equi_depth_bins",
    "equi_width_bins",
    "grid_bins_2d",
    "euclidean",
    "m4_aggregate",
    "maxmin_diversify",
    "pixel_error",
    "rasterize_minmax",
    "reservoir_sample",
    "stratified_sample",
    "uniform_downsample",
    "uniform_sample",
    "visualization_aware_sample",
    "weighted_sample",
]
