"""Sampling-based data reduction.

The first of the survey's two approximation families (Section 2):
"most [approaches] are based on (1) sampling and filtering [46, 105, 2, 69,
17]". Provided here:

* classic uniform and streaming (reservoir) sampling;
* stratified sampling — per-group uniform sampling that keeps small groups
  represented (the BlinkDB [2] strategy);
* **visualization-aware sampling** in the spirit of VAS [105]: the sample
  must *look like* the full scatter plot, so points are chosen for spatial
  coverage and extremes are always retained, rather than i.i.d.
"""

from __future__ import annotations

import math
import random
from collections import defaultdict
from typing import Callable, Hashable, Iterable, Sequence, TypeVar

__all__ = [
    "uniform_sample",
    "reservoir_sample",
    "stratified_sample",
    "weighted_sample",
    "visualization_aware_sample",
]

T = TypeVar("T")


def uniform_sample(items: Sequence[T], k: int, seed: int = 0) -> list[T]:
    """``k`` items drawn uniformly without replacement (all if ``k >= n``)."""
    if k < 0:
        raise ValueError("sample size must be non-negative")
    if k >= len(items):
        return list(items)
    return random.Random(seed).sample(list(items), k)


def reservoir_sample(stream: Iterable[T], k: int, seed: int = 0) -> list[T]:
    """Algorithm R over a stream of unknown length: one pass, O(k) memory.

    This is the sampling primitive compatible with the survey's *dynamic*
    setting — data arriving from an endpoint cannot be sampled by index.
    """
    if k < 0:
        raise ValueError("sample size must be non-negative")
    if k == 0:
        return []
    rng = random.Random(seed)
    reservoir: list[T] = []
    for index, item in enumerate(stream):
        if index < k:
            reservoir.append(item)
        else:
            j = rng.randint(0, index)
            if j < k:
                reservoir[j] = item
    return reservoir


def stratified_sample(
    items: Sequence[T],
    key: Callable[[T], Hashable],
    k: int,
    seed: int = 0,
    min_per_stratum: int = 1,
) -> list[T]:
    """Sample ~``k`` items, guaranteeing every stratum keeps representation.

    Strata are allocated proportionally to size but never below
    ``min_per_stratum`` — the property that keeps rare classes visible in
    group-by views (BlinkDB's motivation).
    """
    if k < 0:
        raise ValueError("sample size must be non-negative")
    strata: dict[Hashable, list[T]] = defaultdict(list)
    for item in items:
        strata[key(item)].append(item)
    if not strata:
        return []
    total = len(items)
    rng = random.Random(seed)
    result: list[T] = []
    for stratum_key in sorted(strata, key=str):
        members = strata[stratum_key]
        share = max(min_per_stratum, round(k * len(members) / total))
        share = min(share, len(members))
        result.extend(rng.sample(members, share))
    return result


def weighted_sample(
    items: Sequence[T], weights: Sequence[float], k: int, seed: int = 0
) -> list[T]:
    """``k`` items without replacement, probability ∝ weight (Efraimidis–
    Spirakis exponential-jump-free variant)."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have equal length")
    if any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative")
    if k >= len(items):
        return list(items)
    rng = random.Random(seed)
    keyed = []
    for item, weight in zip(items, weights):
        if weight == 0:
            continue
        keyed.append((rng.random() ** (1.0 / weight), item))
    keyed.sort(reverse=True, key=lambda pair: pair[0])
    return [item for _, item in keyed[:k]]


def visualization_aware_sample(
    points: Sequence[tuple[float, float]],
    k: int,
    seed: int = 0,
    grid: int | None = None,
) -> list[tuple[float, float]]:
    """A sample whose scatter plot resembles the full data's (VAS [105]).

    Strategy: overlay a ``grid × grid`` lattice over the bounding box, keep
    at most one point per occupied cell round-robin until the budget is
    filled (spatial coverage), and always include the four axis extremes
    (outliers are visually load-bearing). Falls back to uniform when the
    budget exceeds the number of occupied cells.
    """
    if k < 0:
        raise ValueError("sample size must be non-negative")
    points = list(points)
    if k >= len(points):
        return points
    if k == 0:
        return []
    rng = random.Random(seed)
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    if grid is None:
        grid = max(2, int(math.sqrt(k) * 2))
    dx = (x1 - x0) or 1.0
    dy = (y1 - y0) or 1.0

    cells: dict[tuple[int, int], list[tuple[float, float]]] = defaultdict(list)
    for point in points:
        cx = min(int((point[0] - x0) / dx * grid), grid - 1)
        cy = min(int((point[1] - y0) / dy * grid), grid - 1)
        cells[(cx, cy)].append(point)

    # Axis extremes first: they define the visual envelope.
    chosen: list[tuple[float, float]] = []
    seen: set[tuple[float, float]] = set()
    for extreme in (
        min(points, key=lambda p: p[0]),
        max(points, key=lambda p: p[0]),
        min(points, key=lambda p: p[1]),
        max(points, key=lambda p: p[1]),
    ):
        if extreme not in seen and len(chosen) < k:
            chosen.append(extreme)
            seen.add(extreme)

    # Round-robin across occupied cells for even coverage.
    buckets = [rng.sample(members, len(members)) for _, members in sorted(cells.items())]
    index = 0
    while len(chosen) < k and buckets:
        bucket = buckets[index % len(buckets)]
        while bucket and bucket[-1] in seen:
            bucket.pop()
        if bucket:
            point = bucket.pop()
            chosen.append(point)
            seen.add(point)
            index += 1
        else:
            buckets.pop(index % len(buckets))
    return chosen
