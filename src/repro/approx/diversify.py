"""Result diversification for exploration (DivIDE, Khan et al. [83]).

Survey §4 lists diversification among the techniques for interactive
exploration: when only ``k`` of many matching results can be shown, pick a
subset that *covers the result space* instead of the first page of
near-duplicates. Implements the classic greedy max-min (``MaxMin``)
heuristic, a 2-approximation of the optimal diverse subset.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

__all__ = ["maxmin_diversify", "euclidean", "diversity_score"]

T = TypeVar("T")


def euclidean(a: Sequence[float], b: Sequence[float]) -> float:
    """Plain Euclidean distance over equal-length numeric vectors."""
    return sum((x - y) ** 2 for x, y in zip(a, b)) ** 0.5


def maxmin_diversify(
    items: Sequence[T],
    k: int,
    distance: Callable[[T, T], float] = euclidean,
    first: int = 0,
) -> list[T]:
    """Greedy max-min: repeatedly add the item farthest from the chosen set.

    Deterministic given ``first`` (index of the seed item). Returns all
    items when ``k >= len(items)``.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    items = list(items)
    if k == 0:
        return []
    if k >= len(items):
        return items
    if not 0 <= first < len(items):
        raise ValueError("first must index into items")
    chosen = [items[first]]
    remaining = [item for i, item in enumerate(items) if i != first]
    # track each candidate's distance to its nearest chosen item
    nearest = [distance(item, chosen[0]) for item in remaining]
    while len(chosen) < k:
        best = max(range(len(remaining)), key=lambda i: nearest[i])
        picked = remaining.pop(best)
        nearest.pop(best)
        chosen.append(picked)
        for i, item in enumerate(remaining):
            d = distance(item, picked)
            if d < nearest[i]:
                nearest[i] = d
    return chosen


def diversity_score(
    items: Sequence[T], distance: Callable[[T, T], float] = euclidean
) -> float:
    """The min pairwise distance — what max-min diversification maximizes."""
    if len(items) < 2:
        return 0.0
    best = float("inf")
    for i, a in enumerate(items):
        for b in items[i + 1 :]:
            best = min(best, distance(a, b))
    return best
