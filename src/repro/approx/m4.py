"""M4: pixel-perfect time-series aggregation (VDDA, Jugel et al. [73, 74]).

The survey cites M4/VDDA as the exemplar of *query-based* approximation:
"modern database-oriented systems adopt approximation techniques using
query-based approaches (e.g., query translation, query rewriting)". The
insight: a line chart of width ``w`` pixels can only show, per pixel
column, the first, last, minimum, and maximum values that fall into it.
Shipping exactly those ≤ 4·w tuples renders the *identical* image while
reducing data volume by orders of magnitude.

This module provides the M4 operator, a uniform (every k-th point)
downsampling baseline, and the pixel-error metric used by benchmark C4 to
compare them: rasterize both series to a ``w × h`` column min/max envelope
and count disagreeing pixels.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["m4_aggregate", "uniform_downsample", "rasterize_minmax", "pixel_error"]

Point = tuple[float, float]


def m4_aggregate(
    times: Sequence[float] | np.ndarray,
    values: Sequence[float] | np.ndarray,
    width: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Reduce a series to the M4 tuples of ``width`` pixel columns.

    Returns ``(times, values)`` sorted by time, with at most ``4 * width``
    points: per column, the first/last (time extremes) and min/max (value
    extremes) of the points that project into it.
    """
    if width < 1:
        raise ValueError("width must be positive")
    t = np.asarray(times, dtype=np.float64)
    v = np.asarray(values, dtype=np.float64)
    if t.shape != v.shape:
        raise ValueError("times and values must have equal length")
    if len(t) == 0:
        return t, v
    order = np.argsort(t, kind="stable")
    t, v = t[order], v[order]
    t0, t1 = float(t[0]), float(t[-1])
    span = (t1 - t0) or 1.0
    columns = np.clip(((t - t0) / span * width).astype(int), 0, width - 1)

    keep = np.zeros(len(t), dtype=bool)
    # Column boundaries: first/last by construction of the sorted order,
    # min/max via per-column argmin/argmax.
    boundaries = np.flatnonzero(np.diff(columns)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [len(t)]))
    for start, end in zip(starts, ends):
        keep[start] = True  # first
        keep[end - 1] = True  # last
        segment = v[start:end]
        keep[start + int(segment.argmin())] = True
        keep[start + int(segment.argmax())] = True
    return t[keep], v[keep]


def uniform_downsample(
    times: Sequence[float] | np.ndarray,
    values: Sequence[float] | np.ndarray,
    k: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Keep ``k`` evenly spaced points — the naive baseline M4 beats."""
    if k < 1:
        raise ValueError("k must be positive")
    t = np.asarray(times, dtype=np.float64)
    v = np.asarray(values, dtype=np.float64)
    if len(t) <= k:
        return t.copy(), v.copy()
    order = np.argsort(t, kind="stable")
    t, v = t[order], v[order]
    indices = np.unique(np.linspace(0, len(t) - 1, k).astype(int))
    return t[indices], v[indices]


def rasterize_minmax(
    times: np.ndarray, values: np.ndarray, width: int, height: int,
    t_domain: tuple[float, float] | None = None,
    v_domain: tuple[float, float] | None = None,
) -> np.ndarray:
    """Boolean ``(height, width)`` raster of a line chart's column envelope.

    Each column is filled between the min and max pixel of the *connected
    line* passing through it (segments spanning columns contribute their
    interpolated crossings), which is how an actual polyline renderer fills
    pixels.
    """
    if width < 1 or height < 1:
        raise ValueError("raster dimensions must be positive")
    raster = np.zeros((height, width), dtype=bool)
    if len(times) == 0:
        return raster
    order = np.argsort(times, kind="stable")
    t, v = np.asarray(times)[order], np.asarray(values)[order]
    t0, t1 = t_domain if t_domain else (float(t[0]), float(t[-1]))
    v0, v1 = v_domain if v_domain else (float(v.min()), float(v.max()))
    t_span = (t1 - t0) or 1.0
    v_span = (v1 - v0) or 1.0

    def col(time: float) -> int:
        return min(max(int((time - t0) / t_span * width), 0), width - 1)

    def row(value: float) -> int:
        return min(max(int((value - v0) / v_span * (height - 1)), 0), height - 1)

    # Track per-column min/max rows touched by the polyline.
    col_min = np.full(width, height, dtype=int)
    col_max = np.full(width, -1, dtype=int)

    def touch(c: int, r: int) -> None:
        if r < col_min[c]:
            col_min[c] = r
        if r > col_max[c]:
            col_max[c] = r

    touch(col(t[0]), row(v[0]))
    for i in range(1, len(t)):
        c_prev, c_cur = col(t[i - 1]), col(t[i])
        r_cur = row(v[i])
        touch(c_cur, r_cur)
        if c_cur != c_prev:
            # interpolate the segment at each column boundary it crosses
            for c in range(min(c_prev, c_cur), max(c_prev, c_cur) + 1):
                boundary_t = t0 + c * t_span / width
                if t[i] != t[i - 1]:
                    alpha = (boundary_t - t[i - 1]) / (t[i] - t[i - 1])
                    alpha = min(max(alpha, 0.0), 1.0)
                    crossing = v[i - 1] + alpha * (v[i] - v[i - 1])
                    touch(c, row(crossing))
        else:
            touch(c_cur, row(v[i - 1]))

    for c in range(width):
        if col_max[c] >= 0:
            raster[col_min[c] : col_max[c] + 1, c] = True
    return raster


def pixel_error(reference: np.ndarray, candidate: np.ndarray) -> float:
    """Fraction of pixels where two rasters disagree (0 = identical)."""
    if reference.shape != candidate.shape:
        raise ValueError("rasters must have the same shape")
    if reference.size == 0:
        return 0.0
    return float(np.mean(reference != candidate))
