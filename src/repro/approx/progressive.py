"""Progressive (incremental) approximate aggregation with error bounds.

The survey's synthesis of its two efficiency families (Section 2):
"numerous recent systems integrate incremental and approximate techniques;
approximate answers are computed incrementally over progressively larger
samples of the data [46, 2, 69]" — sampleAction, BlinkDB, VisReduce.

:class:`ProgressiveAggregator` consumes a dataset in chunks (over a
pre-shuffled order, so each prefix is a uniform sample) and after every
chunk exposes the running estimate of count/sum/mean with a CLT confidence
interval. The interval lets a UI show "mean ≈ 503 ± 4 (95%)" seconds before
the exact answer exists — trust-building per Fisher et al. [46].
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..obs import OBS, ProgressEmitter

__all__ = [
    "ProgressiveEstimate",
    "ProgressiveAggregator",
    "ProgressiveSketchAggregator",
    "StreamingMoments",
    "z_score",
    "binomial_halfwidth",
]

# two-sided normal quantiles for common confidence levels
_Z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def z_score(confidence: float) -> float:
    """Two-sided normal quantile for a supported confidence level.

    The single source of CI math for the approximate serving tier and the
    sketch subsystem — every ``X-Repro-Error-Bound`` header traces back to
    one of these three constants.
    """
    try:
        return _Z[confidence]
    except KeyError:
        raise ValueError(f"confidence must be one of {sorted(_Z)}") from None


def binomial_halfwidth(
    successes: int, trials: int, scale: float = 1.0, confidence: float = 0.95
) -> float:
    """CLT halfwidth for a scaled binomial proportion.

    A COUNT estimated from a prefix sample is ``(successes / trials) *
    population``; its interval is the halfwidth on the proportion scaled
    by the same ``scale`` (the population, for counts). The width uses
    the Agresti–Coull adjusted proportion ``(s + z²/2) / (n + z²)`` —
    the plain Wald width degenerates to zero at ``p ∈ {0, 1}``, which
    would declare certainty exactly where a skewed sample prefix is
    least trustworthy. With no trials the interval is unbounded, by
    construction.
    """
    if trials <= 0:
        return float("inf")
    z = z_score(confidence)
    adjusted_n = trials + z * z
    adjusted_p = (successes + z * z / 2.0) / adjusted_n
    return z * math.sqrt(
        adjusted_p * (1.0 - adjusted_p) / adjusted_n
    ) * scale


@dataclass(frozen=True)
class ProgressiveEstimate:
    """One snapshot of the running approximation."""

    seen: int  # sample size so far
    population: int  # full dataset size
    mean: float
    ci_halfwidth: float  # for the mean, at the chosen confidence
    confidence: float

    @property
    def fraction(self) -> float:
        return self.seen / self.population if self.population else 1.0

    @property
    def sum_estimate(self) -> float:
        """Scaled-up sum (Horvitz–Thompson under uniform sampling)."""
        return self.mean * self.population

    @property
    def sum_ci_halfwidth(self) -> float:
        return self.ci_halfwidth * self.population

    @property
    def mean_interval(self) -> tuple[float, float]:
        return (self.mean - self.ci_halfwidth, self.mean + self.ci_halfwidth)

    def __str__(self) -> str:
        pct = int(self.confidence * 100)
        return (
            f"mean ≈ {self.mean:.4g} ± {self.ci_halfwidth:.2g} "
            f"({pct}%, {self.seen}/{self.population} seen)"
        )


class StreamingMoments:
    """Welford mean/variance over a stream, with CLT confidence intervals.

    The estimator behind both :class:`ProgressiveAggregator` (which knows
    its population exactly) and the serving layer's load-shedding tier
    (which only has the planner's *estimate* of the population): feed
    values one at a time, then ask :meth:`estimate` for the running mean
    with a finite-population-corrected interval against any population
    size.
    """

    __slots__ = ("confidence", "z", "n", "_mean", "_m2")

    def __init__(self, confidence: float = 0.95) -> None:
        if confidence not in _Z:
            raise ValueError(f"confidence must be one of {sorted(_Z)}")
        self.confidence = confidence
        self.z = _Z[confidence]
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        self.n += 1
        delta = value - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (value - self._mean)

    def extend(self, values) -> None:
        for value in values:
            self.add(float(value))

    def merge(self, other: "StreamingMoments") -> None:
        """Absorb another moments accumulator (Chan et al. pairwise
        combine) — the result is exactly the accumulator a single pass
        over both streams would have produced, so sharded and federated
        partials compose losslessly."""
        if not isinstance(other, StreamingMoments):
            raise ValueError(
                f"cannot merge {type(other).__name__} into StreamingMoments"
            )
        if other.n == 0:
            return
        if self.n == 0:
            self.n, self._mean, self._m2 = other.n, other._mean, other._m2
            return
        combined = self.n + other.n
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.n * other.n / combined
        self._mean += delta * other.n / combined
        self.n = combined

    def as_tuple(self) -> tuple[int, float, float]:
        """``(n, mean, m2)`` — the whole state, for wire encoding."""
        return (self.n, self._mean, self._m2)

    @classmethod
    def from_tuple(
        cls, state, confidence: float = 0.95
    ) -> "StreamingMoments":
        moments = cls(confidence)
        n, mean, m2 = state
        moments.n = int(n)
        moments._mean = float(mean)
        moments._m2 = float(m2)
        return moments

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def total(self) -> float:
        """Sum of the observed values (``mean * n``)."""
        return self._mean * self.n

    @property
    def variance(self) -> float:
        """Sample variance (0 below two observations)."""
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    def estimate(self, population: int | None = None) -> ProgressiveEstimate:
        """The running mean ± CI, scaled against ``population``.

        ``population`` defaults to the observations seen (the interval then
        collapses to zero — everything was observed). A larger population
        widens the interval per the usual ``sqrt(variance / n)`` CLT term
        with finite-population correction.
        """
        n = self.n
        total = n if population is None else max(int(population), n)
        halfwidth = (
            self.z * math.sqrt(self.variance / n) if n > 1 else float("inf")
        )
        if total > 1:
            fpc = math.sqrt(max(0.0, (total - n) / (total - 1)))
            halfwidth *= fpc
        if n == 0:
            halfwidth = float("inf")
        return ProgressiveEstimate(
            seen=n,
            population=total,
            mean=self._mean,
            ci_halfwidth=halfwidth,
            confidence=self.confidence,
        )


class ProgressiveAggregator:
    """Chunk-at-a-time mean/sum estimation over a shuffled dataset.

    >>> agg = ProgressiveAggregator([1.0] * 500 + [3.0] * 500, seed=1)
    >>> estimates = list(agg.run(chunk_size=100))
    >>> estimates[-1].mean
    2.0
    """

    def __init__(
        self,
        values: Sequence[float] | np.ndarray,
        confidence: float = 0.95,
        seed: int = 0,
        shuffle: bool = True,
    ) -> None:
        if confidence not in _Z:
            raise ValueError(f"confidence must be one of {sorted(_Z)}")
        self._values = np.asarray(values, dtype=np.float64).copy()
        if shuffle:
            # shuffling once makes every prefix a uniform random sample
            rng = random.Random(seed)
            order = list(range(len(self._values)))
            rng.shuffle(order)
            self._values = self._values[order]
        self.confidence = confidence
        self._moments = StreamingMoments(confidence)

    def __len__(self) -> int:
        return len(self._values)

    def _consume(self, chunk: np.ndarray) -> None:
        self._moments.extend(chunk)

    def _snapshot(self) -> ProgressiveEstimate:
        return self._moments.estimate(len(self._values))

    def run(
        self, chunk_size: int = 1000, emitter: ProgressEmitter | None = None
    ) -> Iterator[ProgressiveEstimate]:
        """Yield an estimate after each chunk until the data is exhausted.

        Each chunk also lands on the progress-event stream (``emitter``,
        defaulting to the global :data:`repro.obs.OBS` emitter) so a UI can
        watch the estimate tighten without consuming this iterator itself.
        """
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if emitter is None:
            emitter = OBS.progress
        for start in range(0, len(self._values), chunk_size):
            self._consume(self._values[start : start + chunk_size])
            estimate = self._snapshot()
            if emitter.has_subscribers:
                emitter.emit(
                    "approx.progressive",
                    completed=estimate.seen,
                    total=estimate.population,
                    mean=estimate.mean,
                    ci_halfwidth=estimate.ci_halfwidth,
                    confidence=estimate.confidence,
                )
            yield estimate

    def run_until(
        self, target_halfwidth: float, chunk_size: int = 1000
    ) -> ProgressiveEstimate:
        """Consume chunks until the CI is tight enough (or data runs out).

        This is the interactive contract: "give me the mean to ±ε" costs a
        sample-size, not a dataset-size, amount of work.
        """
        estimate: ProgressiveEstimate | None = None
        for estimate in self.run(chunk_size):
            if estimate.ci_halfwidth <= target_halfwidth:
                return estimate
        if estimate is None:
            raise ValueError("empty dataset")
        return estimate


class ProgressiveSketchAggregator:
    """Per-pass sketch merging: the progressive path for *any* mergeable
    summary (:mod:`repro.approx.sketch`), not just means.

    Each pass builds a fresh sketch over its chunk via ``factory``,
    merges it into the running accumulation, and yields the merged
    estimate — the same combine step the federation coordinator runs, so
    progressive refinement and shard merging stay one code path. The
    factory keeps this module import-independent of the sketch package
    (which imports :func:`z_score` from here).
    """

    def __init__(self, factory) -> None:
        self._factory = factory
        self.merged = factory()
        self.passes = 0

    def absorb(self, sketch) -> "object":
        """Merge one pass's sketch; returns the running estimate."""
        self.merged.merge(sketch)
        self.passes += 1
        return self.merged.estimate()

    def run(
        self, chunks, emitter: ProgressEmitter | None = None
    ) -> Iterator[object]:
        """Yield the merged :class:`SketchEstimate` after each chunk,
        mirroring :meth:`ProgressiveAggregator.run`'s event contract."""
        if emitter is None:
            emitter = OBS.progress
        for chunk in chunks:
            sketch = self._factory()
            for value in chunk:
                sketch.add(value)
            estimate = self.absorb(sketch)
            if emitter.has_subscribers:
                emitter.emit(
                    "approx.progressive.sketch",
                    completed=self.passes,
                    total=None,
                    value=estimate.value,
                    error_bound=estimate.error_bound,
                    confidence=estimate.confidence,
                )
            yield estimate
