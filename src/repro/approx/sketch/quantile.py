"""KLL-style mergeable quantile sketch (compactor pyramid).

The sketch keeps a pyramid of *compactors*: level ``l`` holds items each
standing for ``2**l`` original observations. When a level overflows its
budget ``k`` it is sorted and every other item (random even/odd phase) is
promoted one level up — halving the item count while doubling each
survivor's weight. Queries sort the weighted items once and walk the
cumulative weight.

Error accounting is done explicitly rather than quoted from the KLL
paper's asymptotics: each compaction at level ``l`` perturbs any rank by
at most ``2**l / 2`` (the weight of the discarded alternates, halved by
the random phase), so the sketch tracks the *sum of compaction
perturbations* and declares ``rank error <= perturbation_units / n``.
This worst-case ledger survives :meth:`merge` (units add) and is what the
property suite holds the measured error against — the measured error is
typically far inside it, which is the right direction for a declared
bound.

Deterministic replay: the even/odd phase comes from a per-sketch
``random.Random`` seeded at construction, so tests can pin behavior.
"""

from __future__ import annotations

import random

from .base import SketchEstimate, register_sketch

__all__ = ["KllSketch"]


class KllSketch:
    """Mergeable rank/quantile summary with a tracked rank-error bound."""

    kind = "kll"

    __slots__ = ("k", "_levels", "n", "_error_units", "_rng")

    def __init__(self, k: int = 128, seed: int = 0) -> None:
        if k < 8:
            raise ValueError("k must be >= 8")
        self.k = k
        self._levels: list[list[float]] = [[]]
        self.n = 0
        self._error_units = 0.0  # sum of per-compaction rank perturbations
        self._rng = random.Random(seed)

    # -- protocol ----------------------------------------------------------

    def add(self, value: object) -> None:
        self._levels[0].append(float(value))  # type: ignore[arg-type]
        self.n += 1
        if len(self._levels[0]) >= self.k:
            self._compact(0)

    def _capacity(self, level: int) -> int:
        # Higher levels hold fewer items (2/3 decay, floored) — the KLL
        # shape that keeps total space ~O(k) rather than O(k log n).
        capacity = int(self.k * (2.0 / 3.0) ** level)
        return max(capacity, 8)

    def _compact(self, level: int) -> None:
        items = self._levels[level]
        items.sort()
        if level + 1 == len(self._levels):
            self._levels.append([])
        phase = self._rng.randrange(2)
        promoted = items[phase::2]
        # Compaction worst case: a prefix holding an odd number of the
        # weight-w items shifts by exactly w whichever phase survives
        # (zero-mean under the random phase, but the *ledger* must carry
        # the worst case for rank_error to be a bound, not an average).
        self._error_units += float(2 ** level)
        self._levels[level] = []
        upper = self._levels[level + 1]
        upper.extend(promoted)
        if len(upper) >= self._capacity(level + 1):
            self._compact(level + 1)

    def merge(self, other: "KllSketch") -> None:
        if not isinstance(other, KllSketch):
            raise ValueError(f"cannot merge {type(other).__name__} into KLL")
        for level, items in enumerate(other._levels):
            while level >= len(self._levels):
                self._levels.append([])
            self._levels[level].extend(items)
        self.n += other.n
        self._error_units += other._error_units
        level = 0
        while level < len(self._levels):
            capacity = self.k if level == 0 else self._capacity(level)
            if len(self._levels[level]) >= capacity:
                self._compact(level)  # recursively settles upper levels
            level += 1

    @property
    def rank_error(self) -> float:
        """Declared rank-error fraction: any reported rank is within
        ``rank_error * n`` positions of the true rank."""
        return self._error_units / self.n if self.n else 0.0

    def _weighted(self) -> list[tuple[float, int]]:
        weighted: list[tuple[float, int]] = []
        for level, items in enumerate(self._levels):
            weight = 1 << level
            weighted.extend((item, weight) for item in items)
        weighted.sort()
        return weighted

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        weighted = self._weighted()
        if not weighted:
            raise ValueError("empty sketch")
        target = q * self.n
        cumulative = 0
        for value, weight in weighted:
            cumulative += weight
            if cumulative >= target:
                return value
        return weighted[-1][0]

    def rank(self, value: float) -> float:
        """Estimated number of observations ``<= value``."""
        return float(sum(
            weight for item, weight in self._weighted() if item <= value
        ))

    def estimate(self) -> SketchEstimate:
        """The median, with the sketch's rank-error declaration."""
        value = self.quantile(0.5) if self.n else 0.0
        return SketchEstimate(
            value=value,
            error_bound=self.rank_error,
            bound_kind="rank",
            confidence=1.0,  # the perturbation ledger is worst-case
            n=self.n,
        )

    # -- wire --------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "k": self.k,
            "n": self.n,
            "error_units": self._error_units,
            "levels": [list(level) for level in self._levels],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "KllSketch":
        sketch = cls(k=int(payload["k"]))
        sketch.n = int(payload.get("n", 0))
        sketch._error_units = float(payload.get("error_units", 0.0))
        sketch._levels = [
            [float(item) for item in level]
            for level in payload.get("levels", [[]])
        ] or [[]]
        return sketch

    def size_bytes(self) -> int:
        return sum(len(level) for level in self._levels) * 8 + 64

    def __len__(self) -> int:
        return self.n


register_sketch(KllSketch.kind, KllSketch.from_dict)
