"""The mergeable-sketch protocol: add, merge, estimate, wire format.

Hillview's core trick (PAPERS.md): compute *every* aggregate as a
**mergeable sketch** — a small commutative summary where
``merge(sketch(A), sketch(B)) == sketch(A ∪ B)`` within a declared error
bound. Mergeability is what makes partial results compose: across shards,
across federation sources, and across the progressive passes of one query,
the combine step is a cheap merge tree instead of a re-scan.

Every sketch family in this package implements the same small surface:

* ``add(value)``            — absorb one observation, O(1) amortized;
* ``merge(other)``          — absorb another sketch of the same family
  and configuration (raises ``ValueError`` on shape mismatch);
* ``estimate()``            — the current answer as a
  :class:`SketchEstimate` carrying an explicit error bound;
* ``to_dict()/from_dict()`` — a JSON-safe payload, wrapped by
  :func:`serialize_sketch` into a self-describing envelope so the wire
  peer can reconstruct the right family without out-of-band agreement.

The envelope (``{"sketch": <kind>, "v": 1, "payload": {...}}``) is the
unit :class:`~repro.server.remote.RemoteEndpointSource` ships instead of
result rows, and what the coordinator's merge loop consumes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Iterator, Protocol, runtime_checkable

__all__ = [
    "Sketch",
    "SketchEstimate",
    "WIRE_VERSION",
    "register_sketch",
    "serialize_sketch",
    "deserialize_sketch",
    "sketch_to_bytes",
    "sketch_from_bytes",
    "registered_kinds",
]

WIRE_VERSION = 1


@dataclass(frozen=True)
class SketchEstimate:
    """One sketch's current answer plus the bound that makes it honest.

    ``bound_kind`` names what ``error_bound`` measures:

    * ``"relative"`` — ``|estimate - truth| <= error_bound * truth`` at
      the stated confidence (HLL's standard-error regime);
    * ``"absolute"`` — ``|estimate - truth| <= error_bound`` outright
      (SpaceSaving's deterministic overcount bound, CLT halfwidths);
    * ``"rank"``     — quantile answers are within ``error_bound * n``
      positions of the true rank (KLL's guarantee shape).
    """

    value: float
    error_bound: float
    bound_kind: str  # "relative" | "absolute" | "rank"
    confidence: float = 1.0
    n: int = 0  # observations behind the estimate

    def absolute_bound(self) -> float:
        """The bound as an absolute halfwidth around ``value``."""
        if self.bound_kind == "relative":
            return self.error_bound * abs(self.value)
        if self.bound_kind == "rank":
            return self.error_bound * self.n
        return self.error_bound


@runtime_checkable
class Sketch(Protocol):
    """What every mergeable summary implements."""

    kind: str

    def add(self, value: object) -> None: ...

    def merge(self, other: "Sketch") -> None: ...

    def estimate(self) -> SketchEstimate: ...

    def to_dict(self) -> dict: ...

    def size_bytes(self) -> int:
        """Approximate in-memory footprint (the /metrics memory gauge)."""
        ...


# --------------------------------------------------------------------------- #
# Wire envelope + registry
# --------------------------------------------------------------------------- #

_FACTORIES: dict[str, Callable[[dict], Sketch]] = {}


def register_sketch(kind: str, factory: Callable[[dict], Sketch]) -> None:
    """Register a family's ``from_dict`` under its wire ``kind`` tag.

    Families self-register at import time; duplicate registration with a
    different factory is a programming error, not a runtime condition.
    """
    existing = _FACTORIES.get(kind)
    if existing is not None and existing is not factory:
        raise ValueError(f"sketch kind {kind!r} already registered")
    _FACTORIES[kind] = factory


def registered_kinds() -> Iterator[str]:
    return iter(sorted(_FACTORIES))


def serialize_sketch(sketch: Sketch) -> dict:
    """Wrap a sketch into the self-describing wire envelope."""
    return {
        "sketch": sketch.kind,
        "v": WIRE_VERSION,
        "payload": sketch.to_dict(),
    }


def deserialize_sketch(envelope: dict) -> Sketch:
    """Reconstruct a sketch from its envelope; raises ``ValueError`` on an
    unknown kind or unsupported wire version (a peer speaking a newer
    format must fail loudly, not decode garbage)."""
    kind = envelope.get("sketch")
    version = envelope.get("v")
    if version != WIRE_VERSION:
        raise ValueError(f"unsupported sketch wire version: {version!r}")
    factory = _FACTORIES.get(kind)
    if factory is None:
        raise ValueError(f"unknown sketch kind: {kind!r}")
    return factory(envelope.get("payload", {}))


def sketch_to_bytes(sketch: Sketch) -> bytes:
    """Compact wire bytes (separator-free JSON of the envelope)."""
    return json.dumps(
        serialize_sketch(sketch), separators=(",", ":"), sort_keys=True
    ).encode("utf-8")


def sketch_from_bytes(data: bytes) -> Sketch:
    return deserialize_sketch(json.loads(data.decode("utf-8")))
