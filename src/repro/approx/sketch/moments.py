"""Grouped moments: per-group COUNT/SUM/AVG/variance under a group budget.

The sketch behind approximate ``GROUP BY``: one
:class:`~repro.approx.progressive.StreamingMoments` accumulator per group
key, capped at ``max_groups`` tracked groups. Once the budget is full, new
keys fold into a single ``other`` bucket — their values still count toward
stream totals, and an embedded small HLL estimates how many distinct
groups the bucket swallowed, so the answer can say "... and ~173 more
groups" instead of silently truncating.

Group keys are opaque strings (the server wire-encodes RDF terms to their
canonical JSON before feeding the sketch), which keeps this module free of
SPARQL types. Merging unions the group tables moment-wise (lossless, per
Chan et al.) and re-applies the budget by folding the smallest groups —
after a merge the surviving per-group stats are still exact over
everything either side saw for that key, provided the key never spilled.
"""

from __future__ import annotations

from ..progressive import StreamingMoments
from .base import SketchEstimate, register_sketch
from .hll import HllSketch

__all__ = ["GroupedMomentsSketch", "OTHER_BUCKET"]

# Reserved display key for the overflow bucket; real group keys are
# canonical-JSON strings so this cannot collide.
OTHER_BUCKET = "__other__"

_OVERFLOW_HLL_PRECISION = 10  # ~3.3% RSE is plenty for "~N more groups"


class GroupedMomentsSketch:
    """Bounded-cardinality per-group moments with an ``other`` bucket."""

    kind = "grouped_moments"

    __slots__ = ("max_groups", "confidence", "_groups", "_other",
                 "_other_keys", "n")

    def __init__(
        self, max_groups: int = 256, confidence: float = 0.95
    ) -> None:
        if max_groups < 1:
            raise ValueError("max_groups must be positive")
        self.max_groups = max_groups
        self.confidence = confidence
        self._groups: dict[str, StreamingMoments] = {}
        self._other = StreamingMoments(confidence)
        self._other_keys = HllSketch(
            precision=_OVERFLOW_HLL_PRECISION, confidence=confidence
        )
        self.n = 0

    # -- protocol ----------------------------------------------------------

    def add(self, value: object) -> None:
        """Protocol-shaped entry point: ``value`` is a ``(key, x)`` pair."""
        key, x = value  # type: ignore[misc]
        self.add_group(str(key), float(x))

    def add_group(self, key: str, value: float = 1.0) -> None:
        """Absorb one observation for ``key`` (``value`` defaults to 1 so
        a pure COUNT query can feed rows without inventing a measure)."""
        self.n += 1
        moments = self._groups.get(key)
        if moments is None:
            if len(self._groups) >= self.max_groups:
                self._other.add(value)
                self._other_keys.add(key)
                return
            moments = StreamingMoments(self.confidence)
            self._groups[key] = moments
        moments.add(value)

    def merge(self, other: "GroupedMomentsSketch") -> None:
        if not isinstance(other, GroupedMomentsSketch):
            raise ValueError(
                f"cannot merge {type(other).__name__} into GroupedMoments"
            )
        for key, theirs in other._groups.items():
            mine = self._groups.get(key)
            if mine is None:
                mine = StreamingMoments(self.confidence)
                self._groups[key] = mine
            mine.merge(theirs)
        self._other.merge(other._other)
        self._other_keys.merge(other._other_keys)
        self.n += other.n
        if len(self._groups) > self.max_groups:
            self._spill_to_budget()

    def _spill_to_budget(self) -> None:
        """Fold the smallest groups into ``other`` until back in budget."""
        ranked = sorted(
            self._groups, key=lambda key: self._groups[key].n, reverse=True
        )
        for key in ranked[self.max_groups:]:
            spilled = self._groups.pop(key)
            self._other.merge(spilled)
            self._other_keys.add(key)

    # -- reading -----------------------------------------------------------

    def group_keys(self) -> list[str]:
        return sorted(self._groups)

    def group(self, key: str) -> StreamingMoments | None:
        return self._groups.get(key)

    def group_stats(self) -> list[tuple[str, int, float, float, float]]:
        """``(key, count, sum, mean, variance)`` rows, largest group first;
        the ``other`` bucket (when non-empty) is appended last under
        :data:`OTHER_BUCKET`."""
        rows = [
            (key, m.n, m.total, m.mean, m.variance)
            for key, m in sorted(
                self._groups.items(), key=lambda item: -item[1].n
            )
        ]
        if self._other.n:
            m = self._other
            rows.append((OTHER_BUCKET, m.n, m.total, m.mean, m.variance))
        return rows

    @property
    def spilled(self) -> bool:
        """True when any group was folded into the ``other`` bucket."""
        return self._other.n > 0

    def other_group_estimate(self) -> float:
        """Approximate number of distinct groups inside ``other``."""
        return self._other_keys.cardinality() if self.spilled else 0.0

    def estimate(self) -> SketchEstimate:
        """Total observation count — exact over the stream the sketch saw
        (per-group sampling error is the *serving* layer's scale-up job)."""
        return SketchEstimate(
            value=float(self.n),
            error_bound=0.0,
            bound_kind="absolute",
            confidence=1.0,
            n=self.n,
        )

    # -- wire --------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "max_groups": self.max_groups,
            "confidence": self.confidence,
            "n": self.n,
            "groups": {
                key: list(m.as_tuple())
                for key, m in sorted(self._groups.items())
            },
            "other": list(self._other.as_tuple()),
            "other_keys": self._other_keys.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "GroupedMomentsSketch":
        sketch = cls(
            max_groups=int(payload["max_groups"]),
            confidence=float(payload.get("confidence", 0.95)),
        )
        sketch.n = int(payload.get("n", 0))
        for key, state in payload.get("groups", {}).items():
            sketch._groups[str(key)] = StreamingMoments.from_tuple(
                state, sketch.confidence
            )
        if "other" in payload:
            sketch._other = StreamingMoments.from_tuple(
                payload["other"], sketch.confidence
            )
        if "other_keys" in payload:
            sketch._other_keys = HllSketch.from_dict(payload["other_keys"])
        return sketch

    def size_bytes(self) -> int:
        per_group = 96  # three floats + dict slot + key, roughly
        keys = sum(len(key) for key in self._groups)
        return (
            len(self._groups) * per_group
            + keys
            + self._other_keys.size_bytes()
            + 64
        )

    def __len__(self) -> int:
        return len(self._groups)


register_sketch(GroupedMomentsSketch.kind, GroupedMomentsSketch.from_dict)
