"""SpaceSaving heavy hitters (Metwally et al.), mergeable.

``capacity`` counters track the (approximately) most frequent keys seen.
A new key with no free counter evicts the minimum counter and *inherits*
its count — so every tracked count is an overestimate by at most the
counter's recorded ``error``, and any key whose true frequency exceeds
``n / capacity`` is guaranteed to be tracked.

Merging follows the Agarwal et al. mergeable-summaries recipe: counts and
errors add for keys in both sketches; a key present in only one side may
have occurred up to the *other* side's minimum-counter value unseen, so
that floor is added to its error. The merged table is then pruned back to
``capacity`` by evicting the smallest counts, folding each eviction into
the surviving floor exactly like a streaming eviction would.
"""

from __future__ import annotations

from .base import SketchEstimate, register_sketch

__all__ = ["SpaceSavingSketch"]


class SpaceSavingSketch:
    """Top-k frequency tracking with per-key deterministic error bounds."""

    kind = "spacesaving"

    __slots__ = ("capacity", "_counts", "_errors", "n")

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._counts: dict[str, float] = {}
        self._errors: dict[str, float] = {}
        self.n = 0  # total stream weight

    # -- protocol ----------------------------------------------------------

    def add(self, value: object, weight: float = 1.0) -> None:
        key = str(value)
        self.n += weight
        counts = self._counts
        if key in counts:
            counts[key] += weight
            return
        if len(counts) < self.capacity:
            counts[key] = weight
            self._errors[key] = 0.0
            return
        victim = min(counts, key=counts.__getitem__)
        floor = counts.pop(victim)
        self._errors.pop(victim)
        counts[key] = floor + weight
        self._errors[key] = floor

    def merge(self, other: "SpaceSavingSketch") -> None:
        if not isinstance(other, SpaceSavingSketch):
            raise ValueError(
                f"cannot merge {type(other).__name__} into SpaceSaving"
            )
        mine_floor = self._min_count() if len(
            self._counts
        ) >= self.capacity else 0.0
        other_floor = other._min_count() if len(
            other._counts
        ) >= other.capacity else 0.0
        merged_counts: dict[str, float] = {}
        merged_errors: dict[str, float] = {}
        for key in self._counts.keys() | other._counts.keys():
            count = error = 0.0
            if key in self._counts:
                count += self._counts[key]
                error += self._errors[key]
            else:
                # Unseen here, but could have occurred up to this side's
                # eviction floor without being tracked.
                count += mine_floor
                error += mine_floor
            if key in other._counts:
                count += other._counts[key]
                error += other._errors[key]
            else:
                count += other_floor
                error += other_floor
            merged_counts[key] = count
            merged_errors[key] = error
        self.n += other.n
        if len(merged_counts) > self.capacity:
            survivors = sorted(
                merged_counts, key=merged_counts.__getitem__, reverse=True
            )[: self.capacity]
            merged_counts = {key: merged_counts[key] for key in survivors}
            merged_errors = {key: merged_errors[key] for key in survivors}
        self._counts = merged_counts
        self._errors = merged_errors

    def _min_count(self) -> float:
        return min(self._counts.values()) if self._counts else 0.0

    def count(self, value: object) -> tuple[float, float]:
        """``(estimate, error_bound)`` for one key.

        The estimate never undercounts by more than 0 and never
        overcounts by more than the bound; an untracked key's true count
        is at most the current eviction floor.
        """
        key = str(value)
        if key in self._counts:
            return self._counts[key], self._errors[key]
        floor = (
            self._min_count() if len(self._counts) >= self.capacity else 0.0
        )
        return 0.0, floor

    def top(self, k: int | None = None) -> list[tuple[str, float, float]]:
        """``(key, count, error)`` rows, most frequent first."""
        ranked = sorted(
            self._counts.items(), key=lambda item: -item[1]
        )[: (k if k is not None else self.capacity)]
        return [
            (key, count, self._errors[key]) for key, count in ranked
        ]

    def estimate(self) -> SketchEstimate:
        """The top key's count with its deterministic overcount bound."""
        if not self._counts:
            return SketchEstimate(0.0, 0.0, "absolute", n=int(self.n))
        key, count, error = self.top(1)[0]
        return SketchEstimate(
            value=count,
            error_bound=error,
            bound_kind="absolute",
            confidence=1.0,  # SpaceSaving's bound is deterministic
            n=int(self.n),
        )

    # -- wire --------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "n": self.n,
            "entries": [
                [key, count, self._errors[key]]
                for key, count in sorted(self._counts.items())
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SpaceSavingSketch":
        sketch = cls(capacity=int(payload["capacity"]))
        sketch.n = float(payload.get("n", 0))
        for key, count, error in payload.get("entries", []):
            sketch._counts[str(key)] = float(count)
            sketch._errors[str(key)] = float(error)
        return sketch

    def size_bytes(self) -> int:
        return sum(len(key) + 16 for key in self._counts) + 64

    def __len__(self) -> int:
        return len(self._counts)


register_sketch(SpaceSavingSketch.kind, SpaceSavingSketch.from_dict)
