"""Mergeable sketches (ROADMAP item 2): HLL distinct counting, KLL
quantiles, SpaceSaving heavy hitters, and grouped moments behind one
``Sketch`` protocol — the compose-anywhere summaries Hillview builds its
entire engine on (PAPERS.md).

Configuration comes from the typed env registry (``repro.env``):
``REPRO_SKETCH_PRECISION`` (HLL registers), ``REPRO_SKETCH_GROUPS``
(grouped-moments budget), ``REPRO_SKETCH_K`` (KLL compactors). The
``default_*`` helpers below clamp malformed values into each family's
legal range rather than crashing the serving path.
"""

from __future__ import annotations

from ...env import read_int  # noqa: F401  (re-exported for tests)
from .base import (
    Sketch,
    SketchEstimate,
    WIRE_VERSION,
    deserialize_sketch,
    register_sketch,
    registered_kinds,
    serialize_sketch,
    sketch_from_bytes,
    sketch_to_bytes,
)
from .heavy import SpaceSavingSketch
from .hll import HllSketch, hash_term
from .moments import OTHER_BUCKET, GroupedMomentsSketch
from .quantile import KllSketch

__all__ = [
    "Sketch",
    "SketchEstimate",
    "WIRE_VERSION",
    "register_sketch",
    "registered_kinds",
    "serialize_sketch",
    "deserialize_sketch",
    "sketch_to_bytes",
    "sketch_from_bytes",
    "HllSketch",
    "hash_term",
    "KllSketch",
    "SpaceSavingSketch",
    "GroupedMomentsSketch",
    "OTHER_BUCKET",
    "default_precision",
    "default_groups",
    "default_k",
]


def default_precision() -> int:
    """HLL precision from ``REPRO_SKETCH_PRECISION``, clamped to [4, 16]."""
    return max(4, min(16, read_int("REPRO_SKETCH_PRECISION")))


def default_groups() -> int:
    """Grouped-moments budget from ``REPRO_SKETCH_GROUPS`` (>= 1)."""
    return max(1, read_int("REPRO_SKETCH_GROUPS"))


def default_k() -> int:
    """KLL compactor budget from ``REPRO_SKETCH_K`` (>= 8)."""
    return max(8, read_int("REPRO_SKETCH_K"))
