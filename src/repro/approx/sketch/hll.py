"""HyperLogLog-style distinct counting (Flajolet et al., Hillview's
``distinct`` sketch).

``m = 2**precision`` one-byte registers; each item is hashed once, the low
``precision`` bits pick a register, and the register keeps the maximum
leading-zero run of the remaining bits. Distinct cardinality falls out of
the harmonic mean of the registers, with the standard small-range
(linear-counting) correction. Registers merge by element-wise ``max`` —
the merged sketch is *identical* to the sketch of the concatenated
streams, so federation/shard merges lose nothing.

The declared error is the classic relative standard error
``1.04 / sqrt(m)`` scaled to the requested confidence (two-sided normal
quantile) — precision 12 gives ~1.6% at one sigma, ~3.2% at 95%.
"""

from __future__ import annotations

import base64
import math
from hashlib import blake2b

from ..progressive import z_score
from .base import SketchEstimate, register_sketch

__all__ = ["HllSketch", "hash_term"]

_HASH_BITS = 64
_MASK = (1 << _HASH_BITS) - 1


def hash_term(value: object) -> int:
    """64-bit stable hash of an observation's canonical string form.

    Stability across processes matters: shards and federation members
    hash independently, and register merges are only meaningful when the
    same value lands in the same register everywhere. Python's builtin
    ``hash`` is salted per process, so a keyed-off blake2b digest is used
    instead.
    """
    digest = blake2b(str(value).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HllSketch:
    """Mergeable distinct counter with a declared relative error bound."""

    kind = "hll"

    __slots__ = ("precision", "confidence", "_m", "_registers", "items_added")

    def __init__(self, precision: int = 12, confidence: float = 0.95) -> None:
        if not 4 <= precision <= 16:
            raise ValueError("precision must be in [4, 16]")
        self.precision = precision
        self.confidence = confidence
        self._m = 1 << precision
        self._registers = bytearray(self._m)
        self.items_added = 0  # stream length, not distincts

    # -- protocol ----------------------------------------------------------

    def add(self, value: object) -> None:
        self.add_hash(hash_term(value))

    def add_hash(self, hashed: int) -> None:
        """Absorb a pre-hashed observation (the batched hot path)."""
        self.items_added += 1
        index = hashed & (self._m - 1)
        rest = (hashed >> self.precision) & _MASK
        width = _HASH_BITS - self.precision
        # position of the first 1-bit from the top, 1-based; an all-zero
        # remainder caps at width + 1 per the HLL definition
        rank = width - rest.bit_length() + 1 if rest else width + 1
        if rank > self._registers[index]:
            self._registers[index] = rank

    def merge(self, other: "HllSketch") -> None:
        if not isinstance(other, HllSketch):
            raise ValueError(f"cannot merge {type(other).__name__} into HLL")
        if other.precision != self.precision:
            raise ValueError(
                f"precision mismatch: {self.precision} vs {other.precision}"
            )
        mine, theirs = self._registers, other._registers
        for index in range(self._m):
            if theirs[index] > mine[index]:
                mine[index] = theirs[index]
        self.items_added += other.items_added

    @property
    def relative_error(self) -> float:
        """One-sigma relative standard error for this register count."""
        return 1.04 / (self._m ** 0.5)

    def cardinality(self) -> float:
        m = self._m
        registers = self._registers
        zeros = registers.count(0)
        if zeros:
            # Linear counting is both cheaper and tighter while registers
            # remain empty (the small-cardinality regime).
            linear = m * math.log(m / zeros)
            if linear <= 2.5 * m:
                return linear
        alpha = 0.7213 / (1.0 + 1.079 / m)
        harmonic = sum(2.0 ** -r for r in registers)
        return alpha * m * m / harmonic

    def estimate(self) -> SketchEstimate:
        return SketchEstimate(
            value=self.cardinality(),
            error_bound=z_score(self.confidence) * self.relative_error,
            bound_kind="relative",
            confidence=self.confidence,
            n=self.items_added,
        )

    # -- wire --------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "p": self.precision,
            "confidence": self.confidence,
            "added": self.items_added,
            "registers": base64.b64encode(bytes(self._registers)).decode(
                "ascii"
            ),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "HllSketch":
        sketch = cls(
            precision=int(payload["p"]),
            confidence=float(payload.get("confidence", 0.95)),
        )
        registers = base64.b64decode(payload["registers"])
        if len(registers) != sketch._m:
            raise ValueError("register block does not match precision")
        sketch._registers = bytearray(registers)
        sketch.items_added = int(payload.get("added", 0))
        return sketch

    def size_bytes(self) -> int:
        return self._m + 64  # registers + object overhead, roughly

    def __len__(self) -> int:
        return int(round(self.cardinality()))


register_sketch(HllSketch.kind, HllSketch.from_dict)
