"""Relationship discovery between resources (RelFinder [58]).

Survey §3.4: "RelFinder is a Web-based tool that offers interactive
discovery and visualization of relationships (i.e., connections) between
selected WoD resources" — given two (or more) entities, find the property
paths linking them and draw the connecting subgraph.

Implemented as bidirectional BFS over the resource-to-resource triples
(edges traversed in both directions, as RelFinder does), returning typed
paths and the union subgraph ready for node-link rendering.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..graph.model import PropertyGraph
from ..obs import INTERACTIVE, NAVIGATION, OBS, track
from ..rdf.terms import IRI, BNode, Literal, Subject
from ..store.base import TripleSource

__all__ = ["RelationStep", "RelationPath", "find_relationships", "relationship_graph"]


@dataclass(frozen=True)
class RelationStep:
    """One hop: ``source --predicate--> target`` (``inverse`` if traversed
    against the triple's direction)."""

    source: Subject
    predicate: IRI
    target: Subject
    inverse: bool = False

    def describe(self) -> str:
        arrow = "<--" if self.inverse else "-->"
        name = self.predicate.local_name or str(self.predicate)
        return f"{_label(self.source)} {arrow}[{name}] {_label(self.target)}"


@dataclass(frozen=True)
class RelationPath:
    """A connection: an ordered chain of steps from start to end."""

    steps: tuple[RelationStep, ...]

    @property
    def length(self) -> int:
        return len(self.steps)

    @property
    def nodes(self) -> list[Subject]:
        if not self.steps:
            return []
        return [self.steps[0].source] + [step.target for step in self.steps]

    def describe(self) -> str:
        return "  ".join(step.describe() for step in self.steps)


def _label(resource: Subject) -> str:
    if isinstance(resource, IRI):
        return resource.local_name or str(resource)
    return str(resource)


def _neighbors(store: TripleSource, node: Subject):
    """(neighbor, predicate, inverse) pairs, both edge directions."""
    for _, p, o in store.triples((node, None, None)):
        if isinstance(o, (IRI, BNode)):
            yield o, p, False
    for s, p, _ in store.triples((None, None, node)):
        yield s, p, True


def find_relationships(
    store: TripleSource,
    start: Subject,
    end: Subject,
    max_length: int = 4,
    max_paths: int = 10,
) -> list[RelationPath]:
    """Shortest-first property paths connecting ``start`` and ``end``.

    BFS over the undirected resource graph; paths never revisit a node
    (RelFinder's cycle rule). Returns at most ``max_paths`` paths of at
    most ``max_length`` hops, shortest first, deterministic order.
    """
    with OBS.interaction(
        "explore.relfinder", NAVIGATION, start=str(start), end=str(end)
    ) as act:
        paths = _find_relationships(store, start, end, max_length, max_paths)
        act.set_attribute("paths", len(paths))
        return paths


def _find_relationships(
    store: TripleSource,
    start: Subject,
    end: Subject,
    max_length: int,
    max_paths: int,
) -> list[RelationPath]:
    if max_length < 1:
        raise ValueError("max_length must be >= 1")
    if max_paths < 1:
        raise ValueError("max_paths must be >= 1")
    if start == end:
        return []
    paths: list[RelationPath] = []
    queue: deque[tuple[Subject, tuple[RelationStep, ...], frozenset]] = deque(
        [(start, (), frozenset({start}))]
    )
    while queue and len(paths) < max_paths:
        node, steps, visited = queue.popleft()
        if len(steps) >= max_length:
            continue
        neighbors = sorted(
            _neighbors(store, node), key=lambda item: (str(item[0]), str(item[1]), item[2])
        )
        for neighbor, predicate, inverse in neighbors:
            if neighbor in visited:
                continue
            step = RelationStep(node, predicate, neighbor, inverse)
            if neighbor == end:
                paths.append(RelationPath(steps + (step,)))
                if len(paths) >= max_paths:
                    break
                continue
            queue.append((neighbor, steps + (step,), visited | {neighbor}))
    return paths


@track("explore.relfinder.graph", INTERACTIVE)
def relationship_graph(paths: list[RelationPath]) -> PropertyGraph:
    """The union subgraph of the found paths (RelFinder's display graph)."""
    graph = PropertyGraph()
    for path in paths:
        for step in path.steps:
            graph.add_edge(step.source, step.target, label=str(step.predicate))
    return graph
