"""Exploration sessions: the operation sequence Section 2 defines.

"In an exploration scenario ... users perform a sequence of operations, in
which the result of each operation determines the formulation of the next
operation." :class:`ExplorationSession` records that sequence, tracks the
state of Shneiderman's mantra (overview → zoom/filter → details [118]),
and supports undo — the substrate both the preference learner and the
session-replay benchmarks build on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from ..obs import INTERACTIVE, NAVIGATION, OBS

__all__ = [
    "OperationKind",
    "Operation",
    "MantraStage",
    "ExplorationSession",
    "interaction_class_of",
]


class OperationKind(Enum):
    QUERY = "query"
    OVERVIEW = "overview"
    ZOOM = "zoom"
    FILTER = "filter"
    PAN = "pan"
    DRILL_DOWN = "drill_down"
    ROLL_UP = "roll_up"
    DETAILS = "details"
    PIVOT = "pivot"
    SEARCH = "search"


class MantraStage(Enum):
    """Shneiderman's visual information-seeking mantra states."""

    OVERVIEW = "overview"
    ZOOM_FILTER = "zoom_filter"
    DETAILS = "details"


_STAGE_OF = {
    OperationKind.OVERVIEW: MantraStage.OVERVIEW,
    OperationKind.ROLL_UP: MantraStage.OVERVIEW,
    OperationKind.ZOOM: MantraStage.ZOOM_FILTER,
    OperationKind.FILTER: MantraStage.ZOOM_FILTER,
    OperationKind.PAN: MantraStage.ZOOM_FILTER,
    OperationKind.DRILL_DOWN: MantraStage.ZOOM_FILTER,
    OperationKind.PIVOT: MantraStage.ZOOM_FILTER,
    OperationKind.SEARCH: MantraStage.ZOOM_FILTER,
    OperationKind.QUERY: MantraStage.ZOOM_FILTER,
    OperationKind.DETAILS: MantraStage.DETAILS,
}


# Latency-budget class per operation kind: direct-manipulation steps must
# feel instantaneous; steps that load or derive new data get the looser
# navigation budget.
_INTERACTION_CLASS = {
    OperationKind.OVERVIEW: INTERACTIVE,
    OperationKind.ZOOM: INTERACTIVE,
    OperationKind.FILTER: INTERACTIVE,
    OperationKind.PAN: INTERACTIVE,
    OperationKind.DETAILS: INTERACTIVE,
    OperationKind.QUERY: NAVIGATION,
    OperationKind.DRILL_DOWN: NAVIGATION,
    OperationKind.ROLL_UP: NAVIGATION,
    OperationKind.PIVOT: NAVIGATION,
    OperationKind.SEARCH: NAVIGATION,
}


def interaction_class_of(kind: OperationKind) -> str:
    """The latency-budget class a session operation is held to."""
    return _INTERACTION_CLASS[kind]


@dataclass(frozen=True)
class Operation:
    """One logged step: what happened, over what, with what result size."""

    kind: OperationKind
    target: str = ""
    result_size: int | None = None
    sequence: int = 0


@dataclass
class ExplorationSession:
    """An append-only operation log with mantra-stage tracking and undo."""

    user: str = "anonymous"
    operations: list[Operation] = field(default_factory=list)
    _undone: list[Operation] = field(default_factory=list)

    def record(
        self,
        kind: OperationKind,
        target: str = "",
        result_size: int | None = None,
    ) -> Operation:
        with OBS.interaction(
            f"session.{kind.value}", interaction_class_of(kind),
            user=self.user, target=target,
        ) as act:
            operation = Operation(
                kind=kind,
                target=target,
                result_size=result_size,
                sequence=len(self.operations),
            )
            self.operations.append(operation)
            self._undone.clear()
            act.set_attribute("sequence", operation.sequence)
        return operation

    def undo(self) -> Operation:
        """Remove and return the latest operation (redo-able)."""
        if not self.operations:
            raise IndexError("nothing to undo")
        operation = self.operations.pop()
        self._undone.append(operation)
        return operation

    def redo(self) -> Operation:
        if not self._undone:
            raise IndexError("nothing to redo")
        operation = self._undone.pop()
        self.operations.append(operation)
        return operation

    @property
    def stage(self) -> MantraStage:
        """Where in the mantra the session currently sits."""
        if not self.operations:
            return MantraStage.OVERVIEW
        return _STAGE_OF[self.operations[-1].kind]

    def follows_mantra(self) -> bool:
        """Did the session reach details only after overview and zoom/filter?

        The property the mantra prescribes; sessions that jump straight to
        details are the anti-pattern overview-first design tries to avoid.
        """
        seen_overview = False
        seen_zoom = False
        for operation in self.operations:
            stage = _STAGE_OF[operation.kind]
            if stage is MantraStage.OVERVIEW:
                seen_overview = True
            elif stage is MantraStage.ZOOM_FILTER:
                seen_zoom = True
            elif stage is MantraStage.DETAILS and not (seen_overview and seen_zoom):
                return False
        return True

    def counts_by_kind(self) -> dict[OperationKind, int]:
        counts: dict[OperationKind, int] = {}
        for operation in self.operations:
            counts[operation.kind] = counts.get(operation.kind, 0) + 1
        return counts

    def replay(self, handler: Callable[[Operation], None]) -> int:
        """Feed every operation to ``handler`` (bench/session-simulation).

        Each step is budget-accounted under its kind's interaction class,
        so a replay over a workload trace yields a per-class
        :class:`~repro.obs.BudgetReport` (``OBS.budgets.report()``).
        """
        for operation in self.operations:
            with OBS.interaction(
                f"session.replay.{operation.kind.value}",
                interaction_class_of(operation.kind),
                target=operation.target,
                sequence=operation.sequence,
            ):
                handler(operation)
        return len(self.operations)

    def __len__(self) -> int:
        return len(self.operations)
