"""VoID-style dataset statistics (LODeX's source summaries [19]).

Survey §3.4: LODeX "generates a representative summary of a WoD source ...
accompanied by statistical and structural information". The W3C VoID
vocabulary is the standard carrier for such statistics; this module
computes them from any triple source and can emit them back as RDF.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..rdf.graph import Graph
from ..rdf.terms import BNode, IRI, Literal, Triple
from ..rdf.vocab import RDF, VOID
from ..store.base import TripleSource

__all__ = ["DatasetStatistics", "compute_statistics"]


@dataclass
class DatasetStatistics:
    """The VoID core statistics plus per-class/per-property breakdowns."""

    triples: int = 0
    distinct_subjects: int = 0
    distinct_objects: int = 0
    properties: int = 0
    classes: int = 0
    entities: int = 0  # distinct IRI subjects
    class_partition: dict[IRI, int] = field(default_factory=dict)
    property_partition: dict[IRI, int] = field(default_factory=dict)
    literal_count: int = 0
    blank_node_count: int = 0

    def to_rdf(self, dataset_iri: IRI | None = None) -> Graph:
        """Serialize as a ``void:Dataset`` description."""
        dataset = dataset_iri or IRI("urn:repro:dataset")
        graph = Graph()
        graph.add((dataset, RDF.type, VOID.Dataset))
        graph.add((dataset, VOID.triples, Literal(self.triples)))
        graph.add((dataset, VOID.distinctSubjects, Literal(self.distinct_subjects)))
        graph.add((dataset, VOID.distinctObjects, Literal(self.distinct_objects)))
        graph.add((dataset, VOID.properties, Literal(self.properties)))
        graph.add((dataset, VOID.classes, Literal(self.classes)))
        graph.add((dataset, VOID.entities, Literal(self.entities)))
        for cls, count in sorted(self.class_partition.items()):
            node = BNode()
            graph.add((dataset, VOID.classPartition, node))
            graph.add((node, IRI(str(VOID) + "class"), cls))
            graph.add((node, VOID.entities, Literal(count)))
        for prop, count in sorted(self.property_partition.items()):
            node = BNode()
            graph.add((dataset, VOID.propertyPartition, node))
            graph.add((node, VOID.property, prop))
            graph.add((node, VOID.triples, Literal(count)))
        return graph

    def summary_text(self, top: int = 5) -> str:
        """Human-readable digest (the LODeX side panel)."""
        lines = [
            f"triples: {self.triples:,}",
            f"entities: {self.entities:,} "
            f"({self.distinct_subjects:,} subjects, {self.distinct_objects:,} objects)",
            f"classes: {self.classes}, properties: {self.properties}",
        ]
        if self.class_partition:
            lines.append("top classes:")
            ranked = sorted(self.class_partition.items(), key=lambda kv: -kv[1])
            for cls, count in ranked[:top]:
                lines.append(f"  {cls.local_name or cls}: {count:,}")
        if self.property_partition:
            lines.append("top properties:")
            ranked = sorted(self.property_partition.items(), key=lambda kv: -kv[1])
            for prop, count in ranked[:top]:
                lines.append(f"  {prop.local_name or prop}: {count:,}")
        return "\n".join(lines)


def compute_statistics(store: TripleSource) -> DatasetStatistics:
    """One pass over the store; O(distinct terms) memory."""
    subjects: set = set()
    objects: set = set()
    entity_subjects: set = set()
    property_counts: Counter = Counter()
    class_counts: Counter = Counter()
    literal_count = 0
    bnode_count = 0
    total = 0
    for s, p, o in store.triples((None, None, None)):
        total += 1
        subjects.add(s)
        objects.add(o)
        property_counts[p] += 1
        if isinstance(s, IRI):
            entity_subjects.add(s)
        if isinstance(s, BNode):
            bnode_count += 1
        if isinstance(o, Literal):
            literal_count += 1
        elif isinstance(o, BNode):
            bnode_count += 1
        if p == RDF.type and isinstance(o, IRI):
            class_counts[o] += 1
    return DatasetStatistics(
        triples=total,
        distinct_subjects=len(subjects),
        distinct_objects=len(objects),
        properties=len(property_counts),
        classes=len(class_counts),
        entities=len(entity_subjects),
        class_partition=dict(class_counts),
        property_partition=dict(property_counts),
        literal_count=literal_count,
        blank_node_count=bnode_count,
    )
