"""Exploratory access layer: facets, keyword search, browsing, sessions,
and user preferences (survey §3.1 and the §2 task/user-variety pillar)."""

from .browser import LinkNavigator, PropertyRow, ResourceBrowser, ResourceView
from .expansion import NeighborhoodExplorer
from .facets import Facet, FacetValue, FacetedBrowser
from .keyword import KeywordIndex, tokenize_label
from .relfinder import RelationPath, RelationStep, find_relationships, relationship_graph
from .preferences import InterestModel, UserPreferences
from .void_stats import DatasetStatistics, compute_statistics
from .session import ExplorationSession, MantraStage, Operation, OperationKind

__all__ = [
    "DatasetStatistics",
    "ExplorationSession",
    "Facet",
    "FacetValue",
    "FacetedBrowser",
    "InterestModel",
    "KeywordIndex",
    "LinkNavigator",
    "MantraStage",
    "NeighborhoodExplorer",
    "Operation",
    "OperationKind",
    "PropertyRow",
    "RelationPath",
    "RelationStep",
    "ResourceBrowser",
    "ResourceView",
    "UserPreferences",
    "tokenize_label",
    "compute_statistics",
    "find_relationships",
    "relationship_graph",
]
