"""Faceted browsing over Linked Data (survey §3.1: /facet, gFacet, Visor,
Explorator, Facete, CubeViz's browser, ...).

The faceted paradigm: the current *focus set* of resources is summarized by
its properties (facets), each with value counts; selecting values filters
the focus conjunctively; *pivoting* re-focuses on the linked objects of a
property (the multi-pivot exploration of Visor [110] / gFacet [57]).
Counts come straight from the store's POS index — no scan of the focus set
per facet value.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..obs import INTERACTIVE, NAVIGATION, OBS
from ..rdf.terms import IRI, BNode, Literal, Subject, Term, Variable
from ..rdf.vocab import RDF
from ..sparql.eval import QueryEngine
from ..sparql.nodes import (
    BinaryExpr,
    FilterPattern,
    FunctionCall,
    GroupGraphPattern,
    Projection,
    SelectQuery,
    TermExpr,
    TriplePatternNode,
    ValuesPattern,
    VariableExpr,
)
from ..store.base import TripleSource

__all__ = ["FacetValue", "Facet", "FacetedBrowser"]


@dataclass(frozen=True)
class FacetValue:
    """One selectable value with its count in the current focus."""

    value: Term
    count: int

    @property
    def label(self) -> str:
        if isinstance(self.value, Literal):
            return self.value.lexical
        if isinstance(self.value, IRI):
            return self.value.local_name or str(self.value)
        return str(self.value)


@dataclass
class Facet:
    """One property with its value distribution."""

    predicate: IRI
    values: list[FacetValue] = field(default_factory=list)

    @property
    def cardinality(self) -> int:
        return len(self.values)


class FacetedBrowser:
    """Conjunctive faceted navigation with pivoting.

    >>> browser = FacetedBrowser(store)          # focus = all subjects
    >>> browser.select(RDF.type, person_class)   # narrow
    >>> browser.facets()                         # value counts update
    >>> browser.pivot(knows)                     # focus = linked objects
    """

    def __init__(
        self,
        store: TripleSource,
        focus: set[Subject] | None = None,
        engine: QueryEngine | None = None,
    ) -> None:
        self.store = store
        self.engine = engine if engine is not None else QueryEngine(store)
        if focus is None:
            focus = {s for s, _, _ in store.triples((None, None, None))}
        self._initial_focus = set(focus)
        self.focus: set[Subject] = set(focus)
        self.constraints: list[tuple[IRI, Term]] = []

    # -- summarization -----------------------------------------------------

    def facets(self, max_values: int = 25, min_count: int = 1) -> list[Facet]:
        """Facets of the current focus, most-discriminating first.

        Facet order: by number of focus resources covered (descending) —
        the usual "most useful filters on top" heuristic.
        """
        with OBS.interaction(
            "facets.summarize", INTERACTIVE, focus=len(self.focus)
        ) as act:
            per_predicate: dict[IRI, Counter] = {}
            coverage: Counter = Counter()
            for subject in self.focus:
                seen_predicates = set()
                for _, p, o in self.store.triples((subject, None, None)):
                    per_predicate.setdefault(p, Counter())[o] += 1
                    seen_predicates.add(p)
                for p in seen_predicates:
                    coverage[p] += 1
            facets = []
            for predicate, values in per_predicate.items():
                top = [
                    FacetValue(value, count)
                    for value, count in values.most_common(max_values)
                    if count >= min_count
                ]
                if top:
                    facets.append(Facet(predicate, top))
            facets.sort(key=lambda f: (-coverage[f.predicate], str(f.predicate)))
            act.set_attribute("facets", len(facets))
            return facets

    def facet(self, predicate: IRI, max_values: int = 25) -> Facet:
        """One facet's value counts via the store's POS index.

        Cost is proportional to the *predicate's* triples, not the whole
        dataset — the reason index-backed browsers refresh facets
        interactively (benchmark C12's subject).
        """
        with OBS.interaction(
            "facets.facet", INTERACTIVE, predicate=str(predicate)
        ):
            counts: Counter = Counter()
            for s, _, o in self.store.triples((None, predicate, None)):
                if s in self.focus:
                    counts[o] += 1
            return Facet(
                predicate,
                [FacetValue(v, c) for v, c in counts.most_common(max_values)],
            )

    def class_facet(self) -> Facet:
        """The rdf:type facet (the root of most faceted UIs)."""
        with OBS.interaction("facets.class_facet", INTERACTIVE):
            counts: Counter = Counter()
            for subject in self.focus:
                for _, _, o in self.store.triples((subject, RDF.type, None)):
                    counts[o] += 1
            return Facet(
                RDF.type,
                [FacetValue(v, c) for v, c in counts.most_common()],
            )

    # -- refinement -----------------------------------------------------------

    def select(self, predicate: IRI, value: Term) -> int:
        """Add the constraint ``predicate = value``; returns new focus size.

        Refinements are queries: the constraint runs through the engine's
        plan pipeline as ``SELECT ?s WHERE { ?s <predicate> value }``.
        """
        with OBS.interaction(
            "facets.select", INTERACTIVE, predicate=str(predicate)
        ) as act:
            subject = Variable("s")
            result = self.engine.query(
                SelectQuery(
                    projections=(Projection(subject),),
                    where=GroupGraphPattern(
                        (TriplePatternNode(subject, predicate, value),)
                    ),
                )
            )
            self.focus &= {row[subject] for row in result.rows if subject in row}
            self.constraints.append((predicate, value))
            act.set_attribute("focus", len(self.focus))
            return len(self.focus)

    def select_range(self, predicate: IRI, low: float, high: float) -> int:
        """Numeric range constraint ``low <= value < high`` (SynopsViz-style
        interval facets for numeric properties), evaluated as a FILTER
        query through the engine."""
        with OBS.interaction(
            "facets.select_range", INTERACTIVE, predicate=str(predicate)
        ) as act:
            subject, value_var = Variable("s"), Variable("v")
            window = BinaryExpr(
                "&&",
                BinaryExpr(">=", VariableExpr(value_var), TermExpr(Literal(float(low)))),
                BinaryExpr("<", VariableExpr(value_var), TermExpr(Literal(float(high)))),
            )
            # ISNUMERIC guard: comparisons fall back to string order for
            # non-numeric literals, but a range facet only matches numbers.
            condition = BinaryExpr(
                "&&", FunctionCall("ISNUMERIC", (VariableExpr(value_var),)), window
            )
            result = self.engine.query(
                SelectQuery(
                    projections=(Projection(subject),),
                    where=GroupGraphPattern(
                        (
                            TriplePatternNode(subject, predicate, value_var),
                            FilterPattern(condition),
                        )
                    ),
                )
            )
            self.focus &= {row[subject] for row in result.rows if subject in row}
            self.constraints.append((predicate, Literal(f"[{low}, {high})")))
            act.set_attribute("focus", len(self.focus))
            return len(self.focus)

    def deselect_last(self) -> int:
        """Undo the most recent constraint (recomputes from scratch)."""
        with OBS.interaction("facets.deselect_last", NAVIGATION):
            if not self.constraints:
                return len(self.focus)
            remaining = self.constraints[:-1]
            self.reset()
            for predicate, value in remaining:
                if isinstance(value, Literal) and value.lexical.startswith("["):
                    # re-apply recorded range constraints
                    body = value.lexical.strip("[)")
                    low_text, high_text = body.split(",")
                    self.select_range(predicate, float(low_text), float(high_text))
                else:
                    self.select(predicate, value)
            return len(self.focus)

    def reset(self) -> None:
        """Clear all constraints; focus returns to the initial set."""
        self.focus = set(self._initial_focus)
        self.constraints = []

    # -- pivoting ---------------------------------------------------------------

    def pivot(self, predicate: IRI) -> "FacetedBrowser":
        """Re-focus on the objects linked from the focus via ``predicate``.

        Returns a *new* browser (multi-pivot exploration keeps the old one
        alive, as in Visor). The link traversal runs through the engine as
        ``SELECT ?o WHERE { VALUES ?s { <focus...> } ?s <predicate> ?o }``.
        """
        with OBS.interaction(
            "facets.pivot", NAVIGATION, predicate=str(predicate)
        ) as act:
            subject, target = Variable("s"), Variable("o")
            result = self.engine.query(
                SelectQuery(
                    projections=(Projection(target),),
                    where=GroupGraphPattern(
                        (
                            ValuesPattern(
                                (subject,),
                                tuple((s,) for s in sorted(self.focus, key=str)),
                            ),
                            TriplePatternNode(subject, predicate, target),
                        )
                    ),
                )
            )
            targets: set[Subject] = {
                row[target]
                for row in result.rows
                if target in row and isinstance(row[target], (IRI, BNode))
            }
            act.set_attribute("targets", len(targets))
            return FacetedBrowser(self.store, focus=targets, engine=self.engine)

    def __len__(self) -> int:
        return len(self.focus)
