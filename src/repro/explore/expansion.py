"""Interactive neighborhood expansion (Lodlive [31] / Fenfire [54] style).

Survey §3.4: "starting from a given URI, the user can explore WoD by
following the links". Rather than loading the whole graph, the view grows
one expansion at a time: ``NeighborhoodExplorer`` maintains the currently
visible subgraph and adds the RDF neighborhood of a node on demand — the
incremental loading pattern of PGV/Trisolda (the *Incr.* column of
Table 2).
"""

from __future__ import annotations

from ..graph.model import PropertyGraph
from ..obs import INTERACTIVE, NAVIGATION, OBS
from ..rdf.terms import IRI, BNode, Literal, Subject
from ..store.base import TripleSource

__all__ = ["NeighborhoodExplorer"]


class NeighborhoodExplorer:
    """A growing subgraph view over a (possibly huge) triple source."""

    def __init__(self, store: TripleSource, max_neighbors: int = 50) -> None:
        if max_neighbors < 1:
            raise ValueError("max_neighbors must be positive")
        self.store = store
        self.max_neighbors = max_neighbors
        self.view = PropertyGraph()
        self.expanded: set[Subject] = set()
        self.triples_fetched = 0

    def start(self, resource: Subject) -> PropertyGraph:
        """Seed the view with one resource and its neighborhood."""
        with OBS.interaction(
            "explore.expand.start", NAVIGATION, resource=str(resource)
        ):
            self.view = PropertyGraph()
            self.expanded = set()
            self.triples_fetched = 0
            return self.expand(resource)

    def expand(self, resource: Subject) -> PropertyGraph:
        """Add ``resource``'s outgoing and incoming links to the view.

        Literal-valued properties become node attributes; at most
        ``max_neighbors`` new edges are added per expansion (Lodlive's cap
        against hub explosions). Re-expanding is a no-op.
        """
        with OBS.interaction(
            "explore.expand", INTERACTIVE, resource=str(resource)
        ) as act:
            if resource in self.expanded:
                return self.view
            self.expanded.add(resource)
            self.view.add_node(resource)
            added = 0
            for s, p, o in self.store.triples((resource, None, None)):
                self.triples_fetched += 1
                if isinstance(o, Literal):
                    self.view.set_attribute(s, str(p), o.value)
                    continue
                if added >= self.max_neighbors:
                    continue
                self.view.add_edge(s, o, label=str(p))
                added += 1
            for s, p, _ in self.store.triples((None, None, resource)):
                self.triples_fetched += 1
                if added >= self.max_neighbors:
                    break
                if isinstance(s, (IRI, BNode)):
                    self.view.add_edge(s, resource, label=str(p))
                    added += 1
            act.set_attribute("edges_added", added)
            return self.view

    def collapse(self, resource: Subject) -> PropertyGraph:
        """Remove a previously expanded node's exclusive neighbors.

        Neighbors that are themselves expanded (or reachable from another
        expanded node) stay; leaf neighbors brought in only by ``resource``
        are dropped — the Lodlive "close bubble" behaviour.
        """
        with OBS.interaction(
            "explore.collapse", INTERACTIVE, resource=str(resource)
        ):
            if resource not in self.expanded:
                return self.view
            self.expanded.discard(resource)
            keep: set[int] = set()
            for anchor in self.expanded:
                if anchor in self.view:
                    index = self.view.index_of(anchor)
                    keep.add(index)
                    keep.update(self.view.neighbors(index))
            if resource in self.view and self.expanded:
                # the collapsed node stays if still linked from a kept anchor
                index = self.view.index_of(resource)
                if index not in keep:
                    keep.discard(index)
            self.view = self.view.subgraph(keep)
            return self.view

    @property
    def frontier(self) -> list[Subject]:
        """Visible nodes not yet expanded — the clickable bubbles."""
        return sorted(
            (node for node in self.view.nodes() if node not in self.expanded),
            key=str,
        )
