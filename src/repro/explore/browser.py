"""Resource browsing and link navigation (survey §3.1).

The original WoD browsers (Haystack, Disco, Tabulator, Marbles) render one
resource at a time as a property-value table with clickable links.
:class:`ResourceBrowser` produces that view from any triple source;
:class:`LinkNavigator` adds the browser chrome: history, back/forward, and
a breadcrumb trail — the "link navigation" exploration primitive.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rdf.terms import IRI, BNode, Literal, Subject, Term
from ..rdf.vocab import RDF, RDFS
from ..sparql.eval import QueryEngine
from ..sparql.nodes import DescribeQuery
from ..store.base import TripleSource

__all__ = ["PropertyRow", "ResourceView", "ResourceBrowser", "LinkNavigator"]


@dataclass(frozen=True)
class PropertyRow:
    """One property with all its values (the Disco table row)."""

    predicate: IRI
    values: tuple[Term, ...]


@dataclass
class ResourceView:
    """Everything a browser page shows for one resource."""

    resource: Subject
    label: str
    types: list[IRI]
    outgoing: list[PropertyRow]
    incoming: list[tuple[Subject, IRI]]  # (source, predicate) backlinks

    @property
    def linked_resources(self) -> list[Subject]:
        """Clickable forward links, in view order."""
        links: list[Subject] = []
        for row in self.outgoing:
            for value in row.values:
                if isinstance(value, (IRI, BNode)) and value not in links:
                    links.append(value)
        return links

    def to_text(self) -> str:
        """Plain-text rendering of the property table."""
        lines = [f"{self.label}  <{self.resource}>"]
        if self.types:
            lines.append("  a " + ", ".join(t.local_name for t in self.types))
        for row in self.outgoing:
            rendered = ", ".join(
                v.lexical if isinstance(v, Literal) else str(v) for v in row.values
            )
            lines.append(f"  {row.predicate.local_name}: {rendered}")
        if self.incoming:
            lines.append(f"  ({len(self.incoming)} incoming links)")
        return "\n".join(lines)


class ResourceBrowser:
    """Builds :class:`ResourceView` pages from a triple source."""

    def __init__(
        self,
        store: TripleSource,
        max_incoming: int = 50,
        engine: QueryEngine | None = None,
    ) -> None:
        self.store = store
        self.max_incoming = max_incoming
        self.engine = engine if engine is not None else QueryEngine(store)

    def label(self, resource: Subject) -> str:
        for _, _, o in self.store.triples((resource, RDFS.label, None)):
            if isinstance(o, Literal):
                return o.lexical
        if isinstance(resource, IRI):
            return resource.local_name or str(resource)
        return str(resource)

    def describe(self, resource: Subject) -> ResourceView:
        """The property-value page for ``resource``.

        A browser page *is* a DESCRIBE query — the engine returns the
        resource's concise description graph (outgoing plus incoming
        triples), and the view is shaped from that graph.
        """
        description = self.engine.query(DescribeQuery(resources=(resource,)))
        by_predicate: dict[IRI, list[Term]] = {}
        types: list[IRI] = []
        for _, p, o in description.triples((resource, None, None)):
            if p == RDF.type and isinstance(o, IRI):
                types.append(o)
            else:
                by_predicate.setdefault(p, []).append(o)
        outgoing = [
            PropertyRow(p, tuple(sorted(values, key=lambda t: t.n3())))
            for p, values in sorted(by_predicate.items())
        ]
        incoming: list[tuple[Subject, IRI]] = []
        for s, p, _ in description.triples((None, None, resource)):
            incoming.append((s, p))
            if len(incoming) >= self.max_incoming:
                break
        return ResourceView(
            resource=resource,
            label=self.label(resource),
            types=sorted(types),
            outgoing=outgoing,
            incoming=incoming,
        )


@dataclass
class LinkNavigator:
    """Back/forward navigation over ResourceBrowser pages."""

    browser: ResourceBrowser
    _history: list[Subject] = field(default_factory=list)
    _position: int = -1

    @property
    def current(self) -> Subject | None:
        if 0 <= self._position < len(self._history):
            return self._history[self._position]
        return None

    def visit(self, resource: Subject) -> ResourceView:
        """Navigate to ``resource`` (truncates any forward history)."""
        view = self.browser.describe(resource)
        self._history = self._history[: self._position + 1]
        self._history.append(resource)
        self._position += 1
        return view

    def follow(self, view: ResourceView, index: int) -> ResourceView:
        """Click the ``index``-th forward link of a page."""
        links = view.linked_resources
        if not 0 <= index < len(links):
            raise IndexError(f"page has {len(links)} links, asked for {index}")
        return self.visit(links[index])

    def back(self) -> ResourceView:
        if self._position <= 0:
            raise IndexError("no earlier page")
        self._position -= 1
        return self.browser.describe(self._history[self._position])

    def forward(self) -> ResourceView:
        if self._position >= len(self._history) - 1:
            raise IndexError("no later page")
        self._position += 1
        return self.browser.describe(self._history[self._position])

    @property
    def breadcrumbs(self) -> list[str]:
        return [
            self.browser.label(resource)
            for resource in self._history[: self._position + 1]
        ]
