"""Keyword search over resource labels (Table 2's Keyword column).

VisiNav, Lodlive, RDF-Gravity, and graphVizdb all enter graphs through
keyword search: the user types a few words, the system returns matching
resources to start navigating from. Implemented as a classic in-memory
inverted index with TF-IDF ranking over label-bearing predicates.
"""

from __future__ import annotations

import math
import re
from collections import Counter, defaultdict

from ..obs import BATCH, INTERACTIVE, OBS
from ..rdf.terms import IRI, Literal, Subject
from ..rdf.vocab import FOAF, RDFS, SKOS
from ..store.base import TripleSource

__all__ = ["KeywordIndex", "tokenize_label"]

_LABEL_PREDICATES = (RDFS.label, FOAF.name, SKOS.prefLabel, IRI(str(SKOS) + "altLabel"))

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def tokenize_label(text: str) -> list[str]:
    """Lowercased alphanumeric tokens, camelCase split."""
    spaced = re.sub(r"(?<=[a-z0-9])(?=[A-Z])", " ", text)
    return _TOKEN_RE.findall(spaced.lower())


class KeywordIndex:
    """TF-IDF inverted index over resource labels.

    Indexes ``rdfs:label``, ``foaf:name``, SKOS labels, and (as fallback)
    IRI local names, so label-poor datasets remain searchable.
    """

    def __init__(self, store: TripleSource | None = None) -> None:
        self._postings: dict[str, dict[Subject, int]] = defaultdict(dict)
        self._doc_lengths: dict[Subject, int] = {}
        self._labels: dict[Subject, str] = {}
        if store is not None:
            self.index_store(store)

    # -- construction ------------------------------------------------------

    def add(self, resource: Subject, text: str) -> None:
        """Index ``text`` for ``resource`` (repeat calls accumulate)."""
        tokens = tokenize_label(text)
        if not tokens:
            return
        counts = Counter(tokens)
        for token, count in counts.items():
            self._postings[token][resource] = (
                self._postings[token].get(resource, 0) + count
            )
        self._doc_lengths[resource] = self._doc_lengths.get(resource, 0) + len(tokens)
        self._labels.setdefault(resource, text)

    def index_store(self, store: TripleSource) -> int:
        """Index all label predicates plus IRI local names; returns the
        number of resources indexed."""
        with OBS.interaction("keyword.index_store", BATCH) as act:
            indexed: set[Subject] = set()
            for predicate in _LABEL_PREDICATES:
                for s, _, o in store.triples((None, predicate, None)):
                    if isinstance(o, Literal):
                        self.add(s, o.lexical)
                        indexed.add(s)
            for s, _, _ in store.triples((None, None, None)):
                if s not in indexed and isinstance(s, IRI):
                    local = s.local_name
                    if local:
                        self.add(s, local)
                        indexed.add(s)
            act.set_attribute("resources", len(indexed))
            return len(indexed)

    # -- search --------------------------------------------------------------

    @property
    def document_count(self) -> int:
        return len(self._doc_lengths)

    def search(self, query: str, limit: int = 10) -> list[tuple[Subject, float]]:
        """Resources ranked by TF-IDF cosine-ish score (AND-ish semantics:
        matching more query terms dominates)."""
        if limit < 1:
            raise ValueError("limit must be positive")
        with OBS.interaction("keyword.search", INTERACTIVE, query=query) as act:
            tokens = tokenize_label(query)
            if not tokens or not self._doc_lengths:
                return []
            n = self.document_count
            scores: dict[Subject, float] = defaultdict(float)
            matches: dict[Subject, int] = defaultdict(int)
            for token in tokens:
                postings = self._postings.get(token)
                if not postings:
                    continue
                idf = math.log(1.0 + n / len(postings))
                for resource, tf in postings.items():
                    scores[resource] += (tf / self._doc_lengths[resource]) * idf
                    matches[resource] += 1
            ranked = sorted(
                scores.items(),
                key=lambda item: (-matches[item[0]], -item[1], str(item[0])),
            )
            act.set_attribute("results", min(limit, len(ranked)))
            return [(resource, score) for resource, score in ranked[:limit]]

    def label_of(self, resource: Subject) -> str:
        return self._labels.get(resource, str(resource))
