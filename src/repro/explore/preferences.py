"""User preference profiles and lightweight interest learning.

Survey Section 2, "Variety of Tasks & Users": systems should let users
customize the exploration (abstraction level, sampling rates, preferred
organizations) and should *capture user interests* to guide them toward
interesting regions [37]. :class:`UserPreferences` holds the explicit
knobs; :class:`InterestModel` learns soft weights from the session log.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from .session import ExplorationSession, OperationKind

__all__ = ["UserPreferences", "InterestModel"]


@dataclass
class UserPreferences:
    """Explicit, user-set exploration parameters."""

    preferred_charts: list[str] = field(default_factory=list)
    abstraction_level: int = 0  # 0 = auto; higher = coarser views
    sampling_rate: float = 1.0  # 1.0 = exact; < 1 enables approximation
    max_visual_items: int = 50  # screen budget for overview levels
    confidence: float = 0.95  # for progressive estimates

    def __post_init__(self) -> None:
        if not 0.0 < self.sampling_rate <= 1.0:
            raise ValueError("sampling_rate must be in (0, 1]")
        if self.max_visual_items < 1:
            raise ValueError("max_visual_items must be positive")
        if self.abstraction_level < 0:
            raise ValueError("abstraction_level must be >= 0")

    @property
    def wants_approximation(self) -> bool:
        return self.sampling_rate < 1.0

    def tree_degree(self, default: int = 4) -> int:
        """Map the abstraction level onto a HETree degree: coarser views
        want higher fan-out (fewer levels, bigger groups)."""
        return default * (2 ** self.abstraction_level)


@dataclass
class InterestModel:
    """Frequency-based interest weights over exploration targets.

    Every operation's target accumulates weight (details views count
    extra — reaching details signals real interest, per [37]'s
    explore-by-example intuition). ``top_targets`` drives "you may also
    want to look at" hints and recommender boosts.
    """

    weights: Counter = field(default_factory=Counter)
    detail_bonus: float = 2.0

    def observe(self, session: ExplorationSession) -> None:
        for operation in session.operations:
            if not operation.target:
                continue
            weight = 1.0
            if operation.kind is OperationKind.DETAILS:
                weight += self.detail_bonus
            self.weights[operation.target] += weight

    def top_targets(self, k: int = 5) -> list[tuple[str, float]]:
        if k < 1:
            raise ValueError("k must be positive")
        return [(t, float(w)) for t, w in self.weights.most_common(k)]

    def interest_in(self, target: str) -> float:
        """Normalized interest in [0, 1]."""
        if not self.weights:
            return 0.0
        top = self.weights.most_common(1)[0][1]
        return self.weights.get(target, 0.0) / top if top else 0.0
