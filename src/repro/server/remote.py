"""A :class:`TripleSource` backed by a remote SPARQL Protocol endpoint.

The federation closing-the-loop piece: :class:`RemoteEndpointSource` speaks
the same wire protocol :class:`~repro.server.app.ReproServer` serves, so a
:class:`~repro.store.federated.FederatedStore` can treat remote endpoints
and in-process stores uniformly — the survey's "federated exploration over
distributed linked-data endpoints" scenario, demonstrable over loopback.

Pattern mapping onto SPARQL Protocol operations:

* ``triples(pattern)``  → ``CONSTRUCT`` with the pattern's fixed terms
  inlined, answered as N-Triples and parsed back into term tuples;
* ``count(pattern)``    → ``SELECT (COUNT(*) AS ?matches)`` over the same
  pattern, answered as SPARQL results JSON;
* ``statistics()``      → ``GET /statistics``, so a federating planner can
  cost joins against this endpoint without scanning it over the wire.

Transient overload (503 + ``Retry-After``) is retried with the server's
own hint, a bounded number of times — the client half of the explicit
backpressure contract. Anything else unexpected raises
:class:`EndpointError`.

Every outgoing request carries the caller's trace context
(``X-Repro-Trace`` / ``X-Repro-Span`` headers, taken from the ambient
:data:`repro.obs.OBS` tracer): each ``_sparql`` call runs inside one
``remote.call`` span, so a federated query produces a single trace id
that spans processes — the remote server continues the trace and its
exported spans stitch back under this client's wire-call span
(:func:`repro.obs.export.stitch_records`). All retry attempts of one
call reuse the same span, so the trace id is stable across 503 backoff,
and each retry bumps the always-on ``server.remote.retries`` counter.

Blank nodes are scoped to one document/endpoint, so a BNode in a pattern
cannot be matched remotely; those lookups raise ``ValueError`` rather than
silently returning nothing.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Iterator
from urllib.parse import urlencode, urlsplit

from ..obs import OBS
from ..rdf.graph import TriplePattern
from ..rdf.ntriples import parse_ntriples
from ..rdf.terms import BNode, IRI, Literal, Triple
from ..sparql.results import parse_sparql_json
from ..store.base import StatisticsSnapshot

__all__ = ["EndpointError", "RemoteEndpointSource"]

NTRIPLES_TYPE = "application/n-triples"
JSON_TYPE = "application/sparql-results+json"


class EndpointError(RuntimeError):
    """The endpoint answered with an unexpected status or payload."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"endpoint error {status}: {message}")
        self.status = status


def _pattern_terms(pattern: TriplePattern) -> tuple[str, str, str]:
    """SPARQL surface forms for a pattern: fixed terms in n3, ``None`` as
    variables ``?s ?p ?o``."""
    names = ("?s", "?p", "?o")
    rendered = []
    for term, name in zip(pattern, names):
        if term is None:
            rendered.append(name)
        elif isinstance(term, BNode):
            raise ValueError(
                "blank nodes are document-scoped and cannot address a "
                "remote endpoint's terms"
            )
        elif isinstance(term, (IRI, Literal)):
            rendered.append(term.n3())
        else:
            raise TypeError(f"unsupported pattern term: {term!r}")
    return tuple(rendered)


class RemoteEndpointSource:
    """Triple-pattern access to a SPARQL endpoint (``TripleSource`` shape).

    >>> source = RemoteEndpointSource("http://127.0.0.1:8890")
    >>> source.count((None, rdf_type, None))    # doctest: +SKIP
    """

    def __init__(
        self,
        base_url: str,
        timeout_s: float = 10.0,
        max_retries: int = 3,
        max_retry_wait_s: float = 2.0,
    ) -> None:
        split = urlsplit(base_url)
        if split.scheme != "http" or not split.hostname:
            raise ValueError(f"need an http:// base URL, got {base_url!r}")
        self.base_url = base_url.rstrip("/")
        self.host = split.hostname
        self.port = split.port or 80
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.max_retry_wait_s = max_retry_wait_s
        # client-side accounting, mirrored by tests and FederatedStore demos
        self.requests_sent = 0
        self.retries = 0

    # ------------------------------------------------------------------ #
    # Wire
    # ------------------------------------------------------------------ #

    def _request(
        self, method: str, target: str, accept: str, body: bytes | None = None,
        content_type: str | None = None,
        extra_headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            headers = {"Accept": accept, "Connection": "close"}
            if content_type is not None:
                headers["Content-Type"] = content_type
            if extra_headers:
                headers.update(extra_headers)
            context = OBS.tracer.current_context()
            if context is not None:
                headers.update(context.to_headers())
            connection.request(method, target, body=body, headers=headers)
            response = connection.getresponse()
            payload = response.read()
            lowered = {
                name.lower(): value for name, value in response.getheaders()
            }
            return response.status, lowered, payload
        finally:
            connection.close()

    def _sparql(
        self, query: str, accept: str,
        extra_params: dict[str, str] | None = None,
        extra_headers: dict[str, str] | None = None,
    ) -> bytes:
        """POST one query, honoring 503 + Retry-After up to the retry cap.

        The whole retry loop runs inside one ``remote.call`` span: every
        attempt of one logical call carries the *same* trace and span ids
        on the wire, so the remote server's spans stitch under a single
        wire hop no matter how many 503 round-trips it took.
        """
        params = {"query": query}
        if extra_params:
            params.update(extra_params)
        body = urlencode(params).encode("utf-8")
        attempts = self.max_retries + 1
        with OBS.tracer.span(
            "remote.call", endpoint=self.base_url, target="/sparql"
        ) as span:
            for attempt in range(attempts):
                self.requests_sent += 1
                try:
                    status, headers, payload = self._request(
                        "POST", "/sparql", accept, body=body,
                        content_type="application/x-www-form-urlencoded",
                        extra_headers=extra_headers,
                    )
                except OSError as exc:
                    raise EndpointError(
                        0, f"connection failed: {exc}"
                    ) from exc
                if status == 200:
                    span.set_attribute("attempts", attempt + 1)
                    span.set_attribute("status", status)
                    return payload
                if status == 503 and attempt < attempts - 1:
                    self.retries += 1
                    OBS.metrics.counter(
                        "server.remote.retries", endpoint=self.base_url
                    ).inc()
                    try:
                        wait = float(headers.get("retry-after", "1"))
                    except ValueError:
                        # repro: swallow(malformed Retry-After header
                        # falls back to the 1s default)
                        wait = 1.0
                    time.sleep(min(max(wait, 0.0), self.max_retry_wait_s))
                    continue
                span.set_attribute("attempts", attempt + 1)
                span.set_attribute("status", status)
                raise EndpointError(
                    status, payload.decode("utf-8", "replace")[:200]
                )
        raise EndpointError(503, "retries exhausted")  # pragma: no cover

    # ------------------------------------------------------------------ #
    # TripleSource
    # ------------------------------------------------------------------ #

    def triples(
        self, pattern: TriplePattern = (None, None, None)
    ) -> Iterator[Triple]:
        s, p, o = _pattern_terms(pattern)
        query = f"CONSTRUCT {{ {s} {p} {o} }} WHERE {{ {s} {p} {o} }}"
        payload = self._sparql(query, NTRIPLES_TYPE)
        yield from parse_ntriples(payload.decode("utf-8"))

    def count(self, pattern: TriplePattern = (None, None, None)) -> int:
        s, p, o = _pattern_terms(pattern)
        query = f"SELECT (COUNT(*) AS ?matches) WHERE {{ {s} {p} {o} }}"
        payload = self._sparql(query, JSON_TYPE)
        result = parse_sparql_json(payload.decode("utf-8"))
        for row in result.rows:
            for term in row.values():
                if isinstance(term, Literal) and isinstance(
                    term.value, (int, float)
                ):
                    return int(term.value)
        raise EndpointError(200, "count answer carried no numeric binding")

    def __len__(self) -> int:
        return self.count((None, None, None))

    # ------------------------------------------------------------------ #
    # Sketch wire (federated approximate aggregates)
    # ------------------------------------------------------------------ #

    def sketch_select(
        self, query: str, max_rows: int = 2_000, confidence: float = 0.95
    ) -> dict:
        """Ask the endpoint for a serialized sketch bundle instead of rows.

        ``X-Repro-Sketch: 1`` flips the server's ``/sparql`` into wire
        mode for sketch-eligible aggregates: the response is the JSON
        :class:`~repro.server.sketch.SketchBundle` the federation
        coordinator merges (what ships is kilobytes of sketch state, not
        the row stream). ``confidence`` is pinned by the *coordinator*
        when rendering the merged answer; it is passed here only so both
        sides build sketches with the same declared level.
        """
        del confidence  # the remote uses its own configured level
        payload = self._sparql(
            query, "application/json",
            extra_params={"max_rows": str(max_rows)},
            extra_headers={"X-Repro-Sketch": "1"},
        )
        return json.loads(payload.decode("utf-8"))

    # ------------------------------------------------------------------ #
    # Planner support
    # ------------------------------------------------------------------ #

    def statistics(self) -> StatisticsSnapshot:
        """The endpoint's precomputed statistics (``GET /statistics``)."""
        try:
            status, _headers, payload = self._request(
                "GET", "/statistics", "application/json"
            )
        except OSError as exc:
            raise EndpointError(0, f"connection failed: {exc}") from exc
        if status != 200:
            raise EndpointError(status, payload.decode("utf-8", "replace")[:200])
        data = json.loads(payload.decode("utf-8"))
        return StatisticsSnapshot(
            triple_count=int(data["triple_count"]),
            distinct_subjects=int(data["distinct_subjects"]),
            distinct_predicates=int(data["distinct_predicates"]),
            distinct_objects=int(data["distinct_objects"]),
            predicate_cardinalities={
                IRI(predicate): int(count)
                for predicate, count
                in data.get("predicate_cardinalities", {}).items()
            },
            predicate_distinct_objects={
                IRI(predicate): int(count)
                for predicate, count
                in data.get("predicate_distinct_objects", {}).items()
            },
        )
