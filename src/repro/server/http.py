"""Minimal HTTP/1.1 framing over raw sockets.

Just enough of RFC 7230 for a SPARQL Protocol endpoint and its tests: one
request per connection (the server always answers ``Connection: close``),
``Content-Length`` bodies, percent-decoded query strings and urlencoded
form bodies, and chunked transfer encoding on the response side so SELECT
results stream row batches without a known total size.

Deliberately not here: keep-alive/pipelining, multipart, compression,
HTTP/2. The serving layer's interesting problems are admission control and
load shedding, not protocol completeness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import BinaryIO, Iterable
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "HttpError",
    "HttpRequest",
    "read_request",
    "write_response",
    "write_chunked",
    "STATUS_REASONS",
]

MAX_REQUEST_LINE = 16 * 1024
MAX_HEADER_COUNT = 64
MAX_BODY_BYTES = 4 * 1024 * 1024

STATUS_REASONS = {
    200: "OK",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    406: "Not Acceptable",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A malformed or oversized request; carries the status to answer with."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HttpRequest:
    """One parsed request: method, split target, headers, raw body."""

    method: str
    target: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    def form(self) -> dict[str, str]:
        """The urlencoded body as a dict (empty for other content types)."""
        if "application/x-www-form-urlencoded" not in self.header("content-type"):
            return {}
        return dict(parse_qsl(self.body.decode("utf-8", "replace"),
                              keep_blank_values=True))

    def param(self, name: str, default: str | None = None) -> str | None:
        """A parameter from the query string, falling back to the form body."""
        if name in self.query:
            return self.query[name]
        return self.form().get(name, default)


def _read_line(rfile: BinaryIO) -> bytes:
    line = rfile.readline(MAX_REQUEST_LINE + 1)
    if len(line) > MAX_REQUEST_LINE:
        raise HttpError(400, "header line too long")
    return line


def read_request(rfile: BinaryIO) -> HttpRequest | None:
    """Parse one request from a socket file; ``None`` on clean EOF.

    Raises :class:`HttpError` (with a client-error status) on malformed
    framing, so the caller can still answer before closing.
    """
    raw = _read_line(rfile)
    if not raw:
        return None
    parts = raw.decode("latin-1").rstrip("\r\n").split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, "malformed request line")
    method, target, _version = parts

    headers: dict[str, str] = {}
    for _ in range(MAX_HEADER_COUNT + 1):
        line = _read_line(rfile)
        if line in (b"\r\n", b"\n", b""):
            break
        if len(headers) >= MAX_HEADER_COUNT:
            raise HttpError(400, "too many headers")
        text = line.decode("latin-1").rstrip("\r\n")
        name, sep, value = text.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header: {text!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise HttpError(400, "malformed Content-Length") from None
        if length < 0:
            raise HttpError(400, "negative Content-Length")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, "request body too large")
        body = rfile.read(length)
        if len(body) != length:
            raise HttpError(400, "truncated request body")

    split = urlsplit(target)
    return HttpRequest(
        method=method.upper(),
        target=target,
        path=unquote(split.path) or "/",
        query=dict(parse_qsl(split.query, keep_blank_values=True)),
        headers=headers,
        body=body,
    )


def _head(status: int, headers: dict[str, str]) -> bytes:
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def write_response(
    wfile: BinaryIO,
    status: int,
    headers: dict[str, str],
    body: bytes = b"",
) -> None:
    """Write a fixed-length response (Content-Length framing)."""
    out = dict(headers)
    out.setdefault("Content-Length", str(len(body)))
    out.setdefault("Connection", "close")
    wfile.write(_head(status, out) + body)
    wfile.flush()


def write_chunked(
    wfile: BinaryIO,
    status: int,
    headers: dict[str, str],
    chunks: Iterable[bytes | str],
) -> None:
    """Write a chunked response, flushing after every chunk.

    The per-chunk flush is what keeps first-row latency flat: the client
    sees the header and the first batch of rows while the operator tree is
    still producing the rest.
    """
    out = dict(headers)
    out["Transfer-Encoding"] = "chunked"
    out.setdefault("Connection", "close")
    out.pop("Content-Length", None)
    wfile.write(_head(status, out))
    for chunk in chunks:
        data = chunk.encode("utf-8") if isinstance(chunk, str) else chunk
        if not data:
            continue
        wfile.write(f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n")
        wfile.flush()
    wfile.write(b"0\r\n\r\n")
    wfile.flush()
