"""repro.server — SPARQL 1.1 Protocol serving layer.

The survey's requirements only become a *system* when they are reachable
over the wire: this package turns the query/explore stack into a concurrent
HTTP endpoint with the degradation behaviour the survey catalogues —
bounded admission instead of unbounded buffering, and load-shedding to
approximate answers instead of missed latency budgets.

Pieces (all stdlib — ``socket`` + ``threading``, no web framework):

* :mod:`repro.server.http` — minimal HTTP/1.1 request parsing and fixed or
  chunked response writing over raw sockets;
* :mod:`repro.server.admission` — :class:`FairAdmissionQueue`, the bounded
  per-tenant round-robin queue whose overflow is an explicit 503 +
  ``Retry-After`` (backpressure, never buffering);
* :mod:`repro.server.shedding` — :class:`LoadShedder`, the tier controller
  watching a sliding window of interactive latencies against the
  ``interactive`` budget (:mod:`repro.obs.budget`), with hysteresis;
* :mod:`repro.server.approximate` — bounded-work approximate evaluation of
  eligible aggregate queries (the shed tier's answer path), error bounds
  via :class:`repro.approx.progressive.StreamingMoments`;
* :mod:`repro.server.app` — :class:`ReproServer`: acceptor + worker pool,
  routing, content negotiation, chunked streaming of SELECT results;
* :mod:`repro.server.remote` — :class:`RemoteEndpointSource`, a
  :class:`~repro.store.base.TripleSource` client over the same protocol,
  federating real network endpoints through
  :class:`~repro.store.federated.FederatedStore`.

Run one with ``python -m repro.server`` (see ``--help``).
"""

from .admission import AdmissionSnapshot, FairAdmissionQueue
from .app import ReproServer, ServerConfig
from .approximate import ApproximateAnswer, approximate_select, eligible_aggregate
from .http import HttpError, HttpRequest, read_request
from .remote import EndpointError, RemoteEndpointSource
from .shedding import AGGRESSIVE, EXACT, SAMPLED, LoadShedder, TIER_NAMES

__all__ = [
    "AGGRESSIVE",
    "AdmissionSnapshot",
    "ApproximateAnswer",
    "EXACT",
    "EndpointError",
    "FairAdmissionQueue",
    "HttpError",
    "HttpRequest",
    "LoadShedder",
    "RemoteEndpointSource",
    "ReproServer",
    "SAMPLED",
    "ServerConfig",
    "TIER_NAMES",
    "approximate_select",
    "eligible_aggregate",
    "read_request",
]
