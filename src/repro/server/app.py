"""The SPARQL 1.1 Protocol endpoint: acceptor, worker pool, routing.

:class:`ReproServer` exposes the query/explore stack over HTTP:

* ``GET/POST /sparql`` — SPARQL Protocol operation (``query`` parameter,
  urlencoded form, or an ``application/sparql-query`` body). SELECT
  results stream as chunked W3C JSON / CSV / TSV (content-negotiated);
  ASK answers the results-JSON boolean document; CONSTRUCT / DESCRIBE
  answer N-Triples.
* ``GET /facets`` — the faceted-browsing summary of the served dataset.
* ``GET /describe`` — DESCRIBE one resource (the browser's detail view).
* ``GET /statistics`` — the store's :class:`StatisticsSnapshot` as JSON
  (what :class:`~repro.server.remote.RemoteEndpointSource` reads so a
  federating client can *plan* against this endpoint without scanning it).
* ``GET /health``, ``GET /stats`` — liveness and serving counters; these
  bypass the admission queue so probes survive overload.
* ``GET /metrics`` — every process metric: Prometheus text exposition by
  default, the JSON registry snapshot for ``Accept: application/json``.
  Admission depth, shed tier, per-tenant inflight counts, and per-tenant
  SLO burn rates are refreshed into gauges on each scrape.
* ``GET /debug/flight`` — the flight recorder over HTTP: a JSON index of
  captured dumps, or one dump's JSONL via ``?seq=N`` / ``?seq=latest``.
* ``GET /debug/trace`` — this server's finished root spans as JSONL
  (filtered to this instance's ``service`` label), ready for
  :func:`repro.obs.export.stitch_jsonl` on the client side.
* ``GET /debug/queries`` — the structured query log as JSONL, newest
  window of executed queries with plan digest, strategy, tenant, tier,
  cache outcome, trace id, latency, and resource counters; filterable
  with ``?tenant=`` / ``?digest=`` / ``?since=<unix-ts>`` / ``?limit=``
  (``?all=1`` lifts the this-service filter when several servers share
  one process).

The observability routes bypass admission exactly like ``/health`` — an
overloaded server must stay diagnosable *while* overloaded.

Requests carrying ``X-Repro-Trace`` / ``X-Repro-Span`` headers continue
the caller's trace: the request interaction's span adopts the remote
trace id and records the caller's span id as its ``parent_span_id``, so
one federated query over several servers exports as a single stitched
span tree.

Degradation order under load: first the shed tiers reroute eligible
aggregate queries through bounded-work approximation
(:mod:`repro.server.approximate`) with an ``X-Repro-Approximate`` header
and error-bound metadata; only when the admission queue itself is full
does the server answer 503 + ``Retry-After``. It never buffers without
bound and it never silently drops a request.

Every admitted request runs as an :meth:`repro.obs.Observability.
interaction`, so the latency-budget accountant and the flight recorder
cover the serving layer exactly as they cover the local explore surface.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from dataclasses import dataclass, field

from ..explore.facets import FacetedBrowser
from ..obs import (
    INTERACTIVE,
    NAVIGATION,
    OBS,
    SloTracker,
    TraceContext,
    record_error,
)
from ..obs.export import render_prometheus, spans_to_jsonl
from ..obs.metrics import BoundedLabelSet
from ..rdf.ntriples import serialize_ntriples
from ..rdf.terms import IRI
from ..sparql.cached import CachedQueryEngine
from ..sparql.lexer import SparqlSyntaxError
from ..sparql.nodes import (
    AskQuery,
    ConstructQuery,
    DescribeQuery,
    SelectQuery,
)
from ..sparql.parser import parse_query
from ..sparql.results import (
    SelectResult,
    ask_to_sparql_json,
    iter_csv,
    iter_sparql_json,
    iter_tsv,
    term_to_json,
    to_csv,
    to_sparql_json,
    to_tsv,
)
from ..store.base import StoreStatistics, TripleSource, compute_statistics
from .admission import FairAdmissionQueue
from .approximate import approximate_select, eligible_aggregate
from .sketch import (
    build_sketch_bundle,
    bundle_to_answer,
    eligible_sketch,
    federated_sketch_bundle,
    iter_sketch_passes,
)
from .http import (
    HttpError,
    HttpRequest,
    read_request,
    write_chunked,
    write_response,
)
from .shedding import AGGRESSIVE, EXACT, TIER_NAMES, LoadShedder

__all__ = ["ServerConfig", "ReproServer"]

JSON_TYPE = "application/sparql-results+json"
CSV_TYPE = "text/csv"
TSV_TYPE = "text/tab-separated-values"
NTRIPLES_TYPE = "application/n-triples"
TABLE_TYPE = "text/plain"


@dataclass
class ServerConfig:
    """Everything tunable about one endpoint instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral (tests); the CLI defaults to 8890
    workers: int = 4
    queue_capacity: int = 32
    retry_after_s: int = 1
    # shedding
    shed_budget_ms: float | None = None  # None = the `interactive` budget
    shed_window: int = 64
    shed_min_observations: int = 8
    shed_recover_fraction: float = 0.8
    shed_aggressive_factor: float = 3.0
    approx_max_rows: int = 2_000
    approx_confidence: float = 0.95
    # per-tenant SLOs (error-budget burn feeding the shedder)
    slo_objective: float = 0.99
    slo_window_s: float = 30.0
    # engine
    cache_capacity: int = 128
    # delivery
    chunk_rows: int = 64
    read_timeout_s: float = 10.0
    # test/CI hook: artificial per-query latency to force overload;
    # scoped to one tenant when debug_delay_tenant is set (so tests can
    # make exactly one tenant burn its error budget)
    debug_delay_ms: float = 0.0
    debug_delay_tenant: str | None = None
    default_tenant: str = "public"


@dataclass
class _Pending:
    """One admitted request waiting for a worker."""

    connection: socket.socket
    wfile: object
    request: HttpRequest
    tenant: str
    accepted_at: float = field(default_factory=time.monotonic)


class ReproServer:
    """A concurrent SPARQL endpoint over any :class:`TripleSource`.

    ``start()`` binds and spawns the acceptor plus worker threads;
    ``stop()`` shuts everything down. Usable as a context manager. Each
    worker owns its own :class:`CachedQueryEngine` over the shared store
    (stores are read-safe under concurrent readers; the result caches are
    per-worker so no cross-thread locking sits on the query path).
    """

    def __init__(self, store: TripleSource, config: ServerConfig | None = None) -> None:
        self.store = store
        self.config = config or ServerConfig()
        self.admission: FairAdmissionQueue[_Pending] = FairAdmissionQueue(
            self.config.queue_capacity
        )
        self.shedder = LoadShedder(
            budget_ms=self.config.shed_budget_ms,
            window=self.config.shed_window,
            min_observations=self.config.shed_min_observations,
            aggressive_factor=self.config.shed_aggressive_factor,
            recover_fraction=self.config.shed_recover_fraction,
        )
        self.slo = SloTracker(
            objective=self.config.slo_objective,
            window_s=self.config.slo_window_s,
            budgets=OBS.budgets,
        )
        self._sock: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._served_by_tier: dict[int, int] = {}  # guarded-by: _lock
        self._aggregate_served = 0  # guarded-by: _lock
        self._aggregate_approximate = 0  # guarded-by: _lock
        self._responses_by_status: dict[int, int] \
            = {}  # guarded-by: _lock
        self._inflight: dict[str, int] = {}  # guarded-by: _lock
        # tenant names come off the wire: cap the label cardinality so an
        # adversarial client cannot mint unbounded metric time series
        self._tenant_labels = BoundedLabelSet(32)
        self.port: int | None = None
        self._service = "repro-server"
        # One engine per worker; registered here so /stats and /metrics
        # can aggregate their execution counters across the pool.
        self._engines: list[CachedQueryEngine] = []
        # A serving process always records its workload: the query log is
        # the accounting substrate /debug/queries and the workload
        # analyzer read. (Library use stays opt-in via REPRO_QUERYLOG.)
        OBS.querylog.enabled = True

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> "ReproServer":
        if self._sock is not None:
            raise RuntimeError("server already started")
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.config.host, self.config.port))
        sock.listen(128)
        self._sock = sock
        self.port = sock.getsockname()[1]
        # The service label distinguishes this instance's spans when
        # several servers share one process (tests) or one trace (federation).
        self._service = f"repro-server:{self.port}"
        acceptor = threading.Thread(
            target=self._accept_loop, name="repro-accept", daemon=True
        )
        acceptor.start()
        self._threads.append(acceptor)
        for index in range(self.config.workers):
            worker = threading.Thread(
                target=self._worker_loop, name=f"repro-worker-{index}",
                daemon=True,
            )
            worker.start()
            self._threads.append(worker)
        return self

    def stop(self) -> None:
        self._stop.set()
        self.admission.close()
        sock = self._sock
        if sock is not None:
            self._sock = None
            try:
                # shutdown (not just close) wakes a blocked accept()
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                # repro: swallow(teardown race: the socket may already
                # be closed by the acceptor exiting)
                pass
            try:
                sock.close()
            except OSError:
                # repro: swallow(idempotent close during stop())
                pass
        for thread in self._threads:
            thread.join(timeout=2.0)
        self._threads.clear()
        # Drain anything still queued with an explicit 503.
        while True:
            pending = self.admission.take(timeout=0)
            if pending is None:
                break
            self._reject(pending.wfile, pending.connection)

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def base_url(self) -> str:
        if self.port is None:
            raise RuntimeError("server not started")
        return f"http://{self.config.host}:{self.port}"

    # ------------------------------------------------------------------ #
    # Acceptor
    # ------------------------------------------------------------------ #

    def _accept_loop(self) -> None:
        sock = self._sock
        while not self._stop.is_set():
            try:
                connection, _address = sock.accept()
            except OSError:
                return  # listening socket closed by stop()
            try:
                self._accept_one(connection)
            except Exception as exc:  # keep accepting no matter what
                record_error("server.accept", exc)
                _close_quietly(connection)

    def _accept_one(self, connection: socket.socket) -> None:
        connection.settimeout(self.config.read_timeout_s)
        rfile = connection.makefile("rb")
        wfile = connection.makefile("wb")
        try:
            request = read_request(rfile)
        except HttpError as error:
            self._respond_error(wfile, error.status, error.message)
            _close_quietly(connection)
            return
        except OSError:
            _close_quietly(connection)
            return
        finally:
            rfile.close()
        if request is None:
            _close_quietly(connection)
            return
        # Probes and observability routes bypass admission so operators
        # can see an overloaded server's state while it is overloaded.
        probe = self._probe_routes().get(request.path.rstrip("/") or "/")
        if probe is not None:
            try:
                status, headers, body = probe(request)
            except Exception as exc:
                record_error("server.probe", exc)
                status = 500
                headers = {"Content-Type": "application/json"}
                body = json.dumps({"error": str(exc)}).encode("utf-8")
            self._count_status(status)
            write_response(wfile, status, headers, body)
            _close_quietly(connection)
            return
        tenant = (
            request.header("x-repro-tenant")
            or request.query.get("tenant")
            or self.config.default_tenant
        )
        pending = _Pending(connection, wfile, request, tenant)
        if not self.admission.offer(tenant, pending):
            self._reject(wfile, connection)

    def _reject(self, wfile, connection: socket.socket) -> None:
        """Explicit backpressure: 503 + Retry-After, never a hidden buffer."""
        self._count_status(503)
        try:
            write_response(
                wfile, 503,
                {
                    "Content-Type": "application/json",
                    "Retry-After": str(self.config.retry_after_s),
                },
                b'{"error": "server overloaded, retry later"}',
            )
        except OSError:
            # repro: swallow(the rejected client already hung up;
            # there is nobody left to tell)
            pass
        _close_quietly(connection)

    # ------------------------------------------------------------------ #
    # Probes / observability surface (admission-free)
    # ------------------------------------------------------------------ #

    def _probe_routes(self):
        return {
            "/health": self._probe_health,
            "/stats": self._probe_stats,
            "/metrics": self._probe_metrics,
            "/debug/flight": self._probe_flight,
            "/debug/trace": self._probe_trace,
            "/debug/queries": self._probe_queries,
        }

    def _serving_snapshot(self) -> dict[str, object]:
        """The shared serving-state view: /health, /stats, and the
        /metrics gauge refresh all read this one code path."""
        admission = self.admission.snapshot()
        shed = self.shedder.snapshot()
        with self._lock:
            inflight = dict(sorted(self._inflight.items()))
        return {
            "shed_tier": shed.tier,
            "shed_tier_name": shed.tier_name,
            "queue_depth": admission.depth,
            "per_tenant_depth": admission.per_tenant_depth,
            "inflight": inflight,
        }

    def _probe_health(self, request: HttpRequest):
        payload = {"status": "ok", "service": self._service,
                   **self._serving_snapshot()}
        return 200, {"Content-Type": "application/json"}, json.dumps(
            payload, sort_keys=True
        ).encode("utf-8")

    def _probe_stats(self, request: HttpRequest):
        return 200, {"Content-Type": "application/json"}, json.dumps(
            self.stats(), sort_keys=True
        ).encode("utf-8")

    def _refresh_metrics(self) -> None:
        """Push current serving state into the process metrics registry.

        Gauges are scrape-time snapshots (Prometheus semantics): each
        /metrics hit refreshes admission depth, shed tier, per-tenant
        inflight, and per-tenant SLO burn rate before rendering.
        """
        snapshot = self._serving_snapshot()
        metrics = OBS.metrics
        service = self._service
        metrics.gauge("server.admission.depth", service=service).set(
            float(snapshot["queue_depth"])
        )
        metrics.gauge("server.shed.tier", service=service).set(
            float(snapshot["shed_tier"])
        )
        for tenant, count in snapshot["inflight"].items():
            metrics.gauge(
                "server.inflight", service=service,
                tenant=self._tenant_labels.fold(tenant),
            ).set(float(count))
        for tenant, state in self.slo.snapshot().items():
            metrics.gauge(
                "server.slo.burn_rate", service=service,
                tenant=self._tenant_labels.fold(tenant),
            ).set(state.burn_rate)
        log = OBS.querylog
        metrics.gauge("querylog.depth", service=service).set(float(len(log)))
        metrics.gauge("querylog.dropped", service=service).set(
            float(log.dropped)
        )
        metrics.gauge("querylog.mirror_errors", service=service).set(
            float(log.mirror_errors)
        )
        for name, value in self._engine_counters().items():
            metrics.gauge(f"engine.{name}", service=service).set(float(value))

    def _engine_counters(self) -> dict[str, int]:
        """Execution counters summed across the worker pool's engines —
        the vectorized ``scan_batches``/``scan_rows`` included, which
        until now existed on spans only."""
        totals = {"store_lookups": 0, "intermediate_bindings": 0,
                  "solutions": 0, "scan_batches": 0, "scan_rows": 0}
        with self._lock:
            engines = list(self._engines)
        for engine in engines:
            stats = engine.engine.stats
            for name in totals:
                totals[name] += getattr(stats, name)
        return totals

    def _probe_metrics(self, request: HttpRequest):
        self._refresh_metrics()
        accept = request.header("accept", "")
        if "application/json" in accept.lower():
            body = json.dumps(
                OBS.metrics.snapshot(), sort_keys=True
            ).encode("utf-8")
            return 200, {"Content-Type": "application/json"}, body
        body = render_prometheus(OBS.metrics).encode("utf-8")
        content_type = "text/plain; version=0.0.4; charset=utf-8"
        return 200, {"Content-Type": content_type}, body

    def _probe_flight(self, request: HttpRequest):
        dumps = OBS.flight.dumps()
        seq = request.query.get("seq")
        if seq is None:
            index = {
                "recorded_total": OBS.flight.recorded_total,
                "dump_count": OBS.flight.dump_count,
                "dumps": [
                    {
                        "sequence": dump.sequence,
                        "reason": dump.reason,
                        "entries": len(dump.entries),
                        "has_profile": dump.profile_folded is not None,
                    }
                    for dump in dumps
                ],
            }
            return 200, {"Content-Type": "application/json"}, json.dumps(
                index, sort_keys=True
            ).encode("utf-8")
        if seq == "latest":
            chosen = dumps[-1] if dumps else None
        else:
            try:
                wanted = int(seq)
            except ValueError:
                return 400, {"Content-Type": "application/json"}, \
                    b'{"error": "seq must be an integer or `latest`"}'
            chosen = next(
                (dump for dump in dumps if dump.sequence == wanted), None
            )
        if chosen is None:
            return 404, {"Content-Type": "application/json"}, \
                b'{"error": "no such flight dump"}'
        return 200, {"Content-Type": "application/x-ndjson"}, \
            chosen.to_jsonl().encode("utf-8")

    def _probe_queries(self, request: HttpRequest):
        """The query log as JSONL: what this server actually executed.

        Admission-free like the other debug routes — workload questions
        matter most when the server is overloaded. Filtered to this
        instance's records by default (several servers can share one
        process in tests); ``?all=1`` lifts that.
        """
        query = request.query
        since = None
        if query.get("since") is not None:
            try:
                since = float(query["since"])
            except ValueError:
                return 400, {"Content-Type": "application/json"}, \
                    b'{"error": "since must be a UNIX timestamp"}'
        limit = _int_param(request, "limit", 200)
        service = None if query.get("all") else self._service
        records = OBS.querylog.records(
            tenant=query.get("tenant"),
            digest=query.get("digest"),
            since=since,
            service=service,
        )
        if limit > 0:
            records = records[-limit:]
        body = "\n".join(
            json.dumps(record.to_dict(), sort_keys=True)
            for record in records
        )
        if body:
            body += "\n"
        return 200, {"Content-Type": "application/x-ndjson"}, \
            body.encode("utf-8")

    def _probe_trace(self, request: HttpRequest):
        """This server's finished root spans as JSONL, stitch-ready.

        Filtered by the ``service`` attribute: when several servers share
        one process (in-process federation tests) each still exports only
        its own spans, as separate processes would.
        """
        spans = [
            span for span in OBS.tracer.recorder.spans()
            if span.attributes.get("service") == self._service
        ]
        body = spans_to_jsonl(spans).encode("utf-8")
        return 200, {"Content-Type": "application/x-ndjson"}, body

    # ------------------------------------------------------------------ #
    # Workers
    # ------------------------------------------------------------------ #

    def _worker_loop(self) -> None:
        engine = CachedQueryEngine(
            self.store, capacity=self.config.cache_capacity
        )
        with self._lock:
            self._engines.append(engine)
        while not self._stop.is_set():
            pending = self.admission.take(timeout=0.2)
            if pending is None:
                continue
            try:
                self._handle(pending, engine)
            except Exception as exc:
                record_error("server.handle", exc)
                try:
                    self._respond_error(pending.wfile, 500, str(exc))
                except OSError:
                    # repro: swallow(client gone mid-error-response;
                    # the handler failure was counted above)
                    pass
            finally:
                _close_quietly(pending.connection)

    _ROUTE_CLASSES = {
        "/sparql": ("server.sparql", INTERACTIVE),
        "/facets": ("server.facets", INTERACTIVE),
        "/describe": ("server.describe", NAVIGATION),
        "/statistics": ("server.statistics", NAVIGATION),
    }

    def _handle(self, pending: _Pending, engine: CachedQueryEngine) -> None:
        request = pending.request
        route = request.path.rstrip("/") or "/"
        named = self._ROUTE_CLASSES.get(route)
        if named is None:
            self._respond_error(pending.wfile, 404,
                                f"no such resource: {request.path}")
            return
        name, interaction_class = named
        tenant = pending.tenant
        # A caller-supplied trace context makes this request's span a
        # continuation of the remote trace (malformed headers parse to
        # None and start a fresh local trace instead).
        remote = TraceContext.from_headers(request.headers)
        self._inflight_delta(tenant, +1)
        try:
            # Every query-log record emitted while handling this request
            # (engine calls included) carries the serving attribution; the
            # shed tier is annotated later, once decided.
            with OBS.querylog.serving(
                tenant=tenant, interaction_class=interaction_class,
                service=self._service,
            ), OBS.interaction(
                name, interaction_class, remote_parent=remote,
                tenant=tenant, service=self._service,
            ) as act:
                if route == "/sparql":
                    self._handle_sparql(pending, engine, act)
                elif route == "/facets":
                    self._handle_facets(pending, engine)
                elif route == "/describe":
                    self._handle_describe(pending, engine)
                else:
                    self._handle_statistics(pending)
        finally:
            # The user's clock starts at accept time: queue wait counts,
            # for the shedder and the tenant's SLO alike.
            total_ms = (time.monotonic() - pending.accepted_at) * 1e3
            self.slo.observe(tenant, interaction_class, total_ms)
            if route == "/sparql":
                self.shedder.observe(total_ms)
            self._inflight_delta(tenant, -1)

    # ------------------------------------------------------------------ #
    # /sparql
    # ------------------------------------------------------------------ #

    def _handle_sparql(
        self, pending: _Pending, engine: CachedQueryEngine, act
    ) -> None:
        request = pending.request
        if request.method not in ("GET", "POST"):
            self._respond_error(pending.wfile, 405, "use GET or POST")
            return
        text = request.param("query")
        if text is None and "application/sparql-query" in request.header(
            "content-type"
        ):
            text = request.body.decode("utf-8", "replace")
        if not text:
            self._respond_error(pending.wfile, 400,
                                "missing `query` parameter")
            return
        try:
            parsed = parse_query(text)
        except (SparqlSyntaxError, ValueError) as error:
            self._respond_error(pending.wfile, 400, f"parse error: {error}")
            return

        accept = request.header("accept", JSON_TYPE)
        if self.config.debug_delay_ms > 0 and (
            self.config.debug_delay_tenant is None
            or pending.tenant == self.config.debug_delay_tenant
        ):
            # Test/CI hook standing in for a genuinely slow backing store;
            # scoping it to one tenant makes that tenant the SLO offender.
            time.sleep(self.config.debug_delay_ms / 1e3)

        if isinstance(parsed, SelectQuery) and eligible_sketch(parsed):
            # Wire mode: a federation coordinator asks for the serialized
            # sketch bundle instead of result rows (cheap bounded work, so
            # it is served regardless of the shed tier).
            if request.header("x-repro-sketch"):
                act.set_attribute("tier", "sketch-wire")
                OBS.querylog.annotate_serving(tier="sketch-wire")
                self._answer_sketch_wire(pending, engine, request, parsed)
                return
            # Progressive mode: chunked NDJSON of tightening estimates,
            # one line per merged sketch pass (explicit client opt-in).
            if request.header("x-repro-progressive"):
                act.set_attribute("tier", "progressive")
                OBS.querylog.annotate_serving(tier="progressive")
                self._answer_sketch_progressive(pending, engine, parsed)
                return
        if isinstance(parsed, SelectQuery) and (
            eligible_aggregate(parsed) or eligible_sketch(parsed)
        ):
            tier = self.shedder.decide(
                burn_rate=self.slo.burn_rate(pending.tenant),
                peak_burn=self.slo.peak_burn_rate(),
            )
            act.set_attribute("tier", TIER_NAMES[tier])
            OBS.querylog.annotate_serving(tier=TIER_NAMES[tier])
            self._answer_aggregate(pending, engine, text, parsed, tier,
                                   accept)
            return
        act.set_attribute("tier", "exact")
        OBS.querylog.annotate_serving(tier="exact")
        self._mark_served(EXACT)
        if isinstance(parsed, SelectQuery):
            self._answer_select_exact(pending, engine, text, parsed, accept)
        elif isinstance(parsed, AskQuery):
            self._count_status(200)
            write_response(
                pending.wfile, 200,
                {"Content-Type": JSON_TYPE, "X-Repro-Tier": "exact"},
                ask_to_sparql_json(engine.query(parsed)).encode("utf-8"),
            )
        elif isinstance(parsed, (ConstructQuery, DescribeQuery)):
            graph = engine.query(parsed)
            self._count_status(200)
            write_response(
                pending.wfile, 200,
                {"Content-Type": NTRIPLES_TYPE, "X-Repro-Tier": "exact"},
                serialize_ntriples(graph.triples(), sort=True).encode("utf-8"),
            )
        else:  # pragma: no cover - parser produces only the four forms
            self._respond_error(pending.wfile, 400, "unsupported query form")

    def _answer_aggregate(
        self,
        pending: _Pending,
        engine: CachedQueryEngine,
        text: str,
        parsed: SelectQuery,
        tier: int,
        accept: str,
    ) -> None:
        """Aggregate queries: the tier decides exact vs bounded-work."""
        fmt = _negotiate_select(accept)
        if fmt is None:
            self._respond_error(pending.wfile, 406,
                                f"cannot serve Accept: {accept}")
            return
        with self._lock:
            self._aggregate_served += 1
        if tier == EXACT:
            self._mark_served(EXACT)
            result = engine.query(parsed)
            self._respond_select(pending, result, fmt,
                                 {"X-Repro-Tier": "exact"})
            return
        max_rows = self.config.approx_max_rows
        if tier >= AGGRESSIVE:
            max_rows = max(1, max_rows // 4)
        if eligible_aggregate(parsed):
            answer = approximate_select(
                engine.engine, parsed, max_rows=max_rows,
                confidence=self.config.approx_confidence,
            )
        else:
            answer = self._sketched_answer(engine, text, parsed, max_rows)
        if not answer.approximate:
            # Small stream: the work budget covered it; answer is exact.
            self._mark_served(EXACT)
            self._respond_select(pending, answer.result, fmt,
                                 {"X-Repro-Tier": "exact"})
            return
        with self._lock:
            self._aggregate_approximate += 1
        self._mark_served(tier)
        metadata = answer.metadata()
        headers = {
            "X-Repro-Tier": TIER_NAMES[tier],
            "X-Repro-Approximate": "1",
            "X-Repro-Error-Bound": json.dumps(metadata["bounds"],
                                              sort_keys=True),
            "X-Repro-Confidence": str(answer.confidence),
            "X-Repro-Rows-Consumed": str(answer.rows_consumed),
            "X-Repro-Estimated-Total": str(answer.estimated_total),
        }
        self._respond_select(pending, answer.result, fmt, headers,
                             extra=metadata)

    def _sketched_answer(
        self,
        engine: CachedQueryEngine,
        text: str,
        parsed: SelectQuery,
        max_rows: int,
    ):
        """GROUP BY / DISTINCT under overload: sketch locally, or merge
        per-source bundles when the store is a federation."""
        started = time.perf_counter_ns()
        confidence = self.config.approx_confidence
        bundle = federated_sketch_bundle(
            self.store, text, parsed, max_rows=max_rows,
            confidence=confidence,
        )
        method = "sketch-federated"
        if bundle is None:
            bundle = build_sketch_bundle(
                engine.engine, parsed, max_rows=max_rows,
                confidence=confidence,
            )
            method = "sketch"
        self._note_sketch_bundle(bundle)
        answer = bundle_to_answer(bundle, method=method)
        if answer.approximate:
            # The serving-level record: the engine's own stream record
            # (complete=false, abandoned prefix) stays; this one is what
            # the workload analyzer counts as approximate-tier usage.
            log = OBS.querylog
            if log.enabled:
                log.emit(
                    digest=engine.engine.plan_digest(parsed),
                    form="SELECT",
                    strategy="sketched",
                    latency_ms=(time.perf_counter_ns() - started) / 1e6,
                    solutions=len(answer.result),
                )
        return answer

    def _note_sketch_bundle(self, bundle) -> None:
        """Per-family sketch activity: counters + memory gauges for
        /metrics (served from the coordinator level, never per-row)."""
        metrics = OBS.metrics
        service = self._service
        for spec in bundle.agg_specs:
            family = spec.sketch.kind
            metrics.counter(
                "server.sketch.answers", service=service, family=family
            ).inc()
            metrics.gauge(
                "server.sketch.bytes", service=service, family=family
            ).set(float(spec.sketch.size_bytes()))

    def _answer_sketch_wire(
        self,
        pending: _Pending,
        engine: CachedQueryEngine,
        request: HttpRequest,
        parsed: SelectQuery,
    ) -> None:
        """Answer with the serialized sketch bundle (federation wire)."""
        max_rows = self.config.approx_max_rows
        raw = request.param("max_rows")
        if raw is not None:
            try:
                max_rows = int(raw)
            except ValueError:
                # repro: swallow(malformed max_rows keeps the configured
                # default rather than failing the federated call)
                pass
        bundle = build_sketch_bundle(
            engine.engine, parsed, max_rows=max(1, max_rows),
            confidence=self.config.approx_confidence,
        )
        self._note_sketch_bundle(bundle)
        self._count_status(200)
        write_response(
            pending.wfile, 200,
            {"Content-Type": "application/json",
             "X-Repro-Sketch": "1"},
            json.dumps(bundle.to_dict(), sort_keys=True).encode("utf-8"),
        )

    def _answer_sketch_progressive(
        self,
        pending: _Pending,
        engine: CachedQueryEngine,
        parsed: SelectQuery,
    ) -> None:
        """Stream tightening estimates as NDJSON, one line per pass."""
        passes = iter_sketch_passes(
            engine.engine, parsed,
            max_rows=self.config.approx_max_rows,
            confidence=self.config.approx_confidence,
        )

        def lines():
            final_bundle = None
            for index, bundle in enumerate(passes):
                final_bundle = bundle
                answer = bundle_to_answer(bundle)
                bindings = [
                    {
                        str(var): term_to_json(row[var])
                        for var in answer.result.variables
                        if row.get(var) is not None
                    }
                    for row in answer.result.rows
                ]
                yield json.dumps(
                    {
                        "pass": index + 1,
                        "final": bundle.exhausted,
                        "metadata": answer.metadata(),
                        "bindings": bindings,
                    },
                    sort_keys=True,
                ) + "\n"
            if final_bundle is not None:
                self._note_sketch_bundle(final_bundle)

        headers = {
            "Content-Type": "application/x-ndjson",
            "X-Repro-Tier": "progressive",
            "X-Repro-Approximate": "1",
        }
        self._count_status(200)
        write_chunked(pending.wfile, 200, headers, lines())

    def _answer_select_exact(
        self,
        pending: _Pending,
        engine: CachedQueryEngine,
        text: str,
        parsed: SelectQuery,
        accept: str,
    ) -> None:
        fmt = _negotiate_select(accept)
        if fmt is None:
            self._respond_error(pending.wfile, 406,
                                f"cannot serve Accept: {accept}")
            return
        headers = {"X-Repro-Tier": "exact"}
        started = time.perf_counter_ns()
        cache = engine.cache
        key = engine.engine.plan_digest(parsed)
        cached = cache.get(key)
        if isinstance(cached, SelectResult):
            headers["X-Repro-Cache"] = "hit"
            # This hit bypasses CachedQueryEngine.query, so it logs its own
            # workload record (cache_hit=true, zeroed scan counters).
            log = OBS.querylog
            if log.enabled:
                log.emit_cache_hit(
                    digest=key, form="SELECT",
                    latency_ms=(time.perf_counter_ns() - started) / 1e6,
                    solutions=len(cached),
                )
            self._respond_select(pending, cached, fmt, headers)
            return
        if parsed.select_all or fmt == "table":
            # SELECT * needs all rows before its header is known, and the
            # ASCII table pads columns globally: materialize these.
            result = engine.query(text)
            self._respond_select(pending, result, fmt, headers)
            return
        # Streaming path: chunked delivery straight off the operator tree,
        # teeing rows into the worker's result cache for the next hit.
        stream = engine.engine.stream_select(parsed, digest=key)
        collected: list[dict] = []

        def tee():
            for row in stream.rows:
                collected.append(row)
                yield row
            cache.put(
                key,
                SelectResult(stream.variables, collected, plan_digest=key),
            )

        if fmt == "csv":
            content_type, chunks = CSV_TYPE, iter_csv(stream.variables, tee())
        elif fmt == "tsv":
            content_type, chunks = TSV_TYPE, iter_tsv(stream.variables, tee())
        else:
            content_type, chunks = JSON_TYPE, iter_sparql_json(
                stream.variables, tee()
            )
        headers["Content-Type"] = content_type
        self._count_status(200)
        write_chunked(pending.wfile, 200, headers,
                      _batched(chunks, self.config.chunk_rows))

    def _respond_select(
        self,
        pending: _Pending,
        result: SelectResult,
        fmt: str,
        headers: dict[str, str],
        extra: dict[str, object] | None = None,
    ) -> None:
        if fmt == "csv":
            body, content_type = to_csv(result), CSV_TYPE
        elif fmt == "tsv":
            body, content_type = to_tsv(result), TSV_TYPE
        elif fmt == "table":
            body, content_type = result.to_table(max_rows=None), TABLE_TYPE
        else:
            body, content_type = to_sparql_json(result, extra=extra), JSON_TYPE
        out = dict(headers)
        out["Content-Type"] = content_type
        self._count_status(200)
        write_response(pending.wfile, 200, out, body.encode("utf-8"))

    # ------------------------------------------------------------------ #
    # Explore surface
    # ------------------------------------------------------------------ #

    def _handle_facets(self, pending: _Pending,
                       engine: CachedQueryEngine) -> None:
        request = pending.request
        max_values = _int_param(request, "max_values", 25)
        min_count = _int_param(request, "min_count", 1)
        browser = FacetedBrowser(self.store, engine=engine.engine)
        facets = browser.facets(max_values=max_values, min_count=min_count)
        payload = [
            {
                "predicate": str(facet.predicate),
                "cardinality": facet.cardinality,
                "values": [
                    {
                        "term": term_to_json(value.value),
                        "label": value.label,
                        "count": value.count,
                    }
                    for value in facet.values
                ],
            }
            for facet in facets
        ]
        self._count_status(200)
        write_response(
            pending.wfile, 200, {"Content-Type": "application/json"},
            json.dumps({"focus": len(browser), "facets": payload},
                       sort_keys=True).encode("utf-8"),
        )

    def _handle_describe(self, pending: _Pending,
                         engine: CachedQueryEngine) -> None:
        resource = pending.request.param("resource")
        if not resource:
            self._respond_error(pending.wfile, 400,
                                "missing `resource` parameter")
            return
        try:
            iri = IRI(resource)
        except ValueError as error:
            self._respond_error(pending.wfile, 400, str(error))
            return
        graph = engine.query(DescribeQuery(resources=(iri,)))
        self._count_status(200)
        write_response(
            pending.wfile, 200, {"Content-Type": NTRIPLES_TYPE},
            serialize_ntriples(graph.triples(), sort=True).encode("utf-8"),
        )

    def _handle_statistics(self, pending: _Pending) -> None:
        if isinstance(self.store, StoreStatistics):
            snapshot = self.store.statistics()
        else:
            snapshot = compute_statistics(self.store)
        payload = {
            "triple_count": snapshot.triple_count,
            "distinct_subjects": snapshot.distinct_subjects,
            "distinct_predicates": snapshot.distinct_predicates,
            "distinct_objects": snapshot.distinct_objects,
            "predicate_cardinalities": {
                str(predicate): count
                for predicate, count
                in snapshot.predicate_cardinalities.items()
            },
            "predicate_distinct_objects": {
                str(predicate): count
                for predicate, count
                in snapshot.predicate_distinct_objects.items()
            },
        }
        self._count_status(200)
        write_response(
            pending.wfile, 200, {"Content-Type": "application/json"},
            json.dumps(payload, sort_keys=True).encode("utf-8"),
        )

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #

    def _mark_served(self, tier: int) -> None:
        with self._lock:
            self._served_by_tier[tier] = self._served_by_tier.get(tier, 0) + 1

    def _inflight_delta(self, tenant: str, delta: int) -> None:
        with self._lock:
            value = self._inflight.get(tenant, 0) + delta
            if value <= 0:
                self._inflight.pop(tenant, None)
            else:
                self._inflight[tenant] = value

    def _count_status(self, status: int) -> None:
        with self._lock:
            self._responses_by_status[status] = (
                self._responses_by_status.get(status, 0) + 1
            )
        OBS.metrics.counter(
            "server.responses", service=self._service, status=status
        ).inc()

    def _respond_error(self, wfile, status: int, message: str) -> None:
        self._count_status(status)
        try:
            write_response(
                wfile, status, {"Content-Type": "application/json"},
                json.dumps({"error": message}).encode("utf-8"),
            )
        except OSError:
            # repro: swallow(client gone mid-error-response; the
            # status was already counted in _count_status)
            pass

    def stats(self) -> dict[str, object]:
        """The /stats payload: admission, shedding, SLOs, serving counters."""
        admission = self.admission.snapshot()
        shed = self.shedder.snapshot()
        serving = self._serving_snapshot()
        with self._lock:
            by_tier = {
                TIER_NAMES.get(tier, str(tier)): count
                for tier, count in sorted(self._served_by_tier.items())
            }
            aggregate_served = self._aggregate_served
            aggregate_approximate = self._aggregate_approximate
            by_status = dict(sorted(self._responses_by_status.items()))
        return {
            "service": self._service,
            "admission": {
                "capacity": admission.capacity,
                "depth": admission.depth,
                "admitted": admission.admitted,
                "rejected": admission.rejected,
                "per_tenant_admitted": admission.per_tenant_admitted,
                "per_tenant_rejected": admission.per_tenant_rejected,
                "per_tenant_depth": admission.per_tenant_depth,
            },
            "shedding": {
                "tier": shed.tier,
                "tier_name": shed.tier_name,
                "p95_ms": round(shed.p95_ms, 3),
                "budget_ms": shed.budget_ms,
                "window_size": shed.window_size,
                "burn_escalations": shed.burn_escalations,
                "burn_protections": shed.burn_protections,
            },
            "inflight": serving["inflight"],
            "slo": {
                tenant: state.to_dict()
                for tenant, state in self.slo.snapshot().items()
            },
            "served_by_tier": by_tier,
            "aggregate_served": aggregate_served,
            "aggregate_approximate": aggregate_approximate,
            "shed_ratio": (
                aggregate_approximate / aggregate_served
                if aggregate_served else 0.0
            ),
            "responses_by_status": {
                str(status): count for status, count in by_status.items()
            },
            "engine": self._engine_counters(),
            "querylog": {
                "depth": len(OBS.querylog),
                "recorded_total": OBS.querylog.recorded_total,
                "dropped": OBS.querylog.dropped,
                "mirror_errors": OBS.querylog.mirror_errors,
                "mirror_path": OBS.querylog.mirror_path,
            },
        }


# --------------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------------- #


def _negotiate_select(accept: str) -> str | None:
    """Pick the SELECT serialization for an Accept header.

    Returns ``"json" | "csv" | "tsv" | "table"``, or ``None`` when the
    header names only types this endpoint cannot produce.
    """
    if not accept or accept.strip() == "":
        return "json"
    lowered = accept.lower()
    if JSON_TYPE in lowered or "application/json" in lowered:
        return "json"
    if CSV_TYPE in lowered:
        return "csv"
    if TSV_TYPE in lowered:
        return "tsv"
    if TABLE_TYPE in lowered:
        return "table"
    if "*/*" in lowered or "application/*" in lowered or "text/*" in lowered:
        return "json"
    return None


def _batched(chunks, batch: int):
    """Coalesce small serializer chunks into network-sized writes."""
    buffer: list[str] = []
    for chunk in chunks:
        buffer.append(chunk)
        if len(buffer) >= batch:
            yield "".join(buffer)
            buffer.clear()
    if buffer:
        yield "".join(buffer)


def _int_param(request: HttpRequest, name: str, default: int) -> int:
    value = request.query.get(name)
    if value is None:
        return default
    try:
        return int(value)
    except ValueError:
        return default


def _close_quietly(connection: socket.socket) -> None:
    try:
        connection.close()
    except OSError:
        # repro: swallow(idempotent close; the peer may have reset)
        pass
