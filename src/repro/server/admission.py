"""Bounded admission control with per-tenant fair scheduling.

The serving layer's first rule (Hillview's, and every production
endpoint's): never buffer without bound. :class:`FairAdmissionQueue` holds
at most ``capacity`` pending requests across all tenants; an offer against
a full queue is *rejected* — the caller answers 503 + ``Retry-After`` so
backpressure is explicit and immediate rather than a growing latency tail.

Within the bound, dequeue order is round-robin across tenants with pending
work: a tenant issuing a burst of a hundred queries cannot starve one
issuing a single facet refresh — each ``take`` serves the next tenant in
rotation, FIFO within the tenant.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Generic, TypeVar

__all__ = ["AdmissionSnapshot", "FairAdmissionQueue"]

T = TypeVar("T")


@dataclass(frozen=True)
class AdmissionSnapshot:
    """Queue accounting at one instant."""

    capacity: int
    depth: int
    admitted: int
    rejected: int
    per_tenant_admitted: dict[str, int]
    per_tenant_rejected: dict[str, int]
    per_tenant_depth: dict[str, int]

    @property
    def rejection_rate(self) -> float:
        total = self.admitted + self.rejected
        return self.rejected / total if total else 0.0


class FairAdmissionQueue(Generic[T]):
    """A bounded multi-tenant queue with round-robin dequeue.

    ``offer`` never blocks: it returns ``False`` the instant the global
    bound is hit (the explicit-backpressure contract). ``take`` blocks up
    to ``timeout`` seconds for work, returning ``None`` on timeout or
    after :meth:`close`.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._pending: dict[str, deque[T]] = {}  # guarded-by: _ready
        self._rotation: deque[str] = deque()  # guarded-by: _ready
        self._depth = 0  # guarded-by: _ready
        self._closed = False  # guarded-by: _ready
        self._admitted = 0  # guarded-by: _ready
        self._rejected = 0  # guarded-by: _ready
        self._per_tenant_admitted: dict[str, int] \
            = {}  # guarded-by: _ready
        self._per_tenant_rejected: dict[str, int] \
            = {}  # guarded-by: _ready

    def offer(self, tenant: str, item: T) -> bool:
        """Enqueue for ``tenant``; ``False`` when the global bound is hit."""
        with self._ready:
            if self._closed or self._depth >= self.capacity:
                self._rejected += 1
                self._per_tenant_rejected[tenant] = (
                    self._per_tenant_rejected.get(tenant, 0) + 1
                )
                return False
            queue = self._pending.get(tenant)
            if queue is None:
                queue = self._pending[tenant] = deque()
            if not queue:
                self._rotation.append(tenant)
            queue.append(item)
            self._depth += 1
            self._admitted += 1
            self._per_tenant_admitted[tenant] = (
                self._per_tenant_admitted.get(tenant, 0) + 1
            )
            self._ready.notify()
            return True

    def take(self, timeout: float | None = None) -> T | None:
        """Next item in tenant round-robin order, or ``None`` on timeout."""
        with self._ready:
            if not self._depth and not self._closed:
                self._ready.wait(timeout)
            if not self._depth:
                return None
            tenant = self._rotation.popleft()
            queue = self._pending[tenant]
            item = queue.popleft()
            self._depth -= 1
            if queue:
                self._rotation.append(tenant)
            return item

    def close(self) -> None:
        """Wake every blocked taker; subsequent offers are rejected."""
        with self._ready:
            self._closed = True
            self._ready.notify_all()

    @property
    def depth(self) -> int:
        with self._ready:
            return self._depth

    def snapshot(self) -> AdmissionSnapshot:
        with self._ready:
            return AdmissionSnapshot(
                capacity=self.capacity,
                depth=self._depth,
                admitted=self._admitted,
                rejected=self._rejected,
                per_tenant_admitted=dict(self._per_tenant_admitted),
                per_tenant_rejected=dict(self._per_tenant_rejected),
                per_tenant_depth={
                    tenant: len(queue)
                    for tenant, queue in self._pending.items()
                    if queue
                },
            )
