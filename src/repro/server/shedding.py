"""Load-shedding tiers: from exact answers to bounded-work approximations.

The survey's central systems claim (Section 2): interactive exploration of
big data survives load by *degrading gracefully* — sampling and
approximation with error bounds — not by queueing exact work it cannot
finish in time. :class:`LoadShedder` is the controller that decides, per
request, which tier the server answers from:

* **EXACT** (tier 0) — normal operation, every answer exact;
* **SAMPLED** (tier 1) — the windowed p95 of interactive request latency
  exceeds the ``interactive`` budget (:data:`repro.obs.budget.
  DEFAULT_BUDGETS_MS`): eligible aggregate queries are answered from a
  bounded-work streaming estimate with a confidence interval
  (:mod:`repro.server.approximate`);
* **AGGRESSIVE** (tier 2) — p95 beyond ``aggressive_factor``× budget: the
  same path with a quarter of the row budget.

Decisions use a sliding window (count- and age-bounded) of recent
latencies rather than the cumulative budget histogram, so the controller
*recovers*: once load subsides and fast requests refill the window, the
tier steps back down. Hysteresis (``recover_fraction``) keeps the boundary
from flapping: escalation happens at the budget, de-escalation only below
a fraction of it.

:meth:`LoadShedder.decide` optionally takes the requesting tenant's SLO
**burn rate** (:class:`repro.obs.slo.SloTracker`), making shedding
tenant-aware: a tenant burning its error budget (burn ≥
``burn_shed_threshold``) is escalated one tier *beyond* the global tier,
while a well-behaved tenant (burn ≤ ``burn_protect_fraction``) riding
out someone else's overload is protected — de-escalated from SAMPLED
back to EXACT. The offender degrades to approximate answers before the
well-behaved tenants ever notice.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

from ..obs.budget import DEFAULT_BUDGETS_MS, INTERACTIVE

__all__ = ["EXACT", "SAMPLED", "AGGRESSIVE", "TIER_NAMES", "LoadShedder"]

EXACT = 0
SAMPLED = 1
AGGRESSIVE = 2

TIER_NAMES = {EXACT: "exact", SAMPLED: "sampled", AGGRESSIVE: "aggressive"}

_clock = time.monotonic


@dataclass(frozen=True)
class ShedSnapshot:
    """The controller's state at one instant (the /stats view)."""

    tier: int
    p95_ms: float
    budget_ms: float
    window_size: int
    burn_escalations: int = 0
    burn_protections: int = 0

    @property
    def tier_name(self) -> str:
        return TIER_NAMES.get(self.tier, str(self.tier))


class LoadShedder:
    """Sliding-window p95 tier controller with hysteresis.

    ``observe`` feeds one finished interactive request's total latency
    (queue wait included — the user's clock does not stop while queued);
    ``tier`` recomputes the current tier. Both are O(window) at worst and
    thread-safe.
    """

    def __init__(
        self,
        budget_ms: float | None = None,
        window: int = 64,
        max_age_s: float = 30.0,
        min_observations: int = 8,
        aggressive_factor: float = 3.0,
        recover_fraction: float = 0.8,
        burn_shed_threshold: float = 1.0,
        burn_protect_fraction: float = 0.25,
    ) -> None:
        if budget_ms is None:
            budget_ms = DEFAULT_BUDGETS_MS[INTERACTIVE] or 100.0
        if budget_ms <= 0:
            raise ValueError("budget_ms must be positive")
        if not 0.0 < recover_fraction <= 1.0:
            raise ValueError("recover_fraction must be in (0, 1]")
        self.budget_ms = float(budget_ms)
        self.max_age_s = max_age_s
        self.min_observations = max(1, min_observations)
        self.aggressive_factor = aggressive_factor
        self.recover_fraction = recover_fraction
        self.burn_shed_threshold = burn_shed_threshold
        self.burn_protect_fraction = burn_protect_fraction
        self._lock = threading.Lock()
        self._window: deque[tuple[float, float]] \
            = deque(maxlen=window)  # guarded-by: _lock
        self._tier = EXACT  # guarded-by: _lock
        self.shed_decisions = 0
        self.exact_decisions = 0
        self.burn_escalations = 0
        self.burn_protections = 0

    # -- accounting --------------------------------------------------------

    def observe(self, duration_ms: float) -> None:
        """Record one finished interactive request's latency."""
        with self._lock:
            self._window.append((_clock(), float(duration_ms)))

    def _p95_locked(self, now: float) -> tuple[float, int]:
        while self._window and now - self._window[0][0] > self.max_age_s:
            self._window.popleft()
        n = len(self._window)
        if not n:
            return 0.0, 0
        durations = sorted(duration for _, duration in self._window)
        index = min(n - 1, max(0, int(0.95 * n + 0.5) - 1))
        return durations[index], n

    # -- decisions ---------------------------------------------------------

    def tier(self) -> int:
        """The current shedding tier, recomputed from the window.

        Escalation thresholds: budget (→ SAMPLED), ``aggressive_factor`` ×
        budget (→ AGGRESSIVE). De-escalation needs p95 below
        ``recover_fraction`` × the *lower* tier's threshold — the
        hysteresis band that prevents tier flapping at the boundary.
        """
        with self._lock:
            p95, n = self._p95_locked(_clock())
            if n < self.min_observations:
                # Too little signal to justify degrading answers.
                self._tier = EXACT
                return self._tier
            thresholds = {
                SAMPLED: self.budget_ms,
                AGGRESSIVE: self.budget_ms * self.aggressive_factor,
            }
            if p95 > thresholds[AGGRESSIVE]:
                target = AGGRESSIVE
            elif p95 > thresholds[SAMPLED]:
                target = SAMPLED
            else:
                target = EXACT
            current = self._tier
            if target >= current:
                # Escalate (or hold) immediately: overload is now.
                self._tier = target
            elif p95 < thresholds[current] * self.recover_fraction:
                # Recover one tier at a time, and only once p95 is clearly
                # below the current tier's threshold (hysteresis band).
                self._tier = current - 1
            return self._tier

    def decide(self, burn_rate: float | None = None,
               peak_burn: float | None = None) -> int:
        """``tier()`` plus decision accounting (the per-request entry point).

        With ``burn_rate`` (the requesting tenant's SLO burn from
        :class:`repro.obs.slo.SloTracker`), the global tier is adjusted
        per tenant: an offender burning its error budget (burn ≥
        ``burn_shed_threshold``) answers one tier higher than the global
        tier, while a clearly healthy tenant (burn ≤
        ``burn_protect_fraction``) is never held at SAMPLED by *someone
        else's* overload — it de-escalates back to EXACT, but only when
        ``peak_burn`` (the highest burn across all tenants) names an
        actual offender. Diffuse overload with no offender sheds
        everyone, exactly as before burn awareness; AGGRESSIVE is global
        overload and protects nobody.
        """
        tier = self.tier()
        if burn_rate is not None:
            if burn_rate >= self.burn_shed_threshold:
                adjusted = min(AGGRESSIVE, tier + 1)
                if adjusted != tier:
                    with self._lock:
                        self.burn_escalations += 1
                tier = adjusted
            elif (burn_rate <= self.burn_protect_fraction
                    and tier == SAMPLED
                    and peak_burn is not None
                    and peak_burn >= self.burn_shed_threshold):
                with self._lock:
                    self.burn_protections += 1
                tier = EXACT
        with self._lock:
            if tier == EXACT:
                self.exact_decisions += 1
            else:
                self.shed_decisions += 1
        return tier

    def snapshot(self) -> ShedSnapshot:
        with self._lock:
            p95, n = self._p95_locked(_clock())
            return ShedSnapshot(
                tier=self._tier, p95_ms=p95,
                budget_ms=self.budget_ms, window_size=n,
                burn_escalations=self.burn_escalations,
                burn_protections=self.burn_protections,
            )
