"""Sketch-backed approximate answers for GROUP BY / DISTINCT aggregates.

:mod:`repro.server.approximate` covers *ungrouped* COUNT/SUM/AVG with a
prefix sample. This module extends the shed tier to the two shapes it
explicitly bails on, using the mergeable sketches of
:mod:`repro.approx.sketch` (Hillview's model, PAPERS.md):

* ``GROUP BY`` COUNT/SUM/AVG — operator output streams into one
  :class:`~repro.approx.sketch.GroupedMomentsSketch` per aggregate under
  the same bounded row budget; per-group answers scale up by the
  planner's cardinality estimate with binomial/CLT intervals.
* ungrouped ``COUNT(DISTINCT ?x)`` — the stream drains fully through an
  HLL. Unlike counts, a sample's distinct count cannot be honestly
  extrapolated, so the saving here is *memory and data-structure* work
  (4 KiB registers and no exact dedup set), not rows; the declared bound
  is the HLL standard error, which holds regardless of stream length.

``GROUP BY`` over a ``DISTINCT`` aggregate stays ineligible: per-group
HLLs under a group budget would make the "other"-bucket semantics of a
spilled group undefined (you cannot un-merge a distinct set).

The unit of composition is a :class:`SketchBundle` — the per-projection
sketches plus the sampling frame (rows consumed, estimated total,
exhausted flag). A bundle serializes to JSON for the federation wire
(``X-Repro-Sketch: 1`` on ``/sparql``), merges with bundles from other
sources, and renders into the same :class:`ApproximateAnswer` the rest of
the serving layer already speaks. Merged counts are upper bounds when
sources overlap — the same caveat :meth:`FederatedStore.statistics`
documents — while HLL distinct merges deduplicate correctly by
construction.
"""

from __future__ import annotations

import json

from ..approx.progressive import binomial_halfwidth
from ..obs import OBS
from ..approx.sketch import (
    GroupedMomentsSketch,
    HllSketch,
    default_groups,
    default_precision,
    deserialize_sketch,
    serialize_sketch,
)
from ..rdf.terms import Literal, Variable
from ..sparql.eval import QueryEngine
from ..sparql.nodes import AggregateExpr, Query, SelectQuery, VariableExpr
from ..sparql.parser import parse_query
from ..sparql.results import SelectResult, term_from_json, term_to_json
from .approximate import ApproximateAnswer

__all__ = [
    "eligible_sketch",
    "SketchBundle",
    "build_sketch_bundle",
    "merge_bundles",
    "bundle_to_answer",
    "sketched_select",
    "federated_sketch_bundle",
    "federated_sketch_select",
    "iter_sketch_passes",
]

BUNDLE_VERSION = 1
_GROUPED = ("COUNT", "SUM", "AVG")


def eligible_sketch(query: Query) -> bool:
    """Can the sketch path answer this query approximately?

    Eligible: a grouped SELECT whose GROUP BY keys are plain variables
    and whose projections are group keys plus non-DISTINCT
    ``COUNT``/``SUM``/``AVG`` aggregates, or an ungrouped SELECT whose
    every projection is ``COUNT(DISTINCT ?var)``. Solution modifiers
    (HAVING, ORDER BY, LIMIT/OFFSET, SELECT DISTINCT) stay exact.
    """
    if not isinstance(query, SelectQuery):
        return False
    if query.having is not None or query.order_by:
        return False
    if query.distinct or query.limit is not None or query.offset:
        return False
    if not query.projections:
        return False
    if query.group_by:
        if not all(isinstance(e, VariableExpr) for e in query.group_by):
            return False
        group_vars = {e.variable for e in query.group_by}
        saw_aggregate = False
        for projection in query.projections:
            expression = projection.expression
            if expression is None:
                if projection.variable not in group_vars:
                    return False
                continue
            if isinstance(expression, VariableExpr):
                if expression.variable not in group_vars:
                    return False
                continue
            if not isinstance(expression, AggregateExpr):
                return False
            if expression.distinct or expression.name not in _GROUPED:
                return False
            if expression.argument is None:
                if expression.name != "COUNT":
                    return False
            elif not isinstance(expression.argument, VariableExpr):
                return False
            saw_aggregate = True
        return saw_aggregate
    for projection in query.projections:
        expression = projection.expression
        if not isinstance(expression, AggregateExpr):
            return False
        if expression.name != "COUNT" or not expression.distinct:
            return False
        if not isinstance(expression.argument, VariableExpr):
            return False
    return True


# --------------------------------------------------------------------------- #
# Group-key wire encoding
# --------------------------------------------------------------------------- #


def _group_key(row: dict, group_vars: tuple[Variable, ...]) -> str:
    """Canonical string key for one row's group: the W3C JSON encodings
    of the key terms, in GROUP BY order, as compact sorted JSON — stable
    across processes so federation members agree on group identity."""
    parts = [
        term_to_json(row[var]) if row.get(var) is not None else None
        for var in group_vars
    ]
    return json.dumps(parts, separators=(",", ":"), sort_keys=True)


def _decode_group_key(
    key: str, group_vars: tuple[Variable, ...]
) -> dict[Variable, object]:
    bindings: dict[Variable, object] = {}
    for var, part in zip(group_vars, json.loads(key)):
        if part is not None:
            bindings[var] = term_from_json(part)
    return bindings


def _term_key(term: object) -> str:
    """Canonical identity of one term for distinct counting (same
    encoding as group keys, so hashes agree across processes)."""
    return json.dumps(
        term_to_json(term), separators=(",", ":"), sort_keys=True
    )


# --------------------------------------------------------------------------- #
# The bundle: per-projection sketches + the sampling frame
# --------------------------------------------------------------------------- #


class _Spec:
    """One projection's role in the bundle."""

    __slots__ = ("alias", "role", "kind", "arg", "distinct", "sketch")

    def __init__(self, alias, role, kind=None, arg=None, distinct=False,
                 sketch=None) -> None:
        self.alias = alias  # Variable: the output column
        self.role = role  # "group" | "agg"
        self.kind = kind  # COUNT | SUM | AVG for aggregates
        self.arg = arg  # Variable | None (COUNT(*))
        self.distinct = distinct
        self.sketch = sketch  # HllSketch | GroupedMomentsSketch | None

    def to_dict(self) -> dict:
        payload = {
            "alias": str(self.alias),
            "role": self.role,
        }
        if self.role == "agg":
            payload["kind"] = self.kind
            payload["arg"] = str(self.arg) if self.arg is not None else None
            payload["distinct"] = self.distinct
            payload["sketch"] = serialize_sketch(self.sketch)
        else:
            payload["arg"] = str(self.arg)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "_Spec":
        role = payload["role"]
        arg = payload.get("arg")
        return cls(
            alias=Variable(payload["alias"]),
            role=role,
            kind=payload.get("kind"),
            arg=Variable(arg) if arg is not None else None,
            distinct=bool(payload.get("distinct", False)),
            sketch=(
                deserialize_sketch(payload["sketch"])
                if role == "agg" else None
            ),
        )


class SketchBundle:
    """The mergeable unit one source contributes to a sketched answer."""

    def __init__(
        self,
        group_vars: tuple[Variable, ...],
        specs: list[_Spec],
        rows_consumed: int,
        estimated_total: int,
        exhausted: bool,
        confidence: float,
    ) -> None:
        self.group_vars = group_vars
        self.specs = specs
        self.rows_consumed = rows_consumed
        self.estimated_total = estimated_total
        self.exhausted = exhausted
        self.confidence = confidence

    @property
    def agg_specs(self) -> list[_Spec]:
        return [spec for spec in self.specs if spec.role == "agg"]

    def merge(self, other: "SketchBundle") -> None:
        """Absorb another source's bundle (the coordinator's combine step).

        Sources are bag-unioned: rows and totals add, sketches merge.
        Overlapping sources therefore over-count grouped aggregates — the
        documented upper-bound semantics federation statistics already
        have — while HLL distinct merges stay duplicate-proof.
        """
        if [str(v) for v in other.group_vars] != [
            str(v) for v in self.group_vars
        ]:
            raise ValueError("bundles group by different keys")
        mine, theirs = self.agg_specs, other.agg_specs
        if len(mine) != len(theirs) or any(
            (a.kind, str(a.alias), a.distinct) != (b.kind, str(b.alias),
                                                   b.distinct)
            for a, b in zip(mine, theirs)
        ):
            raise ValueError("bundles carry different aggregate shapes")
        for a, b in zip(mine, theirs):
            a.sketch.merge(b.sketch)
        self.rows_consumed += other.rows_consumed
        self.estimated_total += other.estimated_total
        self.exhausted = self.exhausted and other.exhausted

    def sketch_bytes(self) -> int:
        return sum(spec.sketch.size_bytes() for spec in self.agg_specs)

    def to_dict(self) -> dict:
        return {
            "v": BUNDLE_VERSION,
            "group_vars": [str(var) for var in self.group_vars],
            "rows_consumed": self.rows_consumed,
            "estimated_total": self.estimated_total,
            "exhausted": self.exhausted,
            "confidence": self.confidence,
            "specs": [spec.to_dict() for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SketchBundle":
        version = payload.get("v")
        if version != BUNDLE_VERSION:
            raise ValueError(f"unsupported bundle version: {version!r}")
        return cls(
            group_vars=tuple(
                Variable(name) for name in payload.get("group_vars", [])
            ),
            specs=[_Spec.from_dict(s) for s in payload.get("specs", [])],
            rows_consumed=int(payload["rows_consumed"]),
            estimated_total=int(payload["estimated_total"]),
            exhausted=bool(payload["exhausted"]),
            confidence=float(payload.get("confidence", 0.95)),
        )


# --------------------------------------------------------------------------- #
# Building a bundle from one engine's operator stream
# --------------------------------------------------------------------------- #


def _make_specs(
    parsed: SelectQuery, confidence: float
) -> tuple[tuple[Variable, ...], list[_Spec]]:
    group_vars = tuple(expr.variable for expr in parsed.group_by)
    specs: list[_Spec] = []
    for projection in parsed.projections:
        expression = projection.expression
        if expression is None or isinstance(expression, VariableExpr):
            underlying = (
                projection.variable if expression is None
                else expression.variable
            )
            specs.append(_Spec(projection.variable, "group", arg=underlying))
            continue
        arg = (
            expression.argument.variable
            if isinstance(expression.argument, VariableExpr) else None
        )
        if expression.distinct:
            sketch = HllSketch(
                precision=default_precision(), confidence=confidence
            )
        else:
            sketch = GroupedMomentsSketch(
                max_groups=default_groups(), confidence=confidence
            )
        specs.append(_Spec(
            projection.variable, "agg", kind=expression.name, arg=arg,
            distinct=expression.distinct, sketch=sketch,
        ))
    return group_vars, specs


def _feed(row: dict, key: str | None, specs: list[_Spec]) -> None:
    for spec in specs:
        if spec.role != "agg":
            continue
        if spec.distinct:
            term = row.get(spec.arg)
            if term is not None:
                spec.sketch.add(_term_key(term))
        elif spec.kind == "COUNT":
            if spec.arg is None or row.get(spec.arg) is not None:
                spec.sketch.add_group(key, 1.0)
        else:  # SUM / AVG: numeric literals only, like the exact engine
            term = row.get(spec.arg)
            if isinstance(term, Literal):
                value = term.value
                if isinstance(value, (int, float)) and not isinstance(
                    value, bool
                ):
                    spec.sketch.add_group(key, float(value))


def build_sketch_bundle(
    engine: QueryEngine,
    query: str | SelectQuery,
    max_rows: int = 2_000,
    confidence: float = 0.95,
) -> SketchBundle:
    """Stream one engine's pattern solutions into a fresh bundle.

    Grouped aggregates stop at ``max_rows`` (the bounded-work budget);
    a DISTINCT projection anywhere lifts the row cap, because a distinct
    count only carries an honest bound over the *whole* stream — the
    bounded resource is then the sketch memory, not the row count.

    The grouped scale-up inherits the prefix-exchangeability assumption
    of :mod:`repro.server.approximate`: store iteration order stands in
    for a uniform sample. When the scan order *correlates with the group
    key* (an object-grouped index behind ``GROUP BY`` on that object)
    the prefix over-represents early groups and real error exceeds the
    declared interval — the same caveat, sharper consequences. The
    Agresti–Coull-adjusted halfwidths at least never report certainty
    from a one-group prefix.
    """
    parsed = parse_query(query) if isinstance(query, str) else query
    if not eligible_sketch(parsed):
        raise ValueError("query is not sketch-eligible")
    if max_rows < 1:
        raise ValueError("max_rows must be positive")
    group_vars, specs = _make_specs(parsed, confidence)
    distinct_mode = any(spec.distinct for spec in specs)

    pattern_query = SelectQuery(
        projections=(), where=parsed.where, prefixes=parsed.prefixes
    )
    stream = engine.stream_select(pattern_query)
    rows_seen = 0
    exhausted = False
    iterator = iter(stream.rows)
    while True:
        if not distinct_mode and rows_seen >= max_rows:
            break
        try:
            row = next(iterator)
        except StopIteration:
            exhausted = True
            break
        rows_seen += 1
        key = _group_key(row, group_vars) if group_vars else None
        _feed(row, key, specs)

    if exhausted:
        estimated_total = rows_seen
    else:
        planner_estimate = stream.estimated_rows
        estimated_total = max(
            rows_seen,
            int(round(planner_estimate))
            if planner_estimate is not None else 0,
        )
    return SketchBundle(
        group_vars=group_vars,
        specs=specs,
        rows_consumed=rows_seen,
        estimated_total=estimated_total,
        exhausted=exhausted,
        confidence=confidence,
    )


def merge_bundles(bundles: list[SketchBundle]) -> SketchBundle:
    if not bundles:
        raise ValueError("nothing to merge")
    merged = bundles[0]
    for bundle in bundles[1:]:
        merged.merge(bundle)
    return merged


# --------------------------------------------------------------------------- #
# Rendering a bundle into the serving layer's answer shape
# --------------------------------------------------------------------------- #


def _grouped_rows(
    bundle: SketchBundle,
) -> tuple[list[dict], dict[str, float], bool]:
    """Per-group result rows + per-alias worst-case halfwidths.

    Rows are ordered by descending estimated size of the group (the
    shape a top-groups visualization wants); a group tracked by one
    aggregate's sketch but spilled from another simply leaves that
    column unbound, mirroring SPARQL's unbound semantics.
    """
    rows_seen = bundle.rows_consumed
    total = bundle.estimated_total
    scale = (total / rows_seen) if rows_seen else 0.0
    agg_specs = bundle.agg_specs
    keys: dict[str, int] = {}
    for spec in agg_specs:
        for key, n, _total, _mean, _var in spec.sketch.group_stats():
            if key.startswith("__"):
                continue  # the OTHER_BUCKET pseudo-group
            keys[key] = max(keys.get(key, 0), n)
    ordered = sorted(keys, key=lambda key: (-keys[key], key))
    spilled = any(spec.sketch.spilled for spec in agg_specs)
    bounds: dict[str, float] = {str(s.alias): 0.0 for s in bundle.specs}
    rows: list[dict] = []
    for key in ordered:
        row: dict = dict(_decode_group_key(key, bundle.group_vars))
        for spec in agg_specs:
            moments = spec.sketch.group(key)
            if moments is None or moments.n == 0:
                if spec.kind == "COUNT":
                    row[spec.alias] = Literal(0)
                continue
            if spec.kind == "COUNT":
                estimate = moments.n * scale
                halfwidth = binomial_halfwidth(
                    moments.n, rows_seen, total, bundle.confidence
                )
                row[spec.alias] = Literal(int(round(estimate)))
            else:
                scaled_n = max(moments.n, int(round(moments.n * scale)))
                snapshot = moments.estimate(scaled_n)
                if spec.kind == "AVG":
                    estimate = snapshot.mean
                    halfwidth = snapshot.ci_halfwidth
                else:
                    estimate = snapshot.sum_estimate
                    halfwidth = snapshot.sum_ci_halfwidth
                row[spec.alias] = Literal(float(estimate))
            alias = str(spec.alias)
            if halfwidth > bounds[alias]:
                bounds[alias] = halfwidth
        rows.append(row)
    return rows, bounds, spilled


def bundle_to_answer(
    bundle: SketchBundle, method: str = "sketch"
) -> ApproximateAnswer:
    """Render a (possibly merged) bundle as an :class:`ApproximateAnswer`."""
    variables = [spec.alias for spec in bundle.specs]
    if bundle.group_vars:
        rows, bounds, spilled = _grouped_rows(bundle)
        approximate = (not bundle.exhausted) or spilled
        extra: dict[str, object] = {"groups": len(rows)}
        if spilled:
            other = max(
                spec.sketch.other_group_estimate()
                for spec in bundle.agg_specs
            )
            extra["other_groups"] = int(round(other))
        if not approximate:
            bounds = {name: 0.0 for name in bounds}
        return ApproximateAnswer(
            result=SelectResult(variables, rows),
            approximate=approximate,
            rows_consumed=bundle.rows_consumed,
            estimated_total=bundle.estimated_total,
            confidence=bundle.confidence,
            bounds=bounds,
            method=method if approximate else "exact",
            extra=extra,
        )
    row: dict = {}
    bounds = {}
    for spec in bundle.agg_specs:
        estimate = spec.sketch.estimate()
        row[spec.alias] = Literal(int(round(estimate.value)))
        bounds[str(spec.alias)] = round(estimate.absolute_bound(), 6)
    return ApproximateAnswer(
        result=SelectResult(variables, [row]),
        approximate=True,
        rows_consumed=bundle.rows_consumed,
        estimated_total=bundle.estimated_total,
        confidence=bundle.confidence,
        bounds=bounds,
        method=method,
        extra={"sketch": "hll"},
    )


# --------------------------------------------------------------------------- #
# Entry points: local and federated
# --------------------------------------------------------------------------- #


def sketched_select(
    engine: QueryEngine,
    query: str | SelectQuery,
    max_rows: int = 2_000,
    confidence: float = 0.95,
) -> ApproximateAnswer:
    """One-engine sketched answer (the non-federated serving path)."""
    bundle = build_sketch_bundle(engine, query, max_rows, confidence)
    return bundle_to_answer(bundle, method="sketch")


def federated_sketch_bundle(
    store: object,
    query_text: str,
    parsed: SelectQuery,
    max_rows: int = 2_000,
    confidence: float = 0.95,
) -> SketchBundle | None:
    """Fan a sketch-eligible aggregate out across federation members.

    Members exposing ``sketch_select`` (remote endpoints) answer with a
    serialized bundle over the wire; plain local sources are sketched
    in-process. Returns ``None`` when ``store`` is not a federation —
    the caller falls back to :func:`build_sketch_bundle`.
    """
    members = getattr(store, "members", None)
    if members is None:
        return None
    bundles: list[SketchBundle] = []
    for _name, source in members():
        sketch_call = getattr(source, "sketch_select", None)
        if sketch_call is not None:
            payload = sketch_call(
                query_text, max_rows=max_rows, confidence=confidence
            )
            bundles.append(SketchBundle.from_dict(payload))
        else:
            bundles.append(build_sketch_bundle(
                QueryEngine(source), parsed, max_rows, confidence
            ))
    return merge_bundles(bundles)


def federated_sketch_select(
    store: object,
    query_text: str,
    parsed: SelectQuery,
    max_rows: int = 2_000,
    confidence: float = 0.95,
) -> ApproximateAnswer | None:
    merged = federated_sketch_bundle(
        store, query_text, parsed, max_rows, confidence
    )
    if merged is None:
        return None
    return bundle_to_answer(merged, method="sketch-federated")


# --------------------------------------------------------------------------- #
# Progressive refinement: per-pass sketches merged into a running answer
# --------------------------------------------------------------------------- #


def iter_sketch_passes(
    engine: QueryEngine,
    query: str | SelectQuery,
    max_rows: int = 2_000,
    confidence: float = 0.95,
    passes: int = 4,
):
    """Yield a tightening :class:`SketchBundle` after each chunk of work.

    Each pass builds *fresh* per-chunk sketches and merges them into the
    accumulated ones — the same merge the federation coordinator runs, so
    the progressive path continuously exercises mergeability rather than
    special-casing incremental update. Grouped bounds tighten as
    ``rows_consumed`` grows (binomial/CLT halfwidths shrink with the
    sample); a DISTINCT projection lifts the row budget and the passes
    chart coverage of the whole stream instead.

    Every pass also lands on the progress-event stream
    (``approx.sketch.pass``) so a UI can watch without consuming the
    iterator.
    """
    parsed = parse_query(query) if isinstance(query, str) else query
    if not eligible_sketch(parsed):
        raise ValueError("query is not sketch-eligible")
    if max_rows < 1 or passes < 1:
        raise ValueError("max_rows and passes must be positive")
    group_vars, accumulated = _make_specs(parsed, confidence)
    distinct_mode = any(spec.distinct for spec in accumulated)
    budget = None if distinct_mode else max_rows
    chunk = max(1, max_rows // passes)

    pattern_query = SelectQuery(
        projections=(), where=parsed.where, prefixes=parsed.prefixes
    )
    stream = engine.stream_select(pattern_query)
    iterator = iter(stream.rows)
    rows_seen = 0
    exhausted = False
    emitter = OBS.progress
    while not exhausted and (budget is None or rows_seen < budget):
        _, fresh = _make_specs(parsed, confidence)
        consumed = 0
        while consumed < chunk and (budget is None or rows_seen < budget):
            try:
                row = next(iterator)
            except StopIteration:
                exhausted = True
                break
            rows_seen += 1
            consumed += 1
            key = _group_key(row, group_vars) if group_vars else None
            _feed(row, key, fresh)
        if consumed == 0 and not exhausted:
            break  # budget landed exactly on a chunk boundary
        for acc, new in zip(accumulated, fresh):
            if acc.role == "agg":
                acc.sketch.merge(new.sketch)
        if exhausted:
            estimated_total = rows_seen
        else:
            planner_estimate = stream.estimated_rows
            estimated_total = max(
                rows_seen,
                int(round(planner_estimate))
                if planner_estimate is not None else 0,
            )
        if emitter.has_subscribers:
            emitter.emit(
                "approx.sketch.pass",
                completed=rows_seen,
                total=estimated_total,
                exhausted=exhausted,
            )
        yield SketchBundle(
            group_vars=group_vars,
            specs=accumulated,
            rows_consumed=rows_seen,
            estimated_total=estimated_total,
            exhausted=exhausted,
            confidence=confidence,
        )
