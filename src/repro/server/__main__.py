"""``python -m repro.server`` — run a SPARQL endpoint from the shell.

Serves an N-Triples file (``--data``) or, without one, a synthetic
Zipf-skewed typed-entity graph (:func:`repro.workload.rdf_graphs.
typed_entities`) so the quickstart works against a non-trivial dataset out
of the box::

    python -m repro.server --port 8890 --demo-entities 2000
    curl 'http://127.0.0.1:8890/sparql' \\
        --data-urlencode 'query=SELECT ?s WHERE { ?s ?p ?o } LIMIT 5'

``--debug-delay-ms`` injects artificial per-query latency — the overload
lever the CI smoke job pulls to demonstrate load shedding end to end.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..rdf.ntriples import parse_ntriples
from ..store.memory import MemoryStore
from ..workload.rdf_graphs import typed_entities
from .app import ReproServer, ServerConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve a SPARQL 1.1 Protocol endpoint with admission "
        "control and load shedding.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8890,
                        help="listen port (0 = ephemeral)")
    parser.add_argument("--data", metavar="FILE",
                        help="N-Triples file to serve")
    parser.add_argument("--demo-entities", type=int, default=1000,
                        help="size of the synthetic dataset when --data "
                        "is absent (default: 1000)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--queue-capacity", type=int, default=32)
    parser.add_argument("--shed-budget-ms", type=float, default=None,
                        help="p95 latency budget before shedding begins "
                        "(default: the `interactive` class budget)")
    parser.add_argument("--shed-min-observations", type=int, default=8)
    parser.add_argument("--approx-max-rows", type=int, default=2000,
                        help="row budget for approximate aggregate answers")
    parser.add_argument("--debug-delay-ms", type=float, default=0.0,
                        help="artificial per-query delay (overload testing)")
    parser.add_argument("--debug-delay-tenant", default=None,
                        help="restrict --debug-delay-ms to one tenant "
                        "(per-tenant SLO/shedding testing)")
    parser.add_argument("--slo-objective", type=float, default=0.99,
                        help="per-tenant SLO: target in-budget fraction "
                        "(default: 0.99)")
    parser.add_argument("--slo-window-s", type=float, default=30.0,
                        help="per-tenant SLO rolling window in seconds")
    return parser


def main(argv: list[str] | None = None) -> int:
    arguments = build_parser().parse_args(argv)
    store = MemoryStore()
    if arguments.data:
        with open(arguments.data, "r", encoding="utf-8") as handle:
            for triple in parse_ntriples(handle):
                store.add(triple)
        origin = arguments.data
    else:
        for triple in typed_entities(arguments.demo_entities):
            store.add(triple)
        origin = f"synthetic ({arguments.demo_entities} entities)"
    config = ServerConfig(
        host=arguments.host,
        port=arguments.port,
        workers=arguments.workers,
        queue_capacity=arguments.queue_capacity,
        shed_budget_ms=arguments.shed_budget_ms,
        shed_min_observations=arguments.shed_min_observations,
        approx_max_rows=arguments.approx_max_rows,
        slo_objective=arguments.slo_objective,
        slo_window_s=arguments.slo_window_s,
        debug_delay_ms=arguments.debug_delay_ms,
        debug_delay_tenant=arguments.debug_delay_tenant,
    )
    server = ReproServer(store, config)
    server.start()
    print(f"serving {len(store)} triples [{origin}] at {server.base_url}",
          flush=True)
    print("endpoints: /sparql /facets /describe /statistics /health /stats "
          "/metrics /debug/flight /debug/trace",
          flush=True)
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    finally:
        server.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
