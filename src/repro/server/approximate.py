"""Bounded-work approximate evaluation of aggregate queries.

The shed tier's answer path (survey §2: "approximate answers are computed
incrementally over progressively larger samples" — BlinkDB [2],
sampleAction [46]): instead of draining the full operator stream to
aggregate exactly, consume at most ``max_rows`` solutions, maintain
streaming moments (:class:`repro.approx.progressive.StreamingMoments`),
and scale up by the planner's cardinality estimate for the pattern —
yielding an answer whose cost is a *sample-size* amount of work with an
explicit confidence interval.

Two honesty notes, carried into the response metadata:

* the consumed prefix of the operator stream is treated as an
  exchangeable sample (the same assumption
  :class:`~repro.approx.progressive.ProgressiveAggregator` makes about its
  shuffled prefixes; store iteration order is index order, so skew in that
  order widens real error beyond the reported interval);
* ``COUNT`` scale-up rests on the planner's estimate of the pattern's
  cardinality, whose own error is not probabilistic — its bound is the
  coarse ``|estimate − seen|`` interval, not a CLT interval.

When the stream is exhausted under the row budget nothing was saved and
nothing needs approximating: the query is answered exactly (the
graceful-recovery property — cheap queries stay exact even in shed mode).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..approx.progressive import StreamingMoments, binomial_halfwidth
from ..rdf.terms import Literal, Variable
from ..sparql.eval import QueryEngine
from ..sparql.nodes import AggregateExpr, Query, SelectQuery, VariableExpr
from ..sparql.parser import parse_query
from ..sparql.results import SelectResult

__all__ = ["ApproximateAnswer", "approximate_select", "eligible_aggregate"]

_SUPPORTED = ("COUNT", "SUM", "AVG")


@dataclass(frozen=True)
class ApproximateAnswer:
    """An aggregate answer plus the metadata that makes it honest."""

    result: SelectResult
    approximate: bool
    rows_consumed: int
    estimated_total: int
    confidence: float
    bounds: dict[str, float]  # projection variable -> CI halfwidth
    method: str
    extra: dict[str, object] | None = None  # method-specific annotations

    def metadata(self) -> dict[str, object]:
        """The ``x-repro`` body member / ``X-Repro-*`` header payload."""
        payload: dict[str, object] = {
            "approximate": self.approximate,
            "method": self.method,
            "rows_consumed": self.rows_consumed,
            "estimated_total": self.estimated_total,
            "confidence": self.confidence,
            "bounds": {
                name: (round(value, 6) if value != float("inf") else "inf")
                for name, value in self.bounds.items()
            },
        }
        if self.extra:
            payload.update(self.extra)
        return payload


def eligible_aggregate(query: Query) -> bool:
    """Can the shed tier answer this query approximately?

    Eligible: an ungrouped SELECT whose every projection is a plain
    ``COUNT``/``SUM``/``AVG`` aggregate over a variable (or ``COUNT(*)``).
    Everything else — grouped aggregates, DISTINCT, ORDER BY, slices,
    non-aggregate projections — is answered exactly regardless of tier.
    """
    if not isinstance(query, SelectQuery):
        return False
    if query.group_by or query.having is not None or query.order_by:
        return False
    if query.distinct or query.limit is not None or query.offset:
        return False
    if not query.projections:
        return False
    for projection in query.projections:
        expression = projection.expression
        if not isinstance(expression, AggregateExpr):
            return False
        if expression.distinct or expression.name not in _SUPPORTED:
            return False
        if expression.name == "COUNT":
            if expression.argument is not None and not isinstance(
                expression.argument, VariableExpr
            ):
                return False
        elif not isinstance(expression.argument, VariableExpr):
            return False
    return True


class _AggState:
    """Streaming state for one projected aggregate."""

    __slots__ = ("kind", "variable", "alias", "moments", "bound_rows")

    def __init__(self, expression: AggregateExpr, alias: Variable,
                 confidence: float) -> None:
        self.kind = expression.name
        self.variable = (
            expression.argument.variable
            if isinstance(expression.argument, VariableExpr)
            else None
        )
        self.alias = alias
        self.moments = StreamingMoments(confidence)
        self.bound_rows = 0  # rows where the argument variable is bound

    def consume(self, row: dict) -> None:
        if self.variable is None:  # COUNT(*)
            return
        term = row.get(self.variable)
        if term is None:
            return
        self.bound_rows += 1
        if self.kind in ("SUM", "AVG") and isinstance(term, Literal):
            value = term.value
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                self.moments.add(float(value))

    def estimate(
        self, rows_seen: int, estimated_total: int
    ) -> tuple[Literal, float]:
        """(value, CI halfwidth) scaled to the estimated population."""
        if self.kind == "COUNT" and self.variable is None:
            return (
                Literal(int(estimated_total)),
                float(abs(estimated_total - rows_seen)),
            )
        if self.kind == "COUNT":
            if not rows_seen:
                return Literal(0), 0.0
            estimate = self.bound_rows / rows_seen * estimated_total
            halfwidth = binomial_halfwidth(
                self.bound_rows, rows_seen, estimated_total,
                self.moments.confidence,
            )
            return Literal(int(round(estimate))), halfwidth
        # SUM / AVG over the numeric values observed so far; the numeric
        # population is the total scaled by the observed numeric fraction.
        n = self.moments.n
        numeric_total = (
            int(round(estimated_total * n / rows_seen)) if rows_seen else 0
        )
        snapshot = self.moments.estimate(numeric_total)
        if self.kind == "AVG":
            return Literal(float(snapshot.mean)), snapshot.ci_halfwidth
        return (
            Literal(float(snapshot.sum_estimate)),
            snapshot.sum_ci_halfwidth,
        )


def approximate_select(
    engine: QueryEngine,
    query: str | SelectQuery,
    max_rows: int = 2_000,
    confidence: float = 0.95,
) -> ApproximateAnswer:
    """Answer an eligible aggregate SELECT with at most ``max_rows`` of work.

    Raises :class:`ValueError` for ineligible queries — the caller
    (:mod:`repro.server.app`) checks :func:`eligible_aggregate` first and
    routes everything else to the exact engine.
    """
    parsed = parse_query(query) if isinstance(query, str) else query
    if not eligible_aggregate(parsed):
        raise ValueError("query is not an eligible aggregate")
    if max_rows < 1:
        raise ValueError("max_rows must be positive")

    # Stream the *pattern* solutions (SELECT * over the same WHERE) so the
    # aggregates see raw bindings, not the aggregate operator's output.
    pattern_query = SelectQuery(
        projections=(), where=parsed.where, prefixes=parsed.prefixes
    )
    stream = engine.stream_select(pattern_query)
    states = [
        _AggState(projection.expression, projection.variable, confidence)
        for projection in parsed.projections
    ]

    rows_seen = 0
    exhausted = False
    iterator = iter(stream.rows)
    while rows_seen < max_rows:
        try:
            row = next(iterator)
        except StopIteration:
            exhausted = True
            break
        rows_seen += 1
        for state in states:
            state.consume(row)

    if exhausted:
        # The full stream fit inside the work budget: answer exactly.
        result = engine.query(parsed)
        return ApproximateAnswer(
            result=result,
            approximate=False,
            rows_consumed=rows_seen,
            estimated_total=rows_seen,
            confidence=confidence,
            bounds={str(p.variable): 0.0 for p in parsed.projections},
            method="exact",
        )

    planner_estimate = stream.estimated_rows
    estimated_total = max(
        rows_seen,
        int(round(planner_estimate)) if planner_estimate is not None else 0,
    )
    variables = [projection.variable for projection in parsed.projections]
    row: dict[Variable, Literal] = {}
    bounds: dict[str, float] = {}
    for state in states:
        value, halfwidth = state.estimate(rows_seen, estimated_total)
        row[state.alias] = value
        bounds[str(state.alias)] = halfwidth
    return ApproximateAnswer(
        result=SelectResult(variables, [row]),
        approximate=True,
        rows_consumed=rows_seen,
        estimated_total=estimated_total,
        confidence=confidence,
        bounds=bounds,
        method="prefix-sample",
    )
