"""Well-known vocabularies used across the Web of Data.

The survey's systems operate over data described with a small set of core
vocabularies: RDF/RDFS/OWL for structure and ontologies (Section 3.5), the
W3C Data Cube vocabulary for statistical data (Section 3.3), WGS84 Geo for
spatial data (Section 3.3), FOAF/DCTERMS/SKOS for typical LOD payloads.
"""

from __future__ import annotations

from .namespace import Namespace, NamespaceManager

__all__ = [
    "RDF",
    "RDFS",
    "OWL",
    "XSD",
    "FOAF",
    "DCTERMS",
    "SKOS",
    "QB",
    "GEO",
    "VOID",
    "DEFAULT_PREFIXES",
    "default_namespace_manager",
]

RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
FOAF = Namespace("http://xmlns.com/foaf/0.1/")
DCTERMS = Namespace("http://purl.org/dc/terms/")
SKOS = Namespace("http://www.w3.org/2004/02/skos/core#")
QB = Namespace("http://purl.org/linked-data/cube#")
GEO = Namespace("http://www.w3.org/2003/01/geo/wgs84_pos#")
VOID = Namespace("http://rdfs.org/ns/void#")

DEFAULT_PREFIXES: dict[str, str] = {
    "rdf": str(RDF),
    "rdfs": str(RDFS),
    "owl": str(OWL),
    "xsd": str(XSD),
    "foaf": str(FOAF),
    "dcterms": str(DCTERMS),
    "skos": str(SKOS),
    "qb": str(QB),
    "geo": str(GEO),
    "void": str(VOID),
}


def default_namespace_manager() -> NamespaceManager:
    """A NamespaceManager pre-loaded with the standard prefixes above."""
    manager = NamespaceManager()
    for prefix, namespace in DEFAULT_PREFIXES.items():
        manager.bind(prefix, namespace)
    return manager
