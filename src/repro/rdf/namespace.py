"""Namespaces and prefixed-name management.

Linked Data vocabularies are identified by IRI namespaces; human-facing
tools (browsers, facet panels, chart legends — Sections 3.1-3.2 of the
survey) display *prefixed names* such as ``foaf:name`` instead of full IRIs.
This module provides the ``Namespace`` factory and a ``NamespaceManager``
that performs the two-way mapping.
"""

from __future__ import annotations

from typing import Iterator

from .terms import IRI

__all__ = ["Namespace", "NamespaceManager", "split_iri"]


class Namespace(str):
    """An IRI prefix that mints member IRIs via attribute or item access.

    >>> FOAF = Namespace("http://xmlns.com/foaf/0.1/")
    >>> FOAF.name
    IRI('http://xmlns.com/foaf/0.1/name')
    >>> FOAF["first-name"]
    IRI('http://xmlns.com/foaf/0.1/first-name')
    """

    __slots__ = ()

    def __getattr__(self, name: str) -> IRI:
        if name.startswith("__"):  # keep pickling & introspection sane
            raise AttributeError(name)
        return IRI(str(self) + name)

    def __getitem__(self, name: str) -> IRI:  # type: ignore[override]
        return IRI(str(self) + name)

    def term(self, name: str) -> IRI:
        """Explicit member constructor (for names shadowed by str methods)."""
        return IRI(str(self) + name)

    def __contains__(self, item: object) -> bool:  # type: ignore[override]
        return isinstance(item, str) and item.startswith(str(self))


def split_iri(iri: str) -> tuple[str, str]:
    """Split an IRI into ``(namespace, local name)`` at ``#`` or last ``/``.

    Falls back to ``(iri, "")`` when no separator is present.
    """
    if "#" in iri:
        ns, _, local = iri.rpartition("#")
        return ns + "#", local
    if "/" in iri:
        ns, _, local = iri.rpartition("/")
        return ns + "/", local
    if ":" in iri:  # URN-style identifiers
        ns, _, local = iri.rpartition(":")
        return ns + ":", local
    return iri, ""


class NamespaceManager:
    """Bidirectional prefix registry used by serializers and UIs."""

    def __init__(self) -> None:
        self._prefix_to_ns: dict[str, str] = {}
        self._ns_to_prefix: dict[str, str] = {}

    def bind(self, prefix: str, namespace: str, replace: bool = True) -> None:
        """Register ``prefix`` for ``namespace``.

        With ``replace=False`` an existing binding for either side is kept.
        """
        namespace = str(namespace)
        if not replace and (prefix in self._prefix_to_ns or namespace in self._ns_to_prefix):
            return
        old_ns = self._prefix_to_ns.get(prefix)
        if old_ns is not None:
            self._ns_to_prefix.pop(old_ns, None)
        old_prefix = self._ns_to_prefix.get(namespace)
        if old_prefix is not None:
            self._prefix_to_ns.pop(old_prefix, None)
        self._prefix_to_ns[prefix] = namespace
        self._ns_to_prefix[namespace] = prefix

    def expand(self, qname: str) -> IRI:
        """Expand a prefixed name (``foaf:name``) to a full IRI."""
        prefix, sep, local = qname.partition(":")
        if not sep:
            raise ValueError(f"not a prefixed name: {qname!r}")
        try:
            return IRI(self._prefix_to_ns[prefix] + local)
        except KeyError:
            raise KeyError(f"unbound prefix {prefix!r}") from None

    def qname(self, iri: str) -> str:
        """Compact an IRI to a prefixed name; returns ``<iri>`` if unbound."""
        ns, local = split_iri(iri)
        prefix = self._ns_to_prefix.get(ns)
        if prefix is not None and local:
            return f"{prefix}:{local}"
        return f"<{iri}>"

    def namespaces(self) -> Iterator[tuple[str, str]]:
        """Yield ``(prefix, namespace)`` pairs, sorted by prefix."""
        yield from sorted(self._prefix_to_ns.items())

    def __contains__(self, prefix: str) -> bool:
        return prefix in self._prefix_to_ns

    def __len__(self) -> int:
        return len(self._prefix_to_ns)

    def copy(self) -> "NamespaceManager":
        clone = NamespaceManager()
        clone._prefix_to_ns = dict(self._prefix_to_ns)
        clone._ns_to_prefix = dict(self._ns_to_prefix)
        return clone
