"""The RDF graph: a set of triples with indexed pattern matching.

``Graph`` is the user-facing container of the substrate. It maintains three
hash indexes (S→P→O, P→O→S, O→S→P) so that any triple pattern — the basic
access path of every browser, facet panel, and SPARQL basic graph pattern in
the survey — is answered without a full scan.

For datasets beyond main memory, :mod:`repro.store` offers a dictionary-
encoded and disk-backed store exposing the same ``triples()`` protocol; all
higher layers are written against that protocol, not against ``Graph``
specifically.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from .namespace import NamespaceManager
from .terms import IRI, BNode, Literal, Predicate, RDFObject, Subject, Term, Triple
from .vocab import RDF, RDFS, default_namespace_manager

__all__ = ["Graph", "TriplePattern"]

TriplePattern = tuple[Subject | None, Predicate | None, RDFObject | None]


class Graph:
    """An in-memory RDF graph with triple-pattern indexes.

    ``None`` acts as a wildcard in all pattern-matching APIs::

        g.triples((person, None, None))     # all properties of `person`
        g.triples((None, RDF.type, cls))    # all instances of `cls`
    """

    def __init__(
        self,
        triples: Iterable[Triple | tuple] | None = None,
        namespace_manager: NamespaceManager | None = None,
    ) -> None:
        self._spo: dict[Subject, dict[Predicate, set[RDFObject]]] = defaultdict(
            lambda: defaultdict(set)
        )
        self._pos: dict[Predicate, dict[RDFObject, set[Subject]]] = defaultdict(
            lambda: defaultdict(set)
        )
        self._osp: dict[RDFObject, dict[Subject, set[Predicate]]] = defaultdict(
            lambda: defaultdict(set)
        )
        self._size = 0
        self._stats = None  # cached StatisticsSnapshot, dropped on mutation
        self.namespace_manager = namespace_manager or default_namespace_manager()
        if triples is not None:
            for triple in triples:
                self.add(triple)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def add(self, triple: Triple | tuple) -> bool:
        """Insert a triple. Returns ``True`` if the graph changed."""
        s, p, o = triple
        _validate(s, p, o)
        objects = self._spo[s][p]
        if o in objects:
            return False
        objects.add(o)
        self._pos[p][o].add(s)
        self._osp[o][s].add(p)
        self._size += 1
        self._stats = None
        return True

    def add_all(self, triples: Iterable[Triple | tuple]) -> int:
        """Insert many triples; returns the number actually added."""
        return sum(1 for t in triples if self.add(t))

    def remove(self, pattern: TriplePattern | Triple) -> int:
        """Remove every triple matching ``pattern``; returns removal count."""
        victims = list(self.triples(pattern))
        for s, p, o in victims:
            self._spo[s][p].discard(o)
            if not self._spo[s][p]:
                del self._spo[s][p]
                if not self._spo[s]:
                    del self._spo[s]
            self._pos[p][o].discard(s)
            if not self._pos[p][o]:
                del self._pos[p][o]
                if not self._pos[p]:
                    del self._pos[p]
            self._osp[o][s].discard(p)
            if not self._osp[o][s]:
                del self._osp[o][s]
                if not self._osp[o]:
                    del self._osp[o]
        self._size -= len(victims)
        if victims:
            self._stats = None
        return len(victims)

    # ------------------------------------------------------------------ #
    # Pattern matching
    # ------------------------------------------------------------------ #

    def triples(self, pattern: TriplePattern | Triple = (None, None, None)) -> Iterator[Triple]:
        """Yield every triple matching ``pattern`` (``None`` = wildcard).

        The most selective index for the bound positions is chosen, so the
        cost is proportional to the size of the answer, not of the graph.
        """
        s, p, o = pattern
        if s is not None:
            by_pred = self._spo.get(s)
            if by_pred is None:
                return
            if p is not None:
                objects = by_pred.get(p)
                if objects is None:
                    return
                if o is not None:
                    if o in objects:
                        yield Triple(s, p, o)
                    return
                for obj in objects:
                    yield Triple(s, p, obj)
                return
            for pred, objects in by_pred.items():
                if o is not None:
                    if o in objects:
                        yield Triple(s, pred, o)
                    continue
                for obj in objects:
                    yield Triple(s, pred, obj)
            return
        if p is not None:
            by_obj = self._pos.get(p)
            if by_obj is None:
                return
            if o is not None:
                for subj in by_obj.get(o, ()):
                    yield Triple(subj, p, o)
                return
            for obj, subjects in by_obj.items():
                for subj in subjects:
                    yield Triple(subj, p, obj)
            return
        if o is not None:
            by_subj = self._osp.get(o)
            if by_subj is None:
                return
            for subj, preds in by_subj.items():
                for pred in preds:
                    yield Triple(subj, pred, o)
            return
        for subj, by_pred in self._spo.items():
            for pred, objects in by_pred.items():
                for obj in objects:
                    yield Triple(subj, pred, obj)

    def count(self, pattern: TriplePattern = (None, None, None)) -> int:
        """Count matching triples without materializing them all (fast paths
        for the fully-unbound and single-bound cases)."""
        s, p, o = pattern
        if s is None and p is None and o is None:
            return self._size
        if s is not None and p is None and o is None:
            return sum(len(objs) for objs in self._spo.get(s, {}).values())
        if p is not None and s is None and o is None:
            return sum(len(subjs) for subjs in self._pos.get(p, {}).values())
        if o is not None and s is None and p is None:
            return sum(len(preds) for preds in self._osp.get(o, {}).values())
        return sum(1 for _ in self.triples(pattern))

    def statistics(self):
        """Cached store statistics (the SPARQL optimizer's cost input).

        Returns a :class:`repro.store.base.StatisticsSnapshot`; imported
        lazily because :mod:`repro.store` depends on this module.
        """
        if self._stats is None:
            from ..store.base import StatisticsSnapshot

            self._stats = StatisticsSnapshot(
                triple_count=self._size,
                distinct_subjects=len(self._spo),
                distinct_predicates=len(self._pos),
                distinct_objects=len(self._osp),
                predicate_cardinalities={
                    p: sum(len(subjs) for subjs in by_obj.values())
                    for p, by_obj in self._pos.items()
                },
            )
        return self._stats

    def __contains__(self, triple: Triple | tuple) -> bool:
        s, p, o = triple
        return o in self._spo.get(s, {}).get(p, ())

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def __bool__(self) -> bool:
        return self._size > 0

    # ------------------------------------------------------------------ #
    # Convenience accessors (the browser layer's vocabulary)
    # ------------------------------------------------------------------ #

    def subjects(
        self, predicate: Predicate | None = None, object: RDFObject | None = None
    ) -> Iterator[Subject]:
        seen: set[Subject] = set()
        for s, _, _ in self.triples((None, predicate, object)):
            if s not in seen:
                seen.add(s)
                yield s

    def predicates(
        self, subject: Subject | None = None, object: RDFObject | None = None
    ) -> Iterator[Predicate]:
        seen: set[Predicate] = set()
        for _, p, _ in self.triples((subject, None, object)):
            if p not in seen:
                seen.add(p)
                yield p

    def objects(
        self, subject: Subject | None = None, predicate: Predicate | None = None
    ) -> Iterator[RDFObject]:
        seen: set[RDFObject] = set()
        for _, _, o in self.triples((subject, predicate, None)):
            if o not in seen:
                seen.add(o)
                yield o

    def value(
        self, subject: Subject | None = None, predicate: Predicate | None = None
    ) -> RDFObject | None:
        """The single object of ``(subject, predicate, ?)``, or ``None``."""
        for _, _, o in self.triples((subject, predicate, None)):
            return o
        return None

    def label(self, subject: Subject) -> str:
        """Human-readable label: ``rdfs:label`` if present, else local name."""
        value = self.value(subject, RDFS.label)
        if isinstance(value, Literal):
            return value.lexical
        if isinstance(subject, IRI):
            return subject.local_name or str(subject)
        return str(subject)

    def types_of(self, subject: Subject) -> set[IRI]:
        """The ``rdf:type`` classes of ``subject``."""
        return {o for o in self.objects(subject, RDF.type) if isinstance(o, IRI)}

    def instances_of(self, cls: IRI) -> Iterator[Subject]:
        """All subjects typed with ``cls``."""
        return self.subjects(RDF.type, cls)

    # ------------------------------------------------------------------ #
    # Set operations
    # ------------------------------------------------------------------ #

    def union(self, other: "Graph") -> "Graph":
        result = Graph(namespace_manager=self.namespace_manager.copy())
        result.add_all(self)
        result.add_all(other)
        return result

    def intersection(self, other: "Graph") -> "Graph":
        small, large = (self, other) if len(self) <= len(other) else (other, self)
        result = Graph(namespace_manager=self.namespace_manager.copy())
        result.add_all(t for t in small if t in large)
        return result

    def difference(self, other: "Graph") -> "Graph":
        result = Graph(namespace_manager=self.namespace_manager.copy())
        result.add_all(t for t in self if t not in other)
        return result

    __or__ = union
    __and__ = intersection
    __sub__ = difference

    def copy(self) -> "Graph":
        result = Graph(namespace_manager=self.namespace_manager.copy())
        result.add_all(self)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Graph with {self._size} triples>"


def _validate(s: object, p: object, o: object) -> None:
    if not isinstance(s, (IRI, BNode)):
        raise TypeError(f"triple subject must be IRI or BNode, got {type(s).__name__}")
    if not isinstance(p, IRI):
        raise TypeError(f"triple predicate must be IRI, got {type(p).__name__}")
    if not isinstance(o, (IRI, BNode, Literal)):
        raise TypeError(f"triple object must be an RDF term, got {type(o).__name__}")
