"""Turtle parser and serializer (a practical RDF 1.1 Turtle subset).

Turtle is the syntax WoD publishers actually hand-author, and the syntax the
surveyed browsers ingest. The subset implemented here covers everything the
toolkit's workloads emit and everything common LOD dumps use:

* ``@prefix`` / ``@base`` directives (and SPARQL-style ``PREFIX``/``BASE``)
* prefixed names and relative IRIs
* predicate lists (``;``), object lists (``,``), ``a`` for ``rdf:type``
* anonymous blank nodes ``[ ... ]`` with nested property lists
* RDF collections ``( ... )`` expanded to ``rdf:first``/``rdf:rest`` chains
* numeric (integer/decimal/double), boolean, and string literals with
  language tags or datatypes; long strings (``\"\"\"...\"\"\"``)

Not supported (and rejected loudly rather than misparsed): named graphs
(TriG), ``@`` directives other than prefix/base.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator

from .namespace import NamespaceManager, split_iri
from .terms import IRI, BNode, Literal, RDFObject, Subject, Triple
from .vocab import RDF, XSD, default_namespace_manager

__all__ = ["parse_turtle", "serialize_turtle", "TurtleError"]


class TurtleError(ValueError):
    """Raised on malformed Turtle input with positional context."""


_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+|\#[^\n]*)
  | (?P<TRIPLEQ>\"\"\"(?:[^"\\]|\\.|"(?!""))*\"\"\")
  | (?P<STRING>"(?:[^"\\\n]|\\.)*")
  | (?P<IRIREF><[^<>"\s]*>)
  | (?P<PREFIX_DECL>@prefix\b|@base\b|PREFIX\b|BASE\b)
  | (?P<BOOLEAN>\btrue\b|\bfalse\b)
  | (?P<DOUBLE>[+-]?(?:\d+\.\d*|\.\d+|\d+)[eE][+-]?\d+)
  | (?P<DECIMAL>[+-]?\d*\.\d+)
  | (?P<INTEGER>[+-]?\d+)
  | (?P<BNODE>_:[A-Za-z0-9][A-Za-z0-9_.-]*)
  | (?P<PNAME>[A-Za-z][\w.-]*)?:(?P<PLOCAL>[\w.-]*(?:%[0-9A-Fa-f]{2}[\w.-]*)*)?
  | (?P<LANGTAG>@[A-Za-z]+(?:-[A-Za-z0-9]+)*)
  | (?P<DTYPE>\^\^)
  | (?P<KEYWORD_A>\ba\b)
  | (?P<PUNCT>[;,.\[\]()])
    """,
    re.VERBOSE,
)

_STRING_ESCAPE_RE = re.compile(r"\\(.)|\\u([0-9A-Fa-f]{4})|\\U([0-9A-Fa-f]{8})")


class _Token:
    __slots__ = ("kind", "value", "pos")

    def __init__(self, kind: str, value: str, pos: int) -> None:
        self.kind = kind
        self.value = value
        self.pos = pos

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Token({self.kind}, {self.value!r})"


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    n = len(text)
    while pos < n:
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            line = text.count("\n", 0, pos) + 1
            raise TurtleError(f"line {line}: unexpected character {text[pos]!r}")
        kind = match.lastgroup
        if kind in ("PLOCAL", None):  # the PNAME alternative fired
            value = match.group(0)
            # Turtle's PN_LOCAL cannot end in '.'; our regex is greedy, so
            # peel trailing dots back off as statement terminators.
            end = match.end()
            while value.endswith("."):
                value = value[:-1]
                end -= 1
            tokens.append(_Token("QNAME", value, pos))
            for offset in range(end, match.end()):
                tokens.append(_Token("PUNCT", ".", offset))
            pos = match.end()
            continue
        if kind != "WS":
            tokens.append(_Token(kind, match.group(0), pos))
        pos = match.end()
    tokens.append(_Token("EOF", "", n))
    return tokens


from .ntriples import _unescape as _nt_unescape  # shared escape rules


class _Parser:
    """Recursive-descent Turtle parser producing a triple stream."""

    def __init__(self, text: str, base: str | None = None) -> None:
        self._text = text
        self._tokens = _tokenize(text)
        self._i = 0
        self._base = base or ""
        self.namespaces = NamespaceManager()
        self._triples: list[Triple] = []

    # -- token plumbing -------------------------------------------------

    def _peek(self) -> _Token:
        return self._tokens[self._i]

    def _next(self) -> _Token:
        token = self._tokens[self._i]
        self._i += 1
        return token

    def _expect(self, kind: str, value: str | None = None) -> _Token:
        token = self._next()
        if token.kind != kind or (value is not None and token.value != value):
            raise self._error(f"expected {value or kind}, got {token.value!r}", token)
        return token

    def _error(self, message: str, token: _Token | None = None) -> TurtleError:
        pos = (token or self._peek()).pos
        line = self._text.count("\n", 0, pos) + 1
        return TurtleError(f"line {line}: {message}")

    # -- grammar --------------------------------------------------------

    def parse(self) -> Iterator[Triple]:
        while self._peek().kind != "EOF":
            token = self._peek()
            if token.kind == "PREFIX_DECL":
                self._directive()
            else:
                self._triples_block()
            yield from self._triples
            self._triples.clear()

    def _directive(self) -> None:
        decl = self._next()
        keyword = decl.value.lstrip("@").lower()
        sparql_style = not decl.value.startswith("@")
        if keyword == "prefix":
            name_token = self._expect("QNAME")
            prefix = name_token.value[:-1] if name_token.value.endswith(":") else ""
            if ":" in name_token.value:
                prefix = name_token.value.split(":", 1)[0]
            iri_token = self._expect("IRIREF")
            self.namespaces.bind(prefix, self._resolve(iri_token.value[1:-1]))
        elif keyword == "base":
            iri_token = self._expect("IRIREF")
            self._base = self._resolve(iri_token.value[1:-1])
        else:  # pragma: no cover - the lexer only emits prefix/base
            raise self._error(f"unsupported directive {decl.value!r}", decl)
        if not sparql_style:
            self._expect("PUNCT", ".")

    def _triples_block(self) -> None:
        subject = self._subject()
        self._predicate_object_list(subject)
        self._expect("PUNCT", ".")

    def _subject(self) -> Subject:
        token = self._peek()
        if token.kind == "IRIREF" or token.kind == "QNAME":
            return self._iri()
        if token.kind == "BNODE":
            self._next()
            return BNode(token.value[2:])
        if token.kind == "PUNCT" and token.value == "[":
            return self._blank_node_property_list()
        if token.kind == "PUNCT" and token.value == "(":
            return self._collection()
        raise self._error(f"expected subject, got {token.value!r}", token)

    def _predicate_object_list(self, subject: Subject) -> None:
        while True:
            predicate = self._predicate()
            while True:
                obj = self._object()
                self._triples.append(Triple(subject, predicate, obj))
                if self._peek().kind == "PUNCT" and self._peek().value == ",":
                    self._next()
                    continue
                break
            if self._peek().kind == "PUNCT" and self._peek().value == ";":
                self._next()
                # tolerate trailing ';' before '.' or ']'
                nxt = self._peek()
                if nxt.kind == "PUNCT" and nxt.value in (".", "]"):
                    break
                continue
            break

    def _predicate(self) -> IRI:
        token = self._peek()
        if token.kind == "KEYWORD_A":
            self._next()
            return RDF.type
        if token.kind in ("IRIREF", "QNAME"):
            return self._iri()
        raise self._error(f"expected predicate, got {token.value!r}", token)

    def _object(self) -> RDFObject:
        token = self._peek()
        if token.kind in ("IRIREF", "QNAME"):
            return self._iri()
        if token.kind == "BNODE":
            self._next()
            return BNode(token.value[2:])
        if token.kind == "PUNCT" and token.value == "[":
            return self._blank_node_property_list()
        if token.kind == "PUNCT" and token.value == "(":
            return self._collection()
        if token.kind in ("STRING", "TRIPLEQ"):
            return self._literal()
        if token.kind == "INTEGER":
            self._next()
            return Literal(token.value, datatype=XSD.integer)
        if token.kind == "DECIMAL":
            self._next()
            return Literal(token.value, datatype=XSD.decimal)
        if token.kind == "DOUBLE":
            self._next()
            return Literal(token.value, datatype=XSD.double)
        if token.kind == "BOOLEAN":
            self._next()
            return Literal(token.value, datatype=XSD.boolean)
        raise self._error(f"expected object, got {token.value!r}", token)

    def _literal(self) -> Literal:
        token = self._next()
        if token.kind == "TRIPLEQ":
            lexical = _nt_unescape(token.value[3:-3])
        else:
            lexical = _nt_unescape(token.value[1:-1])
        nxt = self._peek()
        if nxt.kind == "LANGTAG":
            self._next()
            return Literal(lexical, lang=nxt.value[1:])
        if nxt.kind == "DTYPE":
            self._next()
            return Literal(lexical, datatype=str(self._iri()))
        return Literal(lexical)

    def _iri(self) -> IRI:
        token = self._next()
        if token.kind == "IRIREF":
            return IRI(self._resolve(_nt_unescape(token.value[1:-1])))
        if token.kind == "QNAME":
            prefix, _, local = token.value.partition(":")
            try:
                return IRI(str(self.namespaces.expand(f"{prefix}:")) + local)
            except KeyError:
                raise self._error(f"unbound prefix {prefix!r}", token) from None
        raise self._error(f"expected IRI, got {token.value!r}", token)

    def _resolve(self, iri: str) -> str:
        """Resolve a (possibly relative) IRI against the current base."""
        if not self._base or re.match(r"^[A-Za-z][A-Za-z0-9+.-]*:", iri):
            return iri
        if iri.startswith("#"):
            return self._base.split("#", 1)[0] + iri
        base = self._base
        if not base.endswith(("/", "#")):
            base = base.rsplit("/", 1)[0] + "/"
        return base + iri

    def _blank_node_property_list(self) -> BNode:
        self._expect("PUNCT", "[")
        node = BNode()
        if not (self._peek().kind == "PUNCT" and self._peek().value == "]"):
            self._predicate_object_list(node)
        self._expect("PUNCT", "]")
        return node

    def _collection(self) -> Subject:
        self._expect("PUNCT", "(")
        items: list[RDFObject] = []
        while not (self._peek().kind == "PUNCT" and self._peek().value == ")"):
            items.append(self._object())
        self._expect("PUNCT", ")")
        if not items:
            return RDF.nil
        head = BNode()
        node = head
        for index, item in enumerate(items):
            self._triples.append(Triple(node, RDF.first, item))
            if index == len(items) - 1:
                self._triples.append(Triple(node, RDF.rest, RDF.nil))
            else:
                nxt = BNode()
                self._triples.append(Triple(node, RDF.rest, nxt))
                node = nxt
        return head


def parse_turtle(
    text: str,
    base: str | None = None,
    namespace_manager: NamespaceManager | None = None,
) -> Iterator[Triple]:
    """Parse a Turtle document, yielding triples.

    If a ``namespace_manager`` is supplied, prefixes declared in the document
    are registered on it (so callers can later compact IRIs for display).
    """
    parser = _Parser(text, base=base)
    for triple in parser.parse():
        yield triple
    if namespace_manager is not None:
        for prefix, namespace in parser.namespaces.namespaces():
            namespace_manager.bind(prefix, namespace, replace=False)


def serialize_turtle(
    triples: Iterable[Triple],
    namespace_manager: NamespaceManager | None = None,
) -> str:
    """Serialize triples to compact Turtle grouped by subject.

    Subjects and predicates are emitted in deterministic sorted order so the
    output is stable across runs (important for snapshot tests).
    """
    manager = namespace_manager or default_namespace_manager()
    by_subject: dict[Subject, dict[IRI, list[RDFObject]]] = {}
    used_namespaces: set[str] = set()

    def note(term: object) -> None:
        if isinstance(term, IRI):
            ns, local = split_iri(str(term))
            if local:
                used_namespaces.add(ns)

    for s, p, o in triples:
        by_subject.setdefault(s, {}).setdefault(p, []).append(o)
        note(s)
        note(p)
        note(o)

    prefix_lines = [
        f"@prefix {prefix}: <{namespace}> ."
        for prefix, namespace in manager.namespaces()
        if namespace in used_namespaces
    ]

    def compact(term: RDFObject | Subject) -> str:
        if isinstance(term, IRI):
            qname = manager.qname(str(term))
            return qname
        if isinstance(term, BNode):
            return term.n3()
        return term.n3()

    blocks: list[str] = []
    for subject in sorted(by_subject, key=str):
        predicates = by_subject[subject]
        lines: list[str] = []
        pred_keys = sorted(predicates, key=str)
        for p_index, predicate in enumerate(pred_keys):
            pred_text = "a" if predicate == RDF.type else compact(predicate)
            objects = sorted(predicates[predicate], key=lambda o: o.n3())
            obj_text = ", ".join(compact(o) for o in objects)
            terminator = " ;" if p_index < len(pred_keys) - 1 else " ."
            lines.append(f"    {pred_text} {obj_text}{terminator}")
        blocks.append(compact(subject) + "\n" + "\n".join(lines))

    parts = []
    if prefix_lines:
        parts.append("\n".join(prefix_lines))
    parts.extend(blocks)
    return "\n\n".join(parts) + ("\n" if parts else "")
