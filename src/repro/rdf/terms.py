"""RDF term model: IRIs, blank nodes, literals, and triples.

This module is the foundation of the toolkit's Linked Data substrate. The
survey (Bikakis & Sellis, LWDM 2016) targets systems operating over the Web
of Data, whose data model is RDF: every dataset is a set of
``(subject, predicate, object)`` triples whose components are *terms*.

Terms are immutable value objects so they can be dictionary-encoded by the
storage layer (:mod:`repro.store`) and hashed into indexes.
"""

from __future__ import annotations

import threading
from typing import NamedTuple, Union

__all__ = [
    "IRI",
    "BNode",
    "Literal",
    "Term",
    "Subject",
    "Predicate",
    "RDFObject",
    "Triple",
    "Variable",
    "term_sort_key",
]


class IRI(str):
    """An absolute IRI reference (e.g. ``http://example.org/person/1``).

    Subclassing :class:`str` keeps IRIs hashable, orderable, and cheap, while
    still being a distinct type so pattern matching can distinguish an IRI
    from a plain-string literal lexical form.
    """

    __slots__ = ()

    def __new__(cls, value: str) -> "IRI":
        if not value:
            raise ValueError("IRI must be a non-empty string")
        if any(ch in value for ch in ("<", ">", '"', " ", "\n", "\t")):
            raise ValueError(f"IRI contains a character forbidden in IRIs: {value!r}")
        return str.__new__(cls, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IRI({str.__repr__(self)})"

    @property
    def local_name(self) -> str:
        """The fragment or last path segment, used as a default label."""
        if "#" in self:
            return self.rsplit("#", 1)[1]
        return self.rstrip("/").rsplit("/", 1)[-1]

    @property
    def namespace(self) -> str:
        """The IRI minus :attr:`local_name` (the vocabulary prefix part)."""
        local = self.local_name
        if local and self.endswith(local):
            return str(self[: len(self) - len(local)])
        return str(self)

    def n3(self) -> str:
        """Serialize in N-Triples / Turtle syntax."""
        return f"<{self}>"


_bnode_lock = threading.Lock()
_bnode_counter = 0


def _next_bnode_id() -> str:
    global _bnode_counter
    with _bnode_lock:
        _bnode_counter += 1
        return f"b{_bnode_counter}"


class BNode(str):
    """A blank node: an existential, graph-local identifier.

    Constructed with an explicit label (e.g. from a parser) or with a fresh
    process-unique label when called without arguments.
    """

    __slots__ = ()

    def __new__(cls, label: str | None = None) -> "BNode":
        if label is None:
            label = _next_bnode_id()
        if not label:
            raise ValueError("BNode label must be non-empty")
        return str.__new__(cls, label)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BNode({str.__repr__(self)})"

    def n3(self) -> str:
        """Serialize in N-Triples / Turtle syntax."""
        return f"_:{self}"


# Well-known datatype IRIs used by Literal's value coercion. Kept as plain
# strings here to avoid a circular import with repro.rdf.vocab.
_XSD = "http://www.w3.org/2001/XMLSchema#"
XSD_STRING = _XSD + "string"
XSD_INTEGER = _XSD + "integer"
XSD_DECIMAL = _XSD + "decimal"
XSD_DOUBLE = _XSD + "double"
XSD_FLOAT = _XSD + "float"
XSD_BOOLEAN = _XSD + "boolean"
XSD_DATE = _XSD + "date"
XSD_DATETIME = _XSD + "dateTime"
XSD_GYEAR = _XSD + "gYear"
RDF_LANGSTRING = "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString"

_NUMERIC_DATATYPES = frozenset(
    {
        XSD_INTEGER,
        XSD_DECIMAL,
        XSD_DOUBLE,
        XSD_FLOAT,
        _XSD + "int",
        _XSD + "long",
        _XSD + "short",
        _XSD + "byte",
        _XSD + "nonNegativeInteger",
        _XSD + "positiveInteger",
        _XSD + "negativeInteger",
        _XSD + "nonPositiveInteger",
        _XSD + "unsignedInt",
        _XSD + "unsignedLong",
    }
)

_TEMPORAL_DATATYPES = frozenset({XSD_DATE, XSD_DATETIME, XSD_GYEAR, _XSD + "time"})


class Literal:
    """An RDF literal: a lexical form plus an optional datatype or language tag.

    ``Literal`` accepts native Python values and infers the XSD datatype::

        Literal(42)          # xsd:integer
        Literal(3.14)        # xsd:double
        Literal(True)        # xsd:boolean
        Literal("chat", lang="fr")   # rdf:langString

    The original Python value (when one can be derived) is exposed via
    :attr:`value`, which the exploration layers use for numeric/temporal
    analysis without re-parsing lexical forms.
    """

    __slots__ = ("lexical", "datatype", "lang", "_value")

    def __init__(
        self,
        value: object,
        datatype: str | None = None,
        lang: str | None = None,
    ) -> None:
        if lang is not None and datatype is not None:
            raise ValueError("a literal cannot have both a language tag and a datatype")
        if isinstance(value, bool):
            lexical = "true" if value else "false"
            datatype = datatype or XSD_BOOLEAN
        elif isinstance(value, int):
            lexical = str(value)
            datatype = datatype or XSD_INTEGER
        elif isinstance(value, float):
            lexical = repr(value)
            datatype = datatype or XSD_DOUBLE
        else:
            lexical = str(value)
        self.lexical: str = lexical
        self.lang: str | None = lang.lower() if lang else None
        if self.lang is not None:
            self.datatype: str = RDF_LANGSTRING
        else:
            self.datatype = datatype or XSD_STRING
        self._value: object = _coerce(self.lexical, self.datatype)

    @property
    def value(self) -> object:
        """The literal as a native Python value (str if uncoercible)."""
        return self._value

    @property
    def is_numeric(self) -> bool:
        return self.datatype in _NUMERIC_DATATYPES

    @property
    def is_temporal(self) -> bool:
        return self.datatype in _TEMPORAL_DATATYPES

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Literal):
            return NotImplemented
        return (
            self.lexical == other.lexical
            and self.datatype == other.datatype
            and self.lang == other.lang
        )

    def __hash__(self) -> int:
        return hash((self.lexical, self.datatype, self.lang))

    def __lt__(self, other: "Literal") -> bool:
        if not isinstance(other, Literal):
            return NotImplemented
        a, b = self._value, other._value
        if isinstance(a, (int, float)) and isinstance(b, (int, float)):
            return a < b
        return (self.lexical, self.datatype) < (other.lexical, other.datatype)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.lang:
            return f"Literal({self.lexical!r}, lang={self.lang!r})"
        return f"Literal({self.lexical!r}, datatype={self.datatype!r})"

    def __str__(self) -> str:
        return self.lexical

    def n3(self) -> str:
        """Serialize in N-Triples / Turtle syntax."""
        escaped = (
            self.lexical.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        if self.lang:
            return f'"{escaped}"@{self.lang}'
        if self.datatype and self.datatype != XSD_STRING:
            return f'"{escaped}"^^<{self.datatype}>'
        return f'"{escaped}"'


def _coerce(lexical: str, datatype: str) -> object:
    """Derive a native Python value from a lexical form, best effort."""
    try:
        if datatype in _NUMERIC_DATATYPES:
            if datatype in (XSD_DOUBLE, XSD_FLOAT, XSD_DECIMAL):
                return float(lexical)
            return int(lexical)
        if datatype == XSD_BOOLEAN:
            if lexical in ("true", "1"):
                return True
            if lexical in ("false", "0"):
                return False
            raise ValueError(lexical)
        if datatype == XSD_GYEAR:
            return int(lexical)
    except ValueError:
        return lexical
    return lexical


class Variable(str):
    """A SPARQL query variable (``?name``). Never appears in stored data."""

    __slots__ = ()

    def __new__(cls, name: str) -> "Variable":
        if not name or name.startswith("?") or name.startswith("$"):
            raise ValueError(f"variable name must be bare (no ?/$ prefix): {name!r}")
        return str.__new__(cls, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Variable({str.__repr__(self)})"

    def n3(self) -> str:
        return f"?{self}"


Term = Union[IRI, BNode, Literal]
Subject = Union[IRI, BNode]
Predicate = IRI
RDFObject = Term


class Triple(NamedTuple):
    """A single RDF statement."""

    subject: Subject
    predicate: Predicate
    object: RDFObject

    def n3(self) -> str:
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."


_TERM_ORDER = {BNode: 0, IRI: 1, Literal: 2}


def term_sort_key(term: Term) -> tuple:
    """Total order over heterogeneous terms (blank < IRI < literal).

    Used by ORDER BY in the SPARQL engine and by deterministic serializers.
    """
    if isinstance(term, BNode):
        return (0, str(term))
    if isinstance(term, IRI):
        return (1, str(term))
    if isinstance(term, Literal):
        value = term.value
        if isinstance(value, bool):
            value = int(value)
        if isinstance(value, (int, float)):
            return (2, 0, float(value), term.lexical)
        return (2, 1, term.lexical, str(term.datatype))
    raise TypeError(f"not an RDF term: {term!r}")
