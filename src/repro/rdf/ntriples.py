"""N-Triples parser and serializer (W3C RDF 1.1 N-Triples).

N-Triples is the line-oriented exchange syntax of the Web of Data: one
triple per line, fully spelled-out terms. Because it is line-oriented it is
the natural format for the *streaming/dynamic* setting the survey emphasizes
(Section 2): both the parser and serializer here are incremental generators,
so a billion-triple file can be loaded into a disk-backed store without ever
holding more than one line in memory.
"""

from __future__ import annotations

import re
from typing import IO, Iterable, Iterator

from .terms import IRI, BNode, Literal, Triple

__all__ = ["parse_ntriples", "parse_ntriples_line", "serialize_ntriples", "NTriplesError"]


class NTriplesError(ValueError):
    """Raised on malformed N-Triples input, with line information."""

    def __init__(self, message: str, lineno: int | None = None) -> None:
        if lineno is not None:
            message = f"line {lineno}: {message}"
        super().__init__(message)
        self.lineno = lineno


_IRI_RE = r"<([^<>\"\s]*)>"
_BNODE_RE = r"_:([A-Za-z0-9][A-Za-z0-9_.-]*)"
_STRING_RE = r'"((?:[^"\\]|\\.)*)"'
_LITERAL_RE = rf"{_STRING_RE}(?:\^\^{_IRI_RE}|@([A-Za-z]+(?:-[A-Za-z0-9]+)*))?"

_TRIPLE_RE = re.compile(
    rf"^\s*(?:{_IRI_RE}|{_BNODE_RE})\s+"  # subject: groups 1 (iri) / 2 (bnode)
    rf"{_IRI_RE}\s+"  # predicate: group 3
    rf"(?:{_IRI_RE}|{_BNODE_RE}|{_LITERAL_RE})"  # object: groups 4-8
    rf"\s*\.\s*(?:#.*)?$"
)

_ESCAPES = {
    "t": "\t",
    "b": "\b",
    "n": "\n",
    "r": "\r",
    "f": "\f",
    '"': '"',
    "'": "'",
    "\\": "\\",
}


def _unescape(text: str) -> str:
    """Resolve ``\\n``-style and ``\\uXXXX``/``\\UXXXXXXXX`` escapes."""
    if "\\" not in text:
        return text
    out: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        if i + 1 >= n:
            raise NTriplesError("dangling backslash in literal")
        esc = text[i + 1]
        if esc == "u":
            out.append(chr(int(text[i + 2 : i + 6], 16)))
            i += 6
        elif esc == "U":
            out.append(chr(int(text[i + 2 : i + 10], 16)))
            i += 10
        elif esc in _ESCAPES:
            out.append(_ESCAPES[esc])
            i += 2
        else:
            raise NTriplesError(f"unknown escape \\{esc}")
    return "".join(out)


def parse_ntriples_line(line: str, lineno: int | None = None) -> Triple | None:
    """Parse one N-Triples line; ``None`` for blank/comment lines."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    match = _TRIPLE_RE.match(line)
    if match is None:
        raise NTriplesError(f"malformed triple: {stripped[:120]!r}", lineno)
    s_iri, s_bnode, pred, o_iri, o_bnode, o_lex, o_dtype, o_lang = match.groups()
    subject = IRI(_unescape(s_iri)) if s_iri is not None else BNode(s_bnode)
    predicate = IRI(_unescape(pred))
    if o_iri is not None:
        obj: IRI | BNode | Literal = IRI(_unescape(o_iri))
    elif o_bnode is not None:
        obj = BNode(o_bnode)
    else:
        lexical = _unescape(o_lex if o_lex is not None else "")
        if o_lang:
            obj = Literal(lexical, lang=o_lang)
        elif o_dtype:
            obj = Literal(lexical, datatype=_unescape(o_dtype))
        else:
            obj = Literal(lexical)
    return Triple(subject, predicate, obj)


def parse_ntriples(source: str | IO[str]) -> Iterator[Triple]:
    """Stream triples out of an N-Triples document (string or file-like)."""
    # Split on '\n' only: str.splitlines() also breaks on exotic Unicode line
    # separators (\x0b,  , ...), which are legal *inside* literals.
    lines = source.split("\n") if isinstance(source, str) else source
    for lineno, line in enumerate(lines, start=1):
        try:
            triple = parse_ntriples_line(line, lineno)
        except NTriplesError:
            raise
        except ValueError as exc:
            raise NTriplesError(str(exc), lineno) from exc
        if triple is not None:
            yield triple


def serialize_ntriples(triples: Iterable[Triple], sort: bool = False) -> str:
    """Serialize triples to an N-Triples document.

    With ``sort=True`` the output is canonically ordered (useful for
    round-trip tests and diffing snapshots).
    """
    lines = [triple.n3() for triple in triples]
    if sort:
        lines.sort()
    return "\n".join(lines) + ("\n" if lines else "")
