"""RDF substrate: terms, graphs, namespaces, parsers, and vocabularies.

Everything in the toolkit — storage (:mod:`repro.store`), querying
(:mod:`repro.sparql`), and the exploration/visualization layers — is built
over the small data model defined here.
"""

from .graph import Graph, TriplePattern
from .namespace import Namespace, NamespaceManager, split_iri
from .ntriples import NTriplesError, parse_ntriples, serialize_ntriples
from .terms import (
    BNode,
    IRI,
    Literal,
    Predicate,
    RDFObject,
    Subject,
    Term,
    Triple,
    Variable,
    term_sort_key,
)
from .turtle import TurtleError, parse_turtle, serialize_turtle
from .vocab import (
    DCTERMS,
    DEFAULT_PREFIXES,
    FOAF,
    GEO,
    OWL,
    QB,
    RDF,
    RDFS,
    SKOS,
    VOID,
    XSD,
    default_namespace_manager,
)

__all__ = [
    "BNode",
    "DCTERMS",
    "DEFAULT_PREFIXES",
    "FOAF",
    "GEO",
    "Graph",
    "IRI",
    "Literal",
    "Namespace",
    "NamespaceManager",
    "NTriplesError",
    "OWL",
    "Predicate",
    "QB",
    "RDF",
    "RDFObject",
    "RDFS",
    "SKOS",
    "Subject",
    "Term",
    "Triple",
    "TriplePattern",
    "TurtleError",
    "VOID",
    "Variable",
    "XSD",
    "default_namespace_manager",
    "parse_ntriples",
    "parse_turtle",
    "serialize_ntriples",
    "serialize_turtle",
    "split_iri",
    "term_sort_key",
]
