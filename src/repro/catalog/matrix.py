"""Feature-matrix generation: regenerating the survey's Tables 1 and 2.

The matrices are *derived* from the structured catalog, so a test can
assert every cell and the benchmark can print the same rows the paper
shows. Taxonomy queries (counts per category/feature/year) back the
Discussion-section claims ("none of the systems, with the exceptions of
SynopsViz and VizBoard, adopt approximation techniques").
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from .data import ALL_SYSTEMS, TABLE1_SYSTEMS, TABLE2_SYSTEMS
from .model import Category, DataType, Feature, SystemRecord

__all__ = [
    "render_matrix",
    "render_table1",
    "render_table2",
    "systems_with_feature",
    "category_counts",
    "feature_adoption",
    "approximation_gap",
]

_TABLE1_FEATURES = (
    Feature.RECOMMENDATION,
    Feature.PREFERENCES,
    Feature.STATISTICS,
    Feature.SAMPLING,
    Feature.AGGREGATION,
    Feature.INCREMENTAL,
    Feature.DISK,
)

_TABLE2_FEATURES = (
    Feature.KEYWORD,
    Feature.FILTER,
    Feature.SAMPLING,
    Feature.AGGREGATION,
    Feature.INCREMENTAL,
    Feature.DISK,
)


def render_matrix(
    systems: Sequence[SystemRecord],
    features: Sequence[Feature],
    include_types: bool = False,
    check: str = "x",
) -> str:
    """A fixed-width text matrix: one row per system, one column per feature
    plus Year / (Data/Vis types) / Domain / App Type."""
    headers = ["System", "Year"]
    if include_types:
        headers += ["Data Types", "Vis. Types"]
    headers += [f.value for f in features] + ["Domain", "App Type"]

    rows: list[list[str]] = []
    for system in systems:
        row = [system.name, str(system.year)]
        if include_types:
            row += [system.data_type_code, system.vis_type_code]
        row += [check if system.has(f) else "" for f in features]
        row += [system.domain, system.app_type.value]
        rows.append(row)

    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_table1() -> str:
    """Table 1: Generic Visualization Systems, exactly the paper's rows."""
    return render_matrix(TABLE1_SYSTEMS, _TABLE1_FEATURES, include_types=True)


def render_table2() -> str:
    """Table 2: Graph-based Visualization Systems, exactly the paper's rows."""
    return render_matrix(TABLE2_SYSTEMS, _TABLE2_FEATURES, include_types=False)


# --------------------------------------------------------------------------- #
# Taxonomy queries (the Discussion section's aggregate claims)
# --------------------------------------------------------------------------- #


def systems_with_feature(
    feature: Feature, systems: Iterable[SystemRecord] = ALL_SYSTEMS
) -> list[SystemRecord]:
    return [s for s in systems if s.has(feature)]


def category_counts(systems: Iterable[SystemRecord] = ALL_SYSTEMS) -> dict[Category, int]:
    return dict(Counter(s.category for s in systems))


def feature_adoption(
    systems: Sequence[SystemRecord], features: Sequence[Feature]
) -> dict[Feature, float]:
    """Fraction of ``systems`` having each feature."""
    n = len(systems)
    if n == 0:
        return {f: 0.0 for f in features}
    return {
        f: sum(1 for s in systems if s.has(f)) / n for f in features
    }


def approximation_gap() -> dict[str, object]:
    """Quantify the Discussion's headline finding: among the generic
    systems, who adopts approximation (sampling/aggregation), incremental
    computation, or disk-based operation?"""
    def names(feature: Feature) -> list[str]:
        return [s.name for s in TABLE1_SYSTEMS if s.has(feature)]

    approximation = sorted(set(names(Feature.SAMPLING)) | set(names(Feature.AGGREGATION)))
    return {
        "generic_system_count": len(TABLE1_SYSTEMS),
        "approximation": approximation,
        "incremental": names(Feature.INCREMENTAL),
        "disk": names(Feature.DISK),
        "graph_systems_with_memory_independence": [
            s.name for s in TABLE2_SYSTEMS if s.has(Feature.DISK)
        ],
    }
