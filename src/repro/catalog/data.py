"""The catalog: every system the survey classifies.

Tables 1 and 2 are transcribed row-for-row (``TABLE1_SYSTEMS`` and
``TABLE2_SYSTEMS`` preserve the paper's row order); the prose-only systems
of Sections 3.1, 3.3, 3.5, and 3.6 are catalogued with their category so
the taxonomy queries cover the whole survey.
"""

from __future__ import annotations

from .model import AppType, Category, DataType, Feature, SystemRecord, VisType

__all__ = ["TABLE1_SYSTEMS", "TABLE2_SYSTEMS", "OTHER_SYSTEMS", "ALL_SYSTEMS"]

_N = DataType.NUMERIC
_T = DataType.TEMPORAL
_S = DataType.SPATIAL
_H = DataType.HIERARCHICAL
_G = DataType.GRAPH

_B = VisType.BUBBLE
_C = VisType.CHART
_CI = VisType.CIRCLES
_VG = VisType.GRAPH
_M = VisType.MAP
_P = VisType.PIE
_PC = VisType.PARALLEL_COORDINATES
_SC = VisType.SCATTER
_SG = VisType.STREAMGRAPH
_TM = VisType.TREEMAP
_TL = VisType.TIMELINE
_TR = VisType.TREE

_REC = Feature.RECOMMENDATION
_PREF = Feature.PREFERENCES
_STAT = Feature.STATISTICS
_SAMP = Feature.SAMPLING
_AGG = Feature.AGGREGATION
_INCR = Feature.INCREMENTAL
_DISK = Feature.DISK
_KEY = Feature.KEYWORD
_FIL = Feature.FILTER


def _generic(name, year, refs, data_types, vis_types, features=()):
    return SystemRecord(
        name=name,
        year=year,
        category=Category.GENERIC,
        references=tuple(refs),
        data_types=frozenset(data_types),
        vis_types=frozenset(vis_types),
        features=frozenset(features),
        domain="generic",
        app_type=AppType.WEB,
    )


# --------------------------------------------------------------------------- #
# Table 1: Generic Visualization Systems (11 rows, paper order)
# --------------------------------------------------------------------------- #

TABLE1_SYSTEMS: tuple[SystemRecord, ...] = (
    _generic("Rhizomer", 2006, ["30"], [_N, _T, _S, _H, _G], [_C, _M, _TM, _TL], [_REC]),
    _generic("VizBoard", 2009, ["135", "136", "109"], [_N, _H], [_C, _SC, _TM],
             [_REC, _PREF, _SAMP]),
    _generic("LODWheel", 2011, ["126"], [_N, _S, _G], [_C, _VG, _M, _P]),
    _generic("SemLens", 2011, ["59"], [_N], [_SC], [_PREF]),
    _generic("LDVM", 2013, ["29"], [_S, _H, _G], [_B, _M, _TM, _TR], [_REC]),
    _generic("Payola", 2013, ["84"], [_N, _T, _S, _H, _G],
             [_C, _CI, _VG, _M, _TM, _TL, _TR]),
    _generic("LDVizWiz", 2014, ["11"], [_S, _H, _G], [_M, _P, _TR], [_REC]),
    _generic("SynopsViz", 2014, ["26", "25"], [_N, _T, _H], [_C, _P, _TM, _TL],
             [_REC, _PREF, _STAT, _AGG, _INCR, _DISK]),
    _generic("Vis Wizard", 2014, ["131"], [_N, _T, _S], [_B, _C, _M, _P, _PC, _SG],
             [_REC, _PREF]),
    _generic("LinkDaViz", 2015, ["129"], [_N, _T, _S], [_B, _C, _SC, _M, _P],
             [_REC, _PREF]),
    _generic("ViCoMap", 2015, ["112"], [_N, _T, _S], [_M], [_STAT]),
)


def _graph_system(name, year, refs, features, domain="generic", app=AppType.DESKTOP):
    return SystemRecord(
        name=name,
        year=year,
        category=Category.ONTOLOGY if domain == "ontology" else Category.GRAPH,
        references=tuple(refs),
        data_types=frozenset([_G]),
        vis_types=frozenset([_VG]),
        features=frozenset(features),
        domain=domain,
        app_type=app,
    )


# --------------------------------------------------------------------------- #
# Table 2: Graph-based Visualization Systems (21 rows, paper order)
# --------------------------------------------------------------------------- #

TABLE2_SYSTEMS: tuple[SystemRecord, ...] = (
    _graph_system("RDF-Gravity", 2003, ["9n"], [_KEY, _FIL]),
    _graph_system("IsaViz", 2003, ["108"], [_KEY, _FIL]),
    _graph_system("RDF graph visualizer", 2004, ["115"], [_KEY]),
    _graph_system("GrOWL", 2007, ["89"], [_KEY, _FIL, _SAMP], domain="ontology"),
    _graph_system("NodeTrix", 2007, ["61"], [_AGG], domain="ontology"),
    _graph_system("PGV", 2007, ["36"], [_INCR, _DISK]),
    _graph_system("Fenfire", 2008, ["54"], []),
    _graph_system("Gephi", 2009, ["15"], [_FIL, _SAMP, _AGG]),
    _graph_system("Trisolda", 2010, ["38"], [_SAMP, _AGG, _INCR]),
    _graph_system("Cytospace", 2010, ["127"], [_KEY, _FIL, _SAMP, _AGG, _DISK]),
    _graph_system("FlexViz", 2010, ["45"], [_KEY, _FIL], domain="ontology", app=AppType.WEB),
    _graph_system("RelFinder", 2010, ["58"], [], app=AppType.WEB),
    _graph_system("ZoomRDF", 2010, ["142"], [_SAMP, _AGG, _INCR]),
    _graph_system("KC-Viz", 2011, ["104"], [_SAMP], domain="ontology"),
    _graph_system("LODWheel", 2011, ["126"], [_FIL, _AGG], app=AppType.WEB),
    _graph_system("GLOW", 2012, ["64"], [_SAMP, _AGG], domain="ontology"),
    _graph_system("Lodlive", 2012, ["31"], [_KEY], app=AppType.WEB),
    _graph_system("OntoTrix", 2013, ["14"], [_SAMP, _AGG], domain="ontology"),
    _graph_system("LODeX", 2014, ["19"], [_SAMP, _AGG], app=AppType.WEB),
    _graph_system("VOWL 2", 2014, ["100", "99"], [], domain="ontology", app=AppType.WEB),
    _graph_system("graphVizdb", 2015, ["23", "22"], [_KEY, _FIL, _SAMP, _DISK], app=AppType.WEB),
)


def _other(name, year, refs, category, domain="generic", app=AppType.WEB, notes=""):
    return SystemRecord(
        name=name,
        year=year,
        category=category,
        references=tuple(refs),
        domain=domain,
        app_type=app,
        notes=notes,
    )


# --------------------------------------------------------------------------- #
# Prose-only systems (Sections 3.1, 3.3, 3.5, 3.6)
# --------------------------------------------------------------------------- #

OTHER_SYSTEMS: tuple[SystemRecord, ...] = (
    # §3.1 browsers & exploratory systems
    _other("Haystack", 2004, ["111"], Category.BROWSER, notes="stylesheet-based presentation"),
    _other("Disco", 2007, ["6n"], Category.BROWSER, notes="property-value HTML tables"),
    _other("Noadster", 2005, ["113"], Category.BROWSER, notes="property-based clustering"),
    _other("Piggy Bank", 2005, ["66"], Category.BROWSER, notes="browser plug-in, HTML→RDF"),
    _other("LESS", 2010, ["13"], Category.BROWSER, notes="user-defined templates"),
    _other("Tabulator", 2006, ["21"], Category.BROWSER, notes="maps and timelines too"),
    _other("LENA", 2008, ["87"], Category.BROWSER, notes="SPARQL-expressed view criteria"),
    _other("Visor", 2011, ["110"], Category.BROWSER, notes="multi-pivot exploration"),
    _other("/facet", 2006, ["62"], Category.BROWSER, notes="faceted navigation"),
    _other("Humboldt", 2008, ["86"], Category.BROWSER, notes="faceted navigation"),
    _other("gFacet", 2010, ["57"], Category.BROWSER, notes="graph-shaped facets"),
    _other("Explorator", 2009, ["7"], Category.BROWSER, notes="search + facets"),
    _other("VisiNav", 2010, ["53"], Category.BROWSER,
           notes="keyword search, object focus, path traversal, facets"),
    _other("Information Workbench", 2011, ["52"], Category.BROWSER,
           notes="self-service Linked Data platform"),
    _other("Marbles", 2009, ["7n"], Category.BROWSER, notes="Fresnel-based formatting"),
    _other("URI Burner", 2010, ["8n"], Category.BROWSER, app=AppType.SERVICE,
           notes="on-demand resource descriptions"),
    _other("Balloon Synopsis", 2014, ["117"], Category.GENERIC,
           notes="node-centric tile design, federated enhancement"),
    # §3.3 domain / vocabulary / device-specific
    _other("Map4rdf", 2012, ["92"], Category.DOMAIN, domain="geo-spatial"),
    _other("Facete", 2014, ["122"], Category.DOMAIN, domain="geo-spatial"),
    _other("SexTant", 2013, ["20"], Category.DOMAIN, domain="time-evolving geo-spatial"),
    _other("Spacetime", 2014, ["133"], Category.DOMAIN, domain="time-evolving geo-spatial"),
    _other("LinkedGeoData Browser", 2012, ["121"], Category.DOMAIN, domain="geo-spatial"),
    _other("DBpedia Atlas", 2015, ["132"], Category.DOMAIN, domain="geo-spatial"),
    _other("VISU", 2013, ["6"], Category.DOMAIN, domain="linked university data"),
    _other("CubeViz", 2013, ["43", "114"], Category.DOMAIN, domain="statistical (QB)"),
    _other("Payola Data Cube", 2014, ["60"], Category.DOMAIN, domain="statistical (QB)"),
    _other("OpenCube Toolkit", 2014, ["75"], Category.DOMAIN, domain="statistical (QB)"),
    _other("LDCE", 2014, ["79"], Category.DOMAIN, domain="statistical (QB)"),
    _other("Linked Statistical Maps", 2014, ["106"], Category.DOMAIN, domain="statistical (QB)"),
    _other("DBpedia Mobile", 2009, ["18"], Category.DOMAIN, domain="location-aware",
           app=AppType.MOBILE),
    _other("Who's Who", 2011, ["32"], Category.DOMAIN, domain="mobile exploration",
           app=AppType.MOBILE),
    # §3.5 ontology systems not in Table 2
    _other("CropCircles", 2006, ["137"], Category.ONTOLOGY, domain="ontology",
           app=AppType.DESKTOP, notes="geometric containment"),
    _other("Knoocks", 2008, ["88"], Category.ONTOLOGY, domain="ontology",
           app=AppType.DESKTOP, notes="containment + node-link hybrid"),
    _other("OntoGraf", 2010, ["10n"], Category.ONTOLOGY, domain="ontology",
           app=AppType.DESKTOP),
    _other("OWLViz", 2010, ["11n"], Category.ONTOLOGY, domain="ontology",
           app=AppType.DESKTOP),
    # §3.6 libraries
    _other("Sgvizler", 2012, ["120"], Category.LIBRARY, app=AppType.LIBRARY,
           notes="SPARQL SELECT in HTML attributes, Google Charts output"),
    _other("Visualbox", 2013, ["50"], Category.LIBRARY, app=AppType.LIBRARY,
           notes="SPARQL debugging + 14 visualization templates"),
)

# Table 2 re-lists LODWheel (it appears in both tables in the paper), so the
# combined catalog dedups by (name, category).
ALL_SYSTEMS: tuple[SystemRecord, ...] = TABLE1_SYSTEMS + TABLE2_SYSTEMS + OTHER_SYSTEMS
