"""The survey's system-classification model.

Section 3 classifies WoD exploration/visualization systems into six
categories and compares them along feature dimensions (Tables 1 and 2).
This module defines that taxonomy as data types so the catalog
(:mod:`repro.catalog.data`) is machine-checkable and the matrices
(:mod:`repro.catalog.matrix`) are *generated*, not hand-copied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = ["Category", "DataType", "VisType", "Feature", "AppType", "SystemRecord"]


class Category(Enum):
    """The survey's six system categories (Sections 3.1-3.6)."""

    BROWSER = "Browsers & exploratory systems"
    GENERIC = "Generic visualization systems"
    DOMAIN = "Domain, vocabulary & device-specific systems"
    GRAPH = "Graph-based visualization systems"
    ONTOLOGY = "Ontology visualization systems"
    LIBRARY = "Visualization libraries"


class DataType(Enum):
    """Table 1's Data Types legend."""

    NUMERIC = "N"
    TEMPORAL = "T"
    SPATIAL = "S"
    HIERARCHICAL = "H"
    GRAPH = "G"


class VisType(Enum):
    """Table 1's Vis. Types legend."""

    BUBBLE = "B"
    CHART = "C"
    CIRCLES = "CI"
    GRAPH = "G"
    MAP = "M"
    PIE = "P"
    PARALLEL_COORDINATES = "PC"
    SCATTER = "S"
    STREAMGRAPH = "SG"
    TREEMAP = "T"
    TIMELINE = "TL"
    TREE = "TR"


class Feature(Enum):
    """The boolean feature columns of Tables 1 and 2."""

    RECOMMENDATION = "Recomm."
    PREFERENCES = "Preferences"
    STATISTICS = "Statistics"
    SAMPLING = "Sampling"
    AGGREGATION = "Aggregation"
    INCREMENTAL = "Incr."
    DISK = "Disk"
    KEYWORD = "Keyword"
    FILTER = "Filter"


class AppType(Enum):
    WEB = "Web"
    DESKTOP = "Desktop"
    MOBILE = "Mobile"
    SERVICE = "Service"
    LIBRARY = "Library"


@dataclass(frozen=True)
class SystemRecord:
    """One surveyed system with its published capabilities."""

    name: str
    year: int
    category: Category
    references: tuple[str, ...] = ()  # the survey's citation keys
    data_types: frozenset[DataType] = frozenset()
    vis_types: frozenset[VisType] = frozenset()
    features: frozenset[Feature] = frozenset()
    domain: str = "generic"
    app_type: AppType = AppType.WEB
    notes: str = ""

    def has(self, feature: Feature) -> bool:
        return feature in self.features

    def supports(self, data_type: DataType) -> bool:
        return data_type in self.data_types

    @property
    def data_type_code(self) -> str:
        """Table 1 cell form, e.g. ``N, T, S, H, G``."""
        order = [DataType.NUMERIC, DataType.TEMPORAL, DataType.SPATIAL,
                 DataType.HIERARCHICAL, DataType.GRAPH]
        return ", ".join(d.value for d in order if d in self.data_types)

    @property
    def vis_type_code(self) -> str:
        """Table 1 cell form, alphabetical as printed, e.g. ``C, M, T, TL``."""
        return ", ".join(sorted(v.value for v in self.vis_types))
