"""The survey's systems catalog and feature matrices (Tables 1 & 2)."""

from .data import ALL_SYSTEMS, OTHER_SYSTEMS, TABLE1_SYSTEMS, TABLE2_SYSTEMS
from .matrix import (
    approximation_gap,
    category_counts,
    feature_adoption,
    render_matrix,
    render_table1,
    render_table2,
    systems_with_feature,
)
from .model import AppType, Category, DataType, Feature, SystemRecord, VisType

__all__ = [
    "ALL_SYSTEMS",
    "AppType",
    "Category",
    "DataType",
    "Feature",
    "OTHER_SYSTEMS",
    "SystemRecord",
    "TABLE1_SYSTEMS",
    "TABLE2_SYSTEMS",
    "VisType",
    "approximation_gap",
    "category_counts",
    "feature_adoption",
    "render_matrix",
    "render_table1",
    "render_table2",
    "systems_with_feature",
]
