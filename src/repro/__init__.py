"""repro — scalable exploration and visualization for the Web of Big Linked Data.

A from-scratch reproduction of the system landscape surveyed by Bikakis &
Sellis, "Exploration and Visualization in the Web of Big Linked Data: A
Survey of the State of the Art" (LWDM @ EDBT 2016).

Subpackages
-----------
``repro.rdf``        RDF terms, graphs, parsers, vocabularies.
``repro.store``      Indexed, dictionary-encoded, and disk-backed triple stores.
``repro.sparql``     SPARQL-subset query engine.
``repro.hierarchy``  HETree hierarchical aggregation (SynopsViz model).
``repro.approx``     Sampling, binning, M4, progressive approximation.
``repro.graph``      Graph layouts, clustering, abstraction, bundling, viewports.
``repro.viz``        LDVM pipeline, chart/treemap/map/timeline models, SVG.
``repro.recommend``  Visualization recommendation.
``repro.explore``    Faceted browsing, keyword search, sessions, preferences.
``repro.cube``       RDF Data Cube (QB) analytics.
``repro.ontology``   Ontology extraction and visualization views.
``repro.cache``      Result caches and tile prefetching.
``repro.catalog``    The survey's systems catalog and feature matrices.
``repro.workload``   Synthetic LOD workload generators.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
