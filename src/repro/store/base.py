"""The triple-source protocol shared by every store implementation.

Higher layers (SPARQL, facets, hierarchies, graph views) are written against
this minimal protocol, so an in-memory :class:`~repro.rdf.graph.Graph`, a
dictionary-encoded :class:`~repro.store.memory.MemoryStore`, and a
disk-backed :class:`~repro.store.paged.PagedTripleStore` are interchangeable
— the survey's "dynamic, billion-object" requirement (Section 2) is then a
matter of choosing the store, not rewriting the exploration stack.
"""

from __future__ import annotations

from typing import Iterator, Protocol, runtime_checkable

from ..rdf.graph import TriplePattern
from ..rdf.terms import Triple

__all__ = ["TripleSource"]


@runtime_checkable
class TripleSource(Protocol):
    """Anything that can answer triple-pattern queries."""

    def triples(self, pattern: TriplePattern = (None, None, None)) -> Iterator[Triple]:
        """Yield every triple matching ``pattern`` (``None`` = wildcard)."""
        ...

    def count(self, pattern: TriplePattern = (None, None, None)) -> int:
        """Number of triples matching ``pattern``."""
        ...

    def __len__(self) -> int: ...
