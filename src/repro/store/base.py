"""The triple-source protocol shared by every store implementation.

Higher layers (SPARQL, facets, hierarchies, graph views) are written against
this minimal protocol, so an in-memory :class:`~repro.rdf.graph.Graph`, a
dictionary-encoded :class:`~repro.store.memory.MemoryStore`, and a
disk-backed :class:`~repro.store.paged.PagedTripleStore` are interchangeable
— the survey's "dynamic, billion-object" requirement (Section 2) is then a
matter of choosing the store, not rewriting the exploration stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import TYPE_CHECKING, Iterator, Mapping, Protocol, runtime_checkable

from ..rdf.graph import TriplePattern
from ..rdf.terms import Predicate, Triple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    import numpy as np

    from .dictionary import TermDictionary

__all__ = [
    "TripleSource",
    "IdScanSource",
    "StoreStatistics",
    "StatisticsSnapshot",
    "as_id_scan_source",
    "compute_statistics",
    "DEFAULT_BATCH_SIZE",
]

#: Default number of id triples per scan batch. Sized so one batch of three
#: int64 columns stays comfortably inside L2 while amortizing per-batch
#: Python overhead across thousands of rows.
DEFAULT_BATCH_SIZE = 4096


@runtime_checkable
class TripleSource(Protocol):
    """Anything that can answer triple-pattern queries."""

    def triples(self, pattern: TriplePattern = (None, None, None)) -> Iterator[Triple]:
        """Yield every triple matching ``pattern`` (``None`` = wildcard)."""
        ...

    def count(self, pattern: TriplePattern = (None, None, None)) -> int:
        """Number of triples matching ``pattern``."""
        ...

    def __len__(self) -> int: ...


@runtime_checkable
class IdScanSource(Protocol):
    """Stores that can answer pattern queries over dictionary-encoded ids.

    This is the capability the vectorized execution engine
    (:mod:`repro.sparql.vectorized`) probes for: instead of pulling decoded
    :class:`~repro.rdf.terms.Triple` objects one at a time, it pulls
    ``(n, 3)`` int64 numpy arrays of id triples and decodes only at batch
    boundaries. Sources that cannot expose id runs (federation views,
    remote endpoints) simply don't implement it and execution falls back to
    the streaming iterator path — use :func:`as_id_scan_source` to probe.

    ``id_pattern`` follows ``TriplePattern`` shape with ids: ``None`` is a
    wildcard, an ``int`` is a bound dictionary id.
    """

    @property
    def dictionary(self) -> "TermDictionary": ...

    def match_id_batches(
        self,
        s: int | None,
        p: int | None,
        o: int | None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> Iterator["np.ndarray"]:
        """Yield matching id triples as ``(n, 3)`` int64 arrays.

        Batches stream: producing the first batch must not require
        materializing the full match set, so a ``LIMIT``-ed consumer
        touches a bounded number of batches.
        """
        ...

    def distinct_ids(
        self, s: int | None, p: int | None, o: int | None, position: int
    ) -> "np.ndarray":
        """Sorted unique ids at ``position`` (0=s, 1=p, 2=o) over matches.

        This is the sorted-run primitive leapfrog-style worst-case-optimal
        joins intersect; implementations should serve the common shapes
        (bound predicate and/or one bound endpoint) from their indexes.
        """
        ...


def as_id_scan_source(store: object) -> "IdScanSource | None":
    """Capability probe: the store itself if it can serve id scans.

    Checks for the full method surface plus a term dictionary rather than
    relying on ``isinstance`` protocol checks alone, so wrapper stores
    (federation, remote endpoints, test doubles) fall back cleanly by
    simply not exposing the attributes.
    """
    if (
        hasattr(store, "match_id_batches")
        and hasattr(store, "distinct_ids")
        and getattr(store, "dictionary", None) is not None
    ):
        return store  # type: ignore[return-value]
    return None


@dataclass(frozen=True)
class StatisticsSnapshot:
    """Precomputed store statistics for plan-time cardinality estimation.

    A snapshot is cheap to read (plain attribute access, no index scans), so
    the SPARQL optimizer can cost every candidate join order without issuing
    a single ``count()``/``triples()`` call against the store — the design
    the survey's Section 4 asks of interactive-speed engines.
    """

    triple_count: int
    distinct_subjects: int
    distinct_predicates: int
    distinct_objects: int
    predicate_cardinalities: Mapping[Predicate, int] = field(default_factory=dict)
    #: Distinct objects per predicate — the denominator for equality
    #: selectivity on ``?s <p> <o>`` shapes. Indexed stores fill it exactly
    #: from their POS index; the scan fallback estimates it with one HLL
    #: sketch per predicate (:mod:`repro.approx.sketch.hll`), so the figure
    #: may carry that sketch's ~2% relative error.
    predicate_distinct_objects: Mapping[Predicate, int] = field(default_factory=dict)

    def predicate_count(self, predicate: Predicate) -> int:
        """Triples with this predicate (0 if the predicate is unknown)."""
        return self.predicate_cardinalities.get(predicate, 0)

    def predicate_distinct_object_count(self, predicate: Predicate) -> int:
        """Distinct objects under this predicate (0 if unknown/unfilled)."""
        return self.predicate_distinct_objects.get(predicate, 0)

    @property
    def avg_subject_degree(self) -> float:
        return self.triple_count / self.distinct_subjects if self.distinct_subjects else 0.0

    @property
    def avg_object_degree(self) -> float:
        return self.triple_count / self.distinct_objects if self.distinct_objects else 0.0


@runtime_checkable
class StoreStatistics(Protocol):
    """Stores that can summarize themselves without per-query index scans."""

    def statistics(self) -> StatisticsSnapshot:
        """Return (possibly cached) statistics about the store's contents."""
        ...


#: Register width of the per-predicate HLL sketches ``compute_statistics``
#: uses for distinct-object counts: 2^10 registers = 1 KiB per predicate,
#: ~3.2% relative standard error — selectivity-estimation accuracy at a
#: bounded cost even for stores with thousands of predicates.
_DISTINCT_SKETCH_PRECISION = 10


def compute_statistics(source: TripleSource) -> StatisticsSnapshot:
    """Build a snapshot with one full scan (fallback for plain sources).

    Global distinct counts are exact (one set each); the *per-predicate*
    distinct-object counts are HLL estimates — exact per-predicate sets
    would cost memory proportional to the data, while one 1 KiB sketch per
    predicate keeps the scan's footprint bounded by the schema size.
    """
    from ..approx.sketch.hll import HllSketch, hash_term

    subjects: set = set()
    predicates: dict = {}
    objects: set = set()
    object_sketches: dict = {}
    total = 0
    for s, p, o in source.triples((None, None, None)):
        total += 1
        subjects.add(s)
        objects.add(o)
        predicates[p] = predicates.get(p, 0) + 1
        sketch = object_sketches.get(p)
        if sketch is None:
            sketch = object_sketches[p] = HllSketch(_DISTINCT_SKETCH_PRECISION)
        sketch.add_hash(hash_term(repr(o)))
    return StatisticsSnapshot(
        triple_count=total,
        distinct_subjects=len(subjects),
        distinct_predicates=len(predicates),
        distinct_objects=len(objects),
        predicate_cardinalities=MappingProxyType(predicates),
        predicate_distinct_objects=MappingProxyType(
            {
                p: int(round(sketch.cardinality()))
                for p, sketch in object_sketches.items()
            }
        ),
    )
