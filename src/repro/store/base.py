"""The triple-source protocol shared by every store implementation.

Higher layers (SPARQL, facets, hierarchies, graph views) are written against
this minimal protocol, so an in-memory :class:`~repro.rdf.graph.Graph`, a
dictionary-encoded :class:`~repro.store.memory.MemoryStore`, and a
disk-backed :class:`~repro.store.paged.PagedTripleStore` are interchangeable
— the survey's "dynamic, billion-object" requirement (Section 2) is then a
matter of choosing the store, not rewriting the exploration stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Iterator, Mapping, Protocol, runtime_checkable

from ..rdf.graph import TriplePattern
from ..rdf.terms import Predicate, Triple

__all__ = [
    "TripleSource",
    "StoreStatistics",
    "StatisticsSnapshot",
    "compute_statistics",
]


@runtime_checkable
class TripleSource(Protocol):
    """Anything that can answer triple-pattern queries."""

    def triples(self, pattern: TriplePattern = (None, None, None)) -> Iterator[Triple]:
        """Yield every triple matching ``pattern`` (``None`` = wildcard)."""
        ...

    def count(self, pattern: TriplePattern = (None, None, None)) -> int:
        """Number of triples matching ``pattern``."""
        ...

    def __len__(self) -> int: ...


@dataclass(frozen=True)
class StatisticsSnapshot:
    """Precomputed store statistics for plan-time cardinality estimation.

    A snapshot is cheap to read (plain attribute access, no index scans), so
    the SPARQL optimizer can cost every candidate join order without issuing
    a single ``count()``/``triples()`` call against the store — the design
    the survey's Section 4 asks of interactive-speed engines.
    """

    triple_count: int
    distinct_subjects: int
    distinct_predicates: int
    distinct_objects: int
    predicate_cardinalities: Mapping[Predicate, int] = field(default_factory=dict)

    def predicate_count(self, predicate: Predicate) -> int:
        """Triples with this predicate (0 if the predicate is unknown)."""
        return self.predicate_cardinalities.get(predicate, 0)

    @property
    def avg_subject_degree(self) -> float:
        return self.triple_count / self.distinct_subjects if self.distinct_subjects else 0.0

    @property
    def avg_object_degree(self) -> float:
        return self.triple_count / self.distinct_objects if self.distinct_objects else 0.0


@runtime_checkable
class StoreStatistics(Protocol):
    """Stores that can summarize themselves without per-query index scans."""

    def statistics(self) -> StatisticsSnapshot:
        """Return (possibly cached) statistics about the store's contents."""
        ...


def compute_statistics(source: TripleSource) -> StatisticsSnapshot:
    """Build a snapshot with one full scan (fallback for plain sources)."""
    subjects: set = set()
    predicates: dict = {}
    objects: set = set()
    total = 0
    for s, p, o in source.triples((None, None, None)):
        total += 1
        subjects.add(s)
        objects.add(o)
        predicates[p] = predicates.get(p, 0) + 1
    return StatisticsSnapshot(
        triple_count=total,
        distinct_subjects=len(subjects),
        distinct_predicates=len(predicates),
        distinct_objects=len(objects),
        predicate_cardinalities=MappingProxyType(predicates),
    )
