"""Dictionary-encoded in-memory triple store.

A step up from :class:`repro.rdf.graph.Graph`: terms are interned once in a
:class:`~repro.store.dictionary.TermDictionary` and the three access-path
indexes hold integer ids only. This makes large graphs several times
smaller and pattern matching allocation-free until decode time, which is
what the survey's "limited resources (e.g., laptops)" requirement
(Section 2) asks of an exploration substrate.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from types import MappingProxyType

from ..rdf.graph import TriplePattern
from ..rdf.terms import Triple
from .base import StatisticsSnapshot
from .dictionary import TermDictionary

__all__ = ["MemoryStore"]

_IdTriple = tuple[int, int, int]


class MemoryStore:
    """Indexed id-triple store implementing the TripleSource protocol."""

    def __init__(self, triples: Iterable[Triple] | None = None) -> None:
        self.dictionary = TermDictionary()
        self._spo: dict[int, dict[int, set[int]]] = defaultdict(lambda: defaultdict(set))
        self._pos: dict[int, dict[int, set[int]]] = defaultdict(lambda: defaultdict(set))
        self._osp: dict[int, dict[int, set[int]]] = defaultdict(lambda: defaultdict(set))
        self._size = 0
        self._stats: StatisticsSnapshot | None = None
        if triples is not None:
            self.add_all(triples)

    # -- mutation ----------------------------------------------------------

    def add(self, triple: Triple) -> bool:
        """Insert a triple; returns True if the store changed."""
        s, p, o = self.dictionary.encode_triple(triple)
        objects = self._spo[s][p]
        if o in objects:
            return False
        objects.add(o)
        self._pos[p][o].add(s)
        self._osp[o][s].add(p)
        self._size += 1
        self._stats = None
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Bulk insert (streaming-friendly); returns number added."""
        return sum(1 for t in triples if self.add(t))

    def remove(self, pattern: TriplePattern) -> int:
        """Remove all triples matching ``pattern``; returns removal count."""
        victims = list(self._match_ids(*self._encode_pattern(pattern)))
        for s, p, o in victims:
            self._spo[s][p].discard(o)
            self._pos[p][o].discard(s)
            self._osp[o][s].discard(p)
        self._size -= len(victims)
        if victims:
            self._stats = None
        return len(victims)

    # -- pattern matching ---------------------------------------------------

    def _encode_pattern(
        self, pattern: TriplePattern
    ) -> tuple[int | None, int | None, int | None] | None:
        """Translate a term pattern into an id pattern.

        Returns ``None`` when a bound term is not in the dictionary — the
        answer is then provably empty without touching any index.
        """
        ids: list[int | None] = []
        for term in pattern:
            if term is None:
                ids.append(None)
            else:
                term_id = self.dictionary.lookup(term)
                if term_id is None:
                    return None
                ids.append(term_id)
        return ids[0], ids[1], ids[2]

    def _match_ids(
        self, s: int | None, p: int | None, o: int | None
    ) -> Iterator[_IdTriple]:
        if s is not None:
            by_pred = self._spo.get(s)
            if not by_pred:
                return
            preds = (p,) if p is not None else tuple(by_pred)
            for pred in preds:
                objects = by_pred.get(pred)
                if not objects:
                    continue
                if o is not None:
                    if o in objects:
                        yield (s, pred, o)
                else:
                    for obj in objects:
                        yield (s, pred, obj)
            return
        if p is not None:
            by_obj = self._pos.get(p)
            if not by_obj:
                return
            objs = (o,) if o is not None else tuple(by_obj)
            for obj in objs:
                for subj in by_obj.get(obj, ()):
                    yield (subj, p, obj)
            return
        if o is not None:
            by_subj = self._osp.get(o)
            if not by_subj:
                return
            for subj, preds in by_subj.items():
                for pred in preds:
                    yield (subj, pred, o)
            return
        for subj, by_pred in self._spo.items():
            for pred, objects in by_pred.items():
                for obj in objects:
                    yield (subj, pred, obj)

    def triples(self, pattern: TriplePattern = (None, None, None)) -> Iterator[Triple]:
        """Yield matching triples, decoding ids lazily."""
        encoded = self._encode_pattern(pattern)
        if encoded is None:
            return
        decode = self.dictionary.decode_triple
        for ids in self._match_ids(*encoded):
            yield decode(ids)

    def count(self, pattern: TriplePattern = (None, None, None)) -> int:
        encoded = self._encode_pattern(pattern)
        if encoded is None:
            return 0
        s, p, o = encoded
        if s is None and p is None and o is None:
            return self._size
        if s is not None and p is None and o is None:
            return sum(len(objs) for objs in self._spo.get(s, {}).values())
        if p is not None and s is None and o is None:
            return sum(len(subjs) for subjs in self._pos.get(p, {}).values())
        if o is not None and s is None and p is None:
            return sum(len(preds) for preds in self._osp.get(o, {}).values())
        return sum(1 for _ in self._match_ids(s, p, o))

    def __contains__(self, triple: Triple) -> bool:
        encoded = self._encode_pattern((triple[0], triple[1], triple[2]))
        if encoded is None:
            return False
        s, p, o = encoded
        return o in self._spo.get(s, {}).get(p, set())

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    # -- statistics (used by the SPARQL optimizer) ---------------------------

    def predicate_cardinality(self, predicate_id: int) -> int:
        """Number of triples with the given predicate id."""
        return sum(len(subjs) for subjs in self._pos.get(predicate_id, {}).values())

    def statistics(self) -> StatisticsSnapshot:
        """Cached :class:`StatisticsSnapshot`; recomputed after mutations.

        Computed straight from the id indexes (empty index entries left
        behind by :meth:`remove` are skipped), decoded once per predicate.
        """
        if self._stats is None:
            decode = self.dictionary.decode
            predicate_cards = {
                decode(pid): card
                for pid, by_obj in self._pos.items()
                if (card := sum(len(subjs) for subjs in by_obj.values()))
            }
            self._stats = StatisticsSnapshot(
                triple_count=self._size,
                distinct_subjects=sum(
                    1
                    for by_pred in self._spo.values()
                    if any(objs for objs in by_pred.values())
                ),
                distinct_predicates=len(predicate_cards),
                distinct_objects=sum(
                    1
                    for by_subj in self._osp.values()
                    if any(preds for preds in by_subj.values())
                ),
                predicate_cardinalities=MappingProxyType(predicate_cards),
            )
        return self._stats

    def id_triples(self) -> Iterator[_IdTriple]:
        """Raw id triples (for bulk exports to the paged store)."""
        return self._match_ids(None, None, None)
