"""Dictionary-encoded in-memory triple store.

A step up from :class:`repro.rdf.graph.Graph`: terms are interned once in a
:class:`~repro.store.dictionary.TermDictionary` and the three access-path
indexes hold integer ids only. This makes large graphs several times
smaller and pattern matching allocation-free until decode time, which is
what the survey's "limited resources (e.g., laptops)" requirement
(Section 2) asks of an exploration substrate.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from types import MappingProxyType

import numpy as np

from ..rdf.graph import TriplePattern
from ..rdf.terms import Triple
from .base import DEFAULT_BATCH_SIZE, StatisticsSnapshot
from .dictionary import TermDictionary

__all__ = ["MemoryStore"]

_IdTriple = tuple[int, int, int]

_EMPTY_IDS = np.empty(0, dtype=np.int64)


def _sorted_ids(ids) -> np.ndarray:
    """A sorted int64 array from any iterable of ids (snapshots its input)."""
    array = np.fromiter(ids, dtype=np.int64) if not isinstance(ids, np.ndarray) else ids
    if array.size == 0:
        return _EMPTY_IDS
    array.sort()
    return array


class MemoryStore:
    """Indexed id-triple store implementing the TripleSource protocol."""

    def __init__(self, triples: Iterable[Triple] | None = None) -> None:
        self.dictionary = TermDictionary()
        self._spo: dict[int, dict[int, set[int]]] = defaultdict(lambda: defaultdict(set))
        self._pos: dict[int, dict[int, set[int]]] = defaultdict(lambda: defaultdict(set))
        self._osp: dict[int, dict[int, set[int]]] = defaultdict(lambda: defaultdict(set))
        self._size = 0
        self._stats: StatisticsSnapshot | None = None
        if triples is not None:
            self.add_all(triples)

    # -- mutation ----------------------------------------------------------

    def add(self, triple: Triple) -> bool:
        """Insert a triple; returns True if the store changed."""
        s, p, o = self.dictionary.encode_triple(triple)
        objects = self._spo[s][p]
        if o in objects:
            return False
        objects.add(o)
        self._pos[p][o].add(s)
        self._osp[o][s].add(p)
        self._size += 1
        self._stats = None
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Bulk insert (streaming-friendly); returns number added."""
        return sum(1 for t in triples if self.add(t))

    def remove(self, pattern: TriplePattern) -> int:
        """Remove all triples matching ``pattern``; returns removal count."""
        victims = list(self._match_ids(*self._encode_pattern(pattern)))
        for s, p, o in victims:
            self._spo[s][p].discard(o)
            self._pos[p][o].discard(s)
            self._osp[o][s].discard(p)
        self._size -= len(victims)
        if victims:
            self._stats = None
        return len(victims)

    # -- pattern matching ---------------------------------------------------

    def _encode_pattern(
        self, pattern: TriplePattern
    ) -> tuple[int | None, int | None, int | None] | None:
        """Translate a term pattern into an id pattern.

        Returns ``None`` when a bound term is not in the dictionary — the
        answer is then provably empty without touching any index.
        """
        ids: list[int | None] = []
        for term in pattern:
            if term is None:
                ids.append(None)
            else:
                term_id = self.dictionary.lookup(term)
                if term_id is None:
                    return None
                ids.append(term_id)
        return ids[0], ids[1], ids[2]

    def _match_ids(
        self, s: int | None, p: int | None, o: int | None
    ) -> Iterator[_IdTriple]:
        # Every iterated index view is snapshotted with tuple()/list() before
        # iteration — on every path, not just the selective ones — so a
        # concurrent add() while a server response streams never raises
        # "dictionary changed size during iteration". Triples added
        # mid-iteration may or may not appear, which was already true.
        if s is not None:
            by_pred = self._spo.get(s)
            if not by_pred:
                return
            preds = (p,) if p is not None else tuple(by_pred)
            for pred in preds:
                objects = by_pred.get(pred)
                if not objects:
                    continue
                if o is not None:
                    if o in objects:
                        yield (s, pred, o)
                else:
                    for obj in tuple(objects):
                        yield (s, pred, obj)
            return
        if p is not None:
            by_obj = self._pos.get(p)
            if not by_obj:
                return
            objs = (o,) if o is not None else tuple(by_obj)
            for obj in objs:
                for subj in tuple(by_obj.get(obj, ())):
                    yield (subj, p, obj)
            return
        if o is not None:
            by_subj = self._osp.get(o)
            if not by_subj:
                return
            for subj, preds in list(by_subj.items()):
                for pred in tuple(preds):
                    yield (subj, pred, o)
            return
        for subj, by_pred in list(self._spo.items()):
            for pred, objects in list(by_pred.items()):
                for obj in tuple(objects):
                    yield (subj, pred, obj)

    # -- IdScanSource capability (vectorized execution substrate) ------------

    def match_id_batches(
        self,
        s: int | None,
        p: int | None,
        o: int | None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> Iterator[np.ndarray]:
        """Matching id triples as streamed ``(n, 3)`` int64 batches."""
        buffer: list[_IdTriple] = []
        for ids in self._match_ids(s, p, o):
            buffer.append(ids)
            if len(buffer) >= batch_size:
                yield np.array(buffer, dtype=np.int64)
                buffer = []
        if buffer:
            yield np.array(buffer, dtype=np.int64)

    def distinct_ids(
        self, s: int | None, p: int | None, o: int | None, position: int
    ) -> np.ndarray:
        """Sorted unique ids at ``position`` over matches of the id pattern.

        The shapes worst-case-optimal joins intersect — subjects of a
        ``(?, p, o)`` or ``(?, p, ?)`` pattern, objects of ``(s, p, ?)`` —
        are answered straight from the nested indexes; anything else falls
        back to a full match and a unique pass.
        """
        if position == 0 and s is None:
            if p is not None:
                by_obj = self._pos.get(p)
                if not by_obj:
                    return _EMPTY_IDS
                if o is not None:
                    return _sorted_ids(by_obj.get(o, ()))
                seen: set[int] = set()
                for subjects in list(by_obj.values()):
                    seen.update(subjects)
                return _sorted_ids(seen)
            if o is not None:
                return _sorted_ids(self._osp.get(o, ()))
        elif position == 2 and o is None:
            if s is not None:
                by_pred = self._spo.get(s)
                if not by_pred:
                    return _EMPTY_IDS
                if p is not None:
                    return _sorted_ids(by_pred.get(p, ()))
                seen = set()
                for objects in list(by_pred.values()):
                    seen.update(objects)
                return _sorted_ids(seen)
            if p is not None:
                return _sorted_ids(self._pos.get(p, ()))
        elif position == 1 and p is None:
            if s is not None and o is not None:
                return _sorted_ids(self._osp.get(o, {}).get(s, ()))
            if s is not None:
                return _sorted_ids(self._spo.get(s, ()))
            if o is not None:
                by_subj = self._osp.get(o)
                if not by_subj:
                    return _EMPTY_IDS
                seen = set()
                for preds in list(by_subj.values()):
                    seen.update(preds)
                return _sorted_ids(seen)
        matched = {ids[position] for ids in self._match_ids(s, p, o)}
        return _sorted_ids(matched)

    def probe_ids(
        self,
        s: int | None,
        p: int | None,
        o: int | None,
        key_position: int,
        keys: np.ndarray,
        value_position: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched point probes straight off the nested dict indexes.

        For each ``keys[i]`` substituted at ``key_position`` of the id
        pattern, collect the distinct ids at ``value_position`` of its
        matches. Returns ``(counts, values)``: ``counts[i]`` matches for
        ``keys[i]`` and ``values`` their concatenation in key order. Only
        the index-friendly shapes (predicate bound, key and value at the
        endpoints) are served; anything else raises :class:`LookupError`
        and callers fall back to per-key :meth:`distinct_ids` probes. This
        amortizes per-probe overhead when a join expands thousands of keys.
        """
        counts = np.empty(len(keys), dtype=np.int64)
        gathered: list[int] = []
        if key_position == 0 and p is not None and o is None and value_position == 2:
            spo = self._spo
            for index, key in enumerate(keys.tolist()):
                by_pred = spo.get(key)
                objects = by_pred.get(p) if by_pred else None
                if objects:
                    counts[index] = len(objects)
                    gathered.extend(objects)
                else:
                    counts[index] = 0
        elif key_position == 2 and p is not None and s is None and value_position == 0:
            by_obj = self._pos.get(p)
            for index, key in enumerate(keys.tolist()):
                subjects = by_obj.get(key) if by_obj else None
                if subjects:
                    counts[index] = len(subjects)
                    gathered.extend(subjects)
                else:
                    counts[index] = 0
        else:
            raise LookupError("unsupported probe shape for nested indexes")
        values = np.fromiter(gathered, dtype=np.int64, count=len(gathered))
        return counts, values

    def triples(self, pattern: TriplePattern = (None, None, None)) -> Iterator[Triple]:
        """Yield matching triples, decoding ids lazily."""
        encoded = self._encode_pattern(pattern)
        if encoded is None:
            return
        decode = self.dictionary.decode_triple
        for ids in self._match_ids(*encoded):
            yield decode(ids)

    def count(self, pattern: TriplePattern = (None, None, None)) -> int:
        encoded = self._encode_pattern(pattern)
        if encoded is None:
            return 0
        s, p, o = encoded
        if s is None and p is None and o is None:
            return self._size
        if s is not None and p is None and o is None:
            return sum(len(objs) for objs in self._spo.get(s, {}).values())
        if p is not None and s is None and o is None:
            return sum(len(subjs) for subjs in self._pos.get(p, {}).values())
        if o is not None and s is None and p is None:
            return sum(len(preds) for preds in self._osp.get(o, {}).values())
        return sum(1 for _ in self._match_ids(s, p, o))

    def __contains__(self, triple: Triple) -> bool:
        encoded = self._encode_pattern((triple[0], triple[1], triple[2]))
        if encoded is None:
            return False
        s, p, o = encoded
        return o in self._spo.get(s, {}).get(p, set())

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    # -- statistics (used by the SPARQL optimizer) ---------------------------

    def predicate_cardinality(self, predicate_id: int) -> int:
        """Number of triples with the given predicate id."""
        return sum(len(subjs) for subjs in self._pos.get(predicate_id, {}).values())

    def statistics(self) -> StatisticsSnapshot:
        """Cached :class:`StatisticsSnapshot`; recomputed after mutations.

        Computed straight from the id indexes (empty index entries left
        behind by :meth:`remove` are skipped), decoded once per predicate.
        """
        if self._stats is None:
            decode = self.dictionary.decode
            predicate_cards = {
                decode(pid): card
                for pid, by_obj in self._pos.items()
                if (card := sum(len(subjs) for subjs in by_obj.values()))
            }
            # Exact distinct objects per predicate: the POS index already
            # groups by object, so it's one length per predicate — no
            # sketch needed (the scan fallback in ``compute_statistics``
            # estimates the same figure with HLL).
            predicate_distincts = {
                decode(pid): distinct
                for pid, by_obj in self._pos.items()
                if (distinct := sum(1 for subjs in by_obj.values() if subjs))
            }
            self._stats = StatisticsSnapshot(
                triple_count=self._size,
                distinct_subjects=sum(
                    1
                    for by_pred in self._spo.values()
                    if any(objs for objs in by_pred.values())
                ),
                distinct_predicates=len(predicate_cards),
                distinct_objects=sum(
                    1
                    for by_subj in self._osp.values()
                    if any(preds for preds in by_subj.values())
                ),
                predicate_cardinalities=MappingProxyType(predicate_cards),
                predicate_distinct_objects=MappingProxyType(predicate_distincts),
            )
        return self._stats

    def id_triples(self) -> Iterator[_IdTriple]:
        """Raw id triples (for bulk exports to the paged store)."""
        return self._match_ids(None, None, None)
