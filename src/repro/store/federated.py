"""Federated triple access over multiple sources (Balloon Fusion [116]).

Survey §3.2: Balloon Synopsis "supports automatic information enhancement
of the local RDF data by accessing either remote SPARQL endpoints or
performing federated queries over endpoints". :class:`FederatedStore`
presents several :class:`~repro.store.base.TripleSource`s as one — pattern
queries fan out to every member, results are deduplicated, and per-source
statistics record where answers came from (the provenance panel such tools
show).

A federation view deliberately does **not** implement the
:class:`~repro.store.base.IdScanSource` capability: members keep private
term dictionaries, so there is no shared id space to scan over. The
``as_id_scan_source`` probe therefore returns ``None`` here and the SPARQL
engine executes over the decoded-term iterator path — the fallback leg of
the vectorized engine's capability matrix (same for
:class:`~repro.server.remote.RemoteEndpointSource`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from ..rdf.graph import TriplePattern
from ..rdf.terms import Triple
from .base import StatisticsSnapshot, StoreStatistics, TripleSource, compute_statistics

__all__ = ["FederatedStore", "SourceStats"]


@dataclass
class SourceStats:
    name: str
    queries: int = 0
    triples_returned: int = 0


class FederatedStore:
    """A deduplicating union view over named triple sources."""

    def __init__(self, sources: Sequence[tuple[str, TripleSource]]) -> None:
        if not sources:
            raise ValueError("need at least one source")
        names = [name for name, _ in sources]
        if len(set(names)) != len(names):
            raise ValueError("source names must be unique")
        self._sources = list(sources)
        self._statistics: StatisticsSnapshot | None = None
        self.stats: dict[str, SourceStats] = {
            name: SourceStats(name) for name, _ in sources
        }

    # -- TripleSource protocol -------------------------------------------------

    def triples(self, pattern: TriplePattern = (None, None, None)) -> Iterator[Triple]:
        seen: set[Triple] = set()
        for name, source in self._sources:
            stats = self.stats[name]
            stats.queries += 1
            for triple in source.triples(pattern):
                stats.triples_returned += 1
                if triple not in seen:
                    seen.add(triple)
                    yield triple

    def count(self, pattern: TriplePattern = (None, None, None)) -> int:
        if len(self._sources) == 1:
            # Single source: no overlap to deduplicate, so delegate to the
            # member's own count() — which may be an index lookup rather
            # than the materializing scan the general path needs.
            name, source = self._sources[0]
            stats = self.stats[name]
            stats.queries += 1
            matched = source.count(pattern)
            stats.triples_returned += matched
            return matched
        return sum(1 for _ in self.triples(pattern))

    def __len__(self) -> int:
        return self.count()

    def statistics(self) -> StatisticsSnapshot:
        """Merged member statistics (an upper bound: overlap is not deduped).

        Members implementing :class:`StoreStatistics` contribute their cached
        snapshot; others are scanned once. The merge is cached until
        :meth:`add_source` changes the membership.
        """
        if self._statistics is None:
            snapshots = [
                source.statistics()
                if isinstance(source, StoreStatistics)
                else compute_statistics(source)
                for _, source in self._sources
            ]
            predicate_cards: dict = {}
            predicate_distincts: dict = {}
            for snapshot in snapshots:
                for predicate, card in snapshot.predicate_cardinalities.items():
                    predicate_cards[predicate] = predicate_cards.get(predicate, 0) + card
                for predicate, card in snapshot.predicate_distinct_objects.items():
                    predicate_distincts[predicate] = (
                        predicate_distincts.get(predicate, 0) + card
                    )
            self._statistics = StatisticsSnapshot(
                triple_count=sum(s.triple_count for s in snapshots),
                distinct_subjects=sum(s.distinct_subjects for s in snapshots),
                distinct_predicates=len(predicate_cards),
                distinct_objects=sum(s.distinct_objects for s in snapshots),
                predicate_cardinalities=predicate_cards,
                predicate_distinct_objects=predicate_distincts,
            )
        return self._statistics

    # -- provenance ------------------------------------------------------------

    def sources_of(self, triple: Triple) -> list[str]:
        """Which sources assert ``triple`` (the provenance question)."""
        found = []
        for name, source in self._sources:
            if any(True for _ in source.triples((triple[0], triple[1], triple[2]))):
                found.append(name)
        return found

    def source_names(self) -> list[str]:
        return [name for name, _ in self._sources]

    def members(self) -> list[tuple[str, TripleSource]]:
        """The named members, for capability probing — the sketch
        coordinator (:mod:`repro.server.sketch`) fans eligible aggregates
        out to each member and merges the returned sketch bundles."""
        return list(self._sources)

    def add_source(self, name: str, source: TripleSource) -> None:
        """Attach another endpoint at runtime (the 'enhancement' step)."""
        if name in self.stats:
            raise ValueError(f"source {name!r} already registered")
        self._sources.append((name, source))
        self._statistics = None
        self.stats[name] = SourceStats(name)
