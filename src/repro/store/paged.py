"""Disk-backed, paged triple store with an LRU buffer pool.

The survey's Discussion (Section 4) singles out the lack of disk-based
implementations as the key scalability failure of WoD tools: "most of the
existing systems ... initially load all the examined objects in main
memory". Systems like graphVizdb [22, 23] instead keep data on disk and
fetch only what an interaction needs. This module provides that substrate:

* triples are dictionary-encoded and stored **sorted** in three
  permutations (SPO, POS, OSP) as fixed-size binary pages;
* a small in-memory *fence index* (first key of every page) routes a
  triple-pattern prefix scan to the right page run;
* pages are fetched through an :class:`LRUBufferPool` of bounded size, so
  resident memory is O(pool + answer), never O(dataset).

The store is build-once / read-many, which matches the exploration setting:
one bulk load (or import from a :class:`~repro.store.memory.MemoryStore`),
then an interactive read workload.
"""

from __future__ import annotations

import os
import struct
from bisect import bisect_right
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from ..obs import OBS
from ..rdf.graph import TriplePattern
from ..rdf.terms import Triple
from .base import DEFAULT_BATCH_SIZE, StatisticsSnapshot, compute_statistics
from .dictionary import TermDictionary

__all__ = ["PagedTripleStore", "LRUBufferPool", "BufferPoolStats"]

_TRIPLE = struct.Struct("<III")
_PERMUTATIONS = ("spo", "pos", "osp")
_MAX_ID = 2**32 - 1

# meta.bin v2 starts with this magic; files without it are the legacy
# (pre-statistics) layout and get their statistics recomputed on demand.
_META_MAGIC = b"RPG2"

# (s, p, o) -> key order per permutation, and its inverse.
_PERMUTE = {
    "spo": lambda s, p, o: (s, p, o),
    "pos": lambda s, p, o: (p, o, s),
    "osp": lambda s, p, o: (o, s, p),
}
_UNPERMUTE = {
    "spo": lambda a, b, c: (a, b, c),
    "pos": lambda a, b, c: (c, a, b),
    "osp": lambda a, b, c: (b, c, a),
}


@dataclass
class BufferPoolStats:
    """Counters exposed for the C5/C9 benchmarks."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


class LRUBufferPool:
    """A fixed-capacity page cache with least-recently-used eviction."""

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages < 1:
            raise ValueError("buffer pool needs capacity >= 1 page")
        self.capacity = capacity_pages
        self._pages: OrderedDict[tuple[str, int], bytes] = OrderedDict()
        self.stats = BufferPoolStats()

    def get(self, key: tuple[str, int]) -> bytes | None:
        page = self._pages.get(key)
        if page is not None:
            self._pages.move_to_end(key)
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        return page

    def put(self, key: tuple[str, int], page: bytes) -> None:
        self._pages[key] = page
        self._pages.move_to_end(key)
        if len(self._pages) > self.capacity:
            self._pages.popitem(last=False)
            self.stats.evictions += 1

    def __len__(self) -> int:
        return len(self._pages)

    @property
    def resident_bytes(self) -> int:
        return sum(len(p) for p in self._pages.values())

    def clear(self) -> None:
        self._pages.clear()


@dataclass
class _Permutation:
    """One sorted on-disk run plus its in-memory fence keys."""

    name: str
    path: str
    fences: list[tuple[int, int, int]] = field(default_factory=list)
    page_count: int = 0


class PagedTripleStore:
    """Read-optimized disk triple store (graphVizdb-style substrate).

    Use :meth:`build` to create the files, :meth:`open` to attach to them.
    """

    def __init__(
        self,
        directory: str,
        dictionary: TermDictionary,
        permutations: dict[str, _Permutation],
        size: int,
        page_size: int,
        cache_pages: int = 64,
        raw_statistics: tuple[int, int, int, dict[int, int]] | None = None,
    ) -> None:
        self.directory = directory
        self.dictionary = dictionary
        self._perms = permutations
        self._size = size
        self.page_size = page_size
        self.triples_per_page = page_size // _TRIPLE.size
        self.pool = LRUBufferPool(cache_pages)
        # (distinct_s, distinct_p, distinct_o, {predicate_id: count})
        self._raw_statistics = raw_statistics
        self._stats: StatisticsSnapshot | None = None
        self._files = {
            name: open(perm.path, "rb") for name, perm in permutations.items()
        }

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        triples: Iterable[Triple],
        directory: str,
        page_size: int = 4096,
        cache_pages: int = 64,
    ) -> "PagedTripleStore":
        """Bulk-load ``triples`` into ``directory`` and open the result."""
        if page_size < _TRIPLE.size:
            raise ValueError("page size smaller than one triple record")
        os.makedirs(directory, exist_ok=True)
        with OBS.tracer.span("store.paged.build", directory=directory) as span:
            return cls._build_files(
                triples, directory, page_size, cache_pages, span
            )

    @classmethod
    def _build_files(
        cls,
        triples: Iterable[Triple],
        directory: str,
        page_size: int,
        cache_pages: int,
        span,
    ) -> "PagedTripleStore":
        dictionary = TermDictionary()
        id_triples: set[tuple[int, int, int]] = set()
        for triple in triples:
            id_triples.add(dictionary.encode_triple(triple))

        per_page = page_size // _TRIPLE.size
        pages_written = 0
        permutations: dict[str, _Permutation] = {}
        for name in _PERMUTATIONS:
            permute = _PERMUTE[name]
            keys = sorted(permute(s, p, o) for s, p, o in id_triples)
            path = os.path.join(directory, f"{name}.dat")
            perm = _Permutation(name=name, path=path)
            with open(path, "wb") as fh:
                for start in range(0, len(keys), per_page):
                    page_keys = keys[start : start + per_page]
                    perm.fences.append(page_keys[0])
                    payload = b"".join(_TRIPLE.pack(*k) for k in page_keys)
                    fh.write(payload.ljust(page_size, b"\xff"))
                    perm.page_count += 1
                    pages_written += 1
            permutations[name] = perm
        if OBS.enabled:
            OBS.metrics.counter("store.paged.page_writes").inc(pages_written)

        # Store statistics, computed once at build time and persisted in the
        # meta header so re-opened stores can plan queries without scanning.
        subjects: set[int] = set()
        objects: set[int] = set()
        predicate_counts: dict[int, int] = {}
        for s, p, o in id_triples:
            subjects.add(s)
            objects.add(o)
            predicate_counts[p] = predicate_counts.get(p, 0) + 1
        raw_statistics = (len(subjects), len(predicate_counts), len(objects), predicate_counts)

        with open(os.path.join(directory, "terms.dict"), "wb") as fh:
            dictionary.dump(fh)
        with open(os.path.join(directory, "meta.bin"), "wb") as fh:
            fh.write(_META_MAGIC)
            fh.write(struct.pack("<II", page_size, len(id_triples)))
            fh.write(struct.pack("<III", *raw_statistics[:3]))
            fh.write(struct.pack("<I", len(predicate_counts)))
            for pid in sorted(predicate_counts):
                fh.write(struct.pack("<II", pid, predicate_counts[pid]))
            for name in _PERMUTATIONS:
                perm = permutations[name]
                fh.write(struct.pack("<I", perm.page_count))
                for fence in perm.fences:
                    fh.write(_TRIPLE.pack(*fence))

        span.set_attribute("triples", len(id_triples))
        span.set_attribute("pages", pages_written)
        return cls(
            directory,
            dictionary,
            permutations,
            size=len(id_triples),
            page_size=page_size,
            cache_pages=cache_pages,
            raw_statistics=raw_statistics,
        )

    @classmethod
    def open(cls, directory: str, cache_pages: int = 64) -> "PagedTripleStore":
        """Attach to a store previously created by :meth:`build`."""
        with open(os.path.join(directory, "terms.dict"), "rb") as fh:
            dictionary = TermDictionary.load(fh)
        with open(os.path.join(directory, "meta.bin"), "rb") as fh:
            raw_statistics = None
            magic = fh.read(4)
            if magic == _META_MAGIC:
                page_size, size = struct.unpack("<II", fh.read(8))
                distinct_s, distinct_p, distinct_o = struct.unpack("<III", fh.read(12))
                (n_predicates,) = struct.unpack("<I", fh.read(4))
                predicate_counts: dict[int, int] = {}
                for _ in range(n_predicates):
                    pid, card = struct.unpack("<II", fh.read(8))
                    predicate_counts[pid] = card
                raw_statistics = (distinct_s, distinct_p, distinct_o, predicate_counts)
            else:  # legacy header without the statistics block
                fh.seek(0)
                page_size, size = struct.unpack("<II", fh.read(8))
            permutations: dict[str, _Permutation] = {}
            for name in _PERMUTATIONS:
                (page_count,) = struct.unpack("<I", fh.read(4))
                fences = [
                    _TRIPLE.unpack(fh.read(_TRIPLE.size)) for _ in range(page_count)
                ]
                permutations[name] = _Permutation(
                    name=name,
                    path=os.path.join(directory, f"{name}.dat"),
                    fences=fences,
                    page_count=page_count,
                )
        return cls(
            directory,
            dictionary,
            permutations,
            size=size,
            page_size=page_size,
            cache_pages=cache_pages,
            raw_statistics=raw_statistics,
        )

    def close(self) -> None:
        for fh in self._files.values():
            fh.close()
        self._files.clear()

    def __enter__(self) -> "PagedTripleStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Page access
    # ------------------------------------------------------------------ #

    def _read_page(self, perm_name: str, page_no: int) -> bytes:
        key = (perm_name, page_no)
        page = self.pool.get(key)
        if page is None:
            fh = self._files[perm_name]
            fh.seek(page_no * self.page_size)
            page = fh.read(self.page_size)
            self.pool.put(key, page)
            if OBS.enabled:
                OBS.metrics.counter(
                    "store.paged.page_reads", permutation=perm_name
                ).inc()
        elif OBS.enabled:
            OBS.metrics.counter(
                "store.paged.pool_hits", permutation=perm_name
            ).inc()
        return page

    def _page_keys(self, perm_name: str, page_no: int) -> Iterator[tuple[int, int, int]]:
        page = self._read_page(perm_name, page_no)
        for offset in range(0, len(page), _TRIPLE.size):
            record = page[offset : offset + _TRIPLE.size]
            if len(record) < _TRIPLE.size:
                break
            key = _TRIPLE.unpack(record)
            if key[0] == _MAX_ID:  # page padding
                break
            yield key

    def _scan_prefix(
        self, perm_name: str, prefix: tuple[int, ...]
    ) -> Iterator[tuple[int, int, int]]:
        """Yield all permuted keys whose leading components equal ``prefix``."""
        perm = self._perms[perm_name]
        if perm.page_count == 0:
            return
        low = prefix + (-1,) * (3 - len(prefix))
        high = prefix + (_MAX_ID + 1,) * (3 - len(prefix))
        start_page = max(0, bisect_right(perm.fences, low) - 1)
        for page_no in range(start_page, perm.page_count):
            if perm.fences[page_no] > high:
                break
            for key in self._page_keys(perm_name, page_no):
                if key < low:
                    continue
                if key > high:
                    return
                yield key

    def _page_key_array(self, perm_name: str, page_no: int) -> np.ndarray:
        """One page decoded wholesale into an ``(n, 3)`` uint32 key array.

        The binary page layout (packed ``<III`` records, ``0xff`` padding)
        is exactly a little-endian uint32 matrix, so the decode is a single
        ``frombuffer`` + reshape instead of a per-record ``struct.unpack``
        loop — the vectorized engine's page-scan fast path.
        """
        page = self._read_page(perm_name, page_no)
        words = np.frombuffer(page, dtype="<u4")
        words = words[: (words.size // 3) * 3]
        keys = words.reshape(-1, 3)
        return keys[keys[:, 0] != _MAX_ID]

    # ------------------------------------------------------------------ #
    # IdScanSource capability (vectorized execution substrate)
    # ------------------------------------------------------------------ #

    def match_id_batches(
        self,
        s: int | None,
        p: int | None,
        o: int | None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> Iterator[np.ndarray]:
        """Matching id triples as streamed ``(n, 3)`` int64 batches.

        Routes through the same fence index as :meth:`triples` but decodes
        whole pages vectorized; pages coalesce up to ``batch_size`` rows
        (an upper bound — consumers size LIMIT work off it).
        """
        perm_name, prefix = self._plan(s, p, o)
        perm = self._perms[perm_name]
        if perm.page_count == 0:
            return
        low = prefix + (-1,) * (3 - len(prefix))
        high = prefix + (_MAX_ID + 1,) * (3 - len(prefix))
        unpermute = _UNPERMUTE[perm_name]
        pending: list[np.ndarray] = []
        pending_rows = 0
        start_page = max(0, bisect_right(perm.fences, low) - 1)
        for page_no in range(start_page, perm.page_count):
            if perm.fences[page_no] > high:
                break
            keys = self._page_key_array(perm_name, page_no)
            if prefix:
                mask = keys[:, 0] == prefix[0]
                for index, bound in enumerate(prefix[1:], start=1):
                    mask &= keys[:, index] == bound
                keys = keys[mask]
            if not len(keys):
                continue
            a, b, c = keys[:, 0], keys[:, 1], keys[:, 2]
            triples = np.stack(unpermute(a, b, c), axis=1).astype(np.int64)
            pending.append(triples)
            pending_rows += len(triples)
            while pending_rows >= batch_size:
                merged = (
                    np.concatenate(pending) if len(pending) > 1 else pending[0]
                )
                yield merged[:batch_size]
                remainder = merged[batch_size:]
                pending = [remainder] if len(remainder) else []
                pending_rows = len(remainder)
        if pending:
            yield np.concatenate(pending) if len(pending) > 1 else pending[0]

    def distinct_ids(
        self, s: int | None, p: int | None, o: int | None, position: int
    ) -> np.ndarray:
        """Sorted unique ids at ``position`` over matches.

        When the chosen permutation sorts ``position`` directly after the
        bound prefix the scan already yields it sorted; ``np.unique``
        handles the general case either way.
        """
        batches = [batch[:, position] for batch in self.match_id_batches(s, p, o)]
        if not batches:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(batches) if len(batches) > 1 else batches[0])

    # ------------------------------------------------------------------ #
    # TripleSource protocol
    # ------------------------------------------------------------------ #

    def _plan(self, s: int | None, p: int | None, o: int | None) -> tuple[str, tuple[int, ...]]:
        """Choose the permutation whose sort order matches the bound prefix."""
        if s is not None:
            if p is not None:
                if o is not None:
                    return "spo", (s, p, o)
                return "spo", (s, p)
            if o is not None:
                return "osp", (o, s)
            return "spo", (s,)
        if p is not None:
            if o is not None:
                return "pos", (p, o)
            return "pos", (p,)
        if o is not None:
            return "osp", (o,)
        return "spo", ()

    def triples(self, pattern: TriplePattern = (None, None, None)) -> Iterator[Triple]:
        ids: list[int | None] = []
        for term in pattern:
            if term is None:
                ids.append(None)
            else:
                term_id = self.dictionary.lookup(term)
                if term_id is None:
                    return
                ids.append(term_id)
        perm_name, prefix = self._plan(*ids)
        unpermute = _UNPERMUTE[perm_name]
        decode = self.dictionary.decode_triple
        for key in self._scan_prefix(perm_name, prefix):
            yield decode(unpermute(*key))

    def count(self, pattern: TriplePattern = (None, None, None)) -> int:
        if pattern == (None, None, None):
            return self._size
        return sum(1 for _ in self.triples(pattern))

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def statistics(self) -> StatisticsSnapshot:
        """Statistics persisted in the meta header at :meth:`build` time.

        Opening a legacy (pre-statistics) store falls back to one full scan,
        after which the snapshot is cached for the lifetime of the handle —
        the store is read-only, so it can never go stale.
        """
        if self._stats is None:
            if self._raw_statistics is None:
                self._stats = compute_statistics(self)
            else:
                distinct_s, distinct_p, distinct_o, predicate_counts = self._raw_statistics
                decode = self.dictionary.decode
                self._stats = StatisticsSnapshot(
                    triple_count=self._size,
                    distinct_subjects=distinct_s,
                    distinct_predicates=distinct_p,
                    distinct_objects=distinct_o,
                    predicate_cardinalities={
                        decode(pid): card for pid, card in predicate_counts.items()
                    },
                )
        return self._stats

    @property
    def resident_bytes(self) -> int:
        """Bytes of triple data currently held in memory (the pool only)."""
        return self.pool.resident_bytes

    @property
    def disk_bytes(self) -> int:
        """Total size of the three permutation files on disk."""
        return sum(os.path.getsize(perm.path) for perm in self._perms.values())
