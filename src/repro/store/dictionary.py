"""Dictionary encoding of RDF terms.

Every serious triple store dictionary-encodes terms: each distinct IRI,
blank node, or literal is assigned a small integer id, and triples become
fixed-width integer triplets. This is the enabling transform for both the
in-memory indexes (:mod:`repro.store.memory`) and the disk pages
(:mod:`repro.store.paged`), and it is what lets the survey's "billion
objects" requirement (Section 2) meet fixed-size machine resources.

The binary term codec defined here is self-contained (no pickle) so
dictionary files are portable and safe to load.
"""

from __future__ import annotations

import struct
from typing import IO, Iterable, Iterator

from ..rdf.terms import BNode, IRI, Literal, Term, Triple

__all__ = ["TermDictionary", "encode_term", "decode_term"]

_KIND_IRI = 0
_KIND_BNODE = 1
_KIND_LITERAL_PLAIN = 2
_KIND_LITERAL_TYPED = 3
_KIND_LITERAL_LANG = 4

_HEADER = struct.Struct("<BI")  # kind, payload length


def _pack_str(text: str) -> bytes:
    raw = text.encode("utf-8")
    return struct.pack("<I", len(raw)) + raw


def _unpack_str(buffer: bytes, offset: int) -> tuple[str, int]:
    (length,) = struct.unpack_from("<I", buffer, offset)
    start = offset + 4
    return buffer[start : start + length].decode("utf-8"), start + length


def encode_term(term: Term) -> bytes:
    """Serialize a term to a compact, self-describing byte string."""
    if isinstance(term, IRI):
        payload = _pack_str(str(term))
        return bytes([_KIND_IRI]) + payload
    if isinstance(term, BNode):
        payload = _pack_str(str(term))
        return bytes([_KIND_BNODE]) + payload
    if isinstance(term, Literal):
        if term.lang is not None:
            return bytes([_KIND_LITERAL_LANG]) + _pack_str(term.lexical) + _pack_str(term.lang)
        if term.datatype and term.datatype != "http://www.w3.org/2001/XMLSchema#string":
            return (
                bytes([_KIND_LITERAL_TYPED]) + _pack_str(term.lexical) + _pack_str(term.datatype)
            )
        return bytes([_KIND_LITERAL_PLAIN]) + _pack_str(term.lexical)
    raise TypeError(f"not an encodable RDF term: {term!r}")


def decode_term(data: bytes) -> Term:
    """Inverse of :func:`encode_term`."""
    kind = data[0]
    if kind == _KIND_IRI:
        text, _ = _unpack_str(data, 1)
        return IRI(text)
    if kind == _KIND_BNODE:
        text, _ = _unpack_str(data, 1)
        return BNode(text)
    if kind == _KIND_LITERAL_PLAIN:
        text, _ = _unpack_str(data, 1)
        return Literal(text)
    if kind == _KIND_LITERAL_TYPED:
        lexical, offset = _unpack_str(data, 1)
        datatype, _ = _unpack_str(data, offset)
        return Literal(lexical, datatype=datatype)
    if kind == _KIND_LITERAL_LANG:
        lexical, offset = _unpack_str(data, 1)
        lang, _ = _unpack_str(data, offset)
        return Literal(lexical, lang=lang)
    raise ValueError(f"unknown term kind byte: {kind}")


#: Bound on the per-dictionary decode memo (see :meth:`TermDictionary
#: .decode_batch`). Late materialization decodes the same hot ids (types,
#: predicates, popular objects) over and over within a query; 64k entries
#: cover any realistic working set while keeping worst-case memory small.
_DECODE_MEMO_LIMIT = 65_536


class TermDictionary:
    """Bidirectional term ↔ integer-id mapping.

    Ids are dense and start at 0, so the reverse direction is a plain list.
    """

    def __init__(self) -> None:
        self._term_to_id: dict[Term, int] = {}
        self._id_to_term: list[Term] = []
        # id -> term memo for decode_batch; keyed on plain ints so numpy
        # scalars from id columns are normalized once, not per repeat.
        self._decode_memo: dict[int, Term] = {}

    def __len__(self) -> int:
        return len(self._id_to_term)

    def encode(self, term: Term) -> int:
        """Return the id for ``term``, assigning a fresh one if unseen."""
        term_id = self._term_to_id.get(term)
        if term_id is None:
            term_id = len(self._id_to_term)
            self._term_to_id[term] = term_id
            self._id_to_term.append(term)
        return term_id

    def lookup(self, term: Term) -> int | None:
        """Return the id for ``term`` if known, else ``None`` (read-only)."""
        return self._term_to_id.get(term)

    def decode(self, term_id: int) -> Term:
        """Return the term for ``term_id``; raises IndexError if unknown."""
        return self._id_to_term[term_id]

    def decode_batch(self, term_ids) -> list[Term]:
        """Decode a sequence of ids (e.g. a numpy column) to terms.

        The hot path of late materialization: id columns repeat the same
        values heavily (types, predicates, shared objects), so decoded
        terms are memoized in a bounded per-dictionary map. The memo is
        dropped wholesale when it outgrows its bound — ids are stable, so
        there is no invalidation to get wrong, only a cold restart.
        """
        memo = self._decode_memo
        table = self._id_to_term
        out: list[Term] = []
        append = out.append
        for term_id in term_ids:
            key = int(term_id)
            term = memo.get(key)
            if term is None:
                term = table[key]
                memo[key] = term
            append(term)
        if len(memo) > _DECODE_MEMO_LIMIT:
            memo.clear()
        return out

    def encode_triple(self, triple: Triple) -> tuple[int, int, int]:
        s, p, o = triple
        return self.encode(s), self.encode(p), self.encode(o)

    def decode_triple(self, ids: tuple[int, int, int]) -> Triple:
        s, p, o = ids
        return Triple(self._id_to_term[s], self._id_to_term[p], self._id_to_term[o])

    def __contains__(self, term: Term) -> bool:
        return term in self._term_to_id

    def terms(self) -> Iterator[Term]:
        """All terms in id order."""
        return iter(self._id_to_term)

    # -- persistence -----------------------------------------------------

    def dump(self, fh: IO[bytes]) -> None:
        """Write the dictionary in id order to a binary stream."""
        fh.write(struct.pack("<I", len(self._id_to_term)))
        for term in self._id_to_term:
            encoded = encode_term(term)
            fh.write(struct.pack("<I", len(encoded)))
            fh.write(encoded)

    @classmethod
    def load(cls, fh: IO[bytes]) -> "TermDictionary":
        """Read a dictionary previously written by :meth:`dump`."""
        dictionary = cls()
        (count,) = struct.unpack("<I", fh.read(4))
        for _ in range(count):
            (length,) = struct.unpack("<I", fh.read(4))
            term = decode_term(fh.read(length))
            dictionary.encode(term)
        return dictionary

    @classmethod
    def from_terms(cls, terms: Iterable[Term]) -> "TermDictionary":
        dictionary = cls()
        for term in terms:
            dictionary.encode(term)
        return dictionary
