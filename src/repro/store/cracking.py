"""Adaptive indexing (database cracking) for exploration workloads.

Section 2 of the survey notes that the dynamic setting "prevents a
preprocessing phase (e.g., traditional indexing)" and points to adaptive
indexing [67] as used for interactive exploration of big data series [144]:
instead of sorting a column up front, the store *cracks* it incrementally —
every range query partitions exactly the pieces it touches, so the column
converges toward sorted order along the user's exploration path and each
query pays only for the data it reads.

:class:`CrackedColumn` implements classic two-sided cracking over a numeric
column. Two reference strategies are provided for the C8 benchmark:
:class:`FullSortColumn` (pay everything up front) and :class:`ScanColumn`
(pay a full scan on every query).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Sequence

import numpy as np

from ..obs import OBS

__all__ = ["CrackedColumn", "FullSortColumn", "ScanColumn"]


class CrackedColumn:
    """A numeric column indexed adaptively by the queries themselves.

    The column keeps a permuted copy of the input values plus a sorted list
    of *crack points* ``(pivot, position)`` with the invariant::

        values[:position] <  pivot  <=  values[position:]        (*)

    restricted to the piece each pivot was cracked in; globally the pieces
    between consecutive crack positions are value-disjoint and ordered.

    ``range_query(lo, hi)`` cracks on both bounds and then answers from the
    contiguous qualifying slice. ``work_counter`` accumulates the number of
    elements partitioned, the cost driver compared by the C8 bench.
    """

    def __init__(self, values: Sequence[float] | np.ndarray) -> None:
        self._values = np.asarray(values, dtype=np.float64).copy()
        # Crack index: parallel sorted lists of pivots and their positions.
        self._pivots: list[float] = []
        self._positions: list[int] = []
        self.work_counter = 0
        self.query_counter = 0

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> np.ndarray:
        """The (progressively more sorted) physical column."""
        return self._values

    @property
    def piece_count(self) -> int:
        """Number of value-disjoint pieces the column is cracked into."""
        return len(self._pivots) + 1

    def _piece_bounds(self, pivot: float) -> tuple[int, int]:
        """The [start, end) physical range of the piece containing ``pivot``."""
        index = bisect_right(self._pivots, pivot)
        start = self._positions[index - 1] if index > 0 else 0
        end = self._positions[index] if index < len(self._positions) else len(self._values)
        return start, end

    def _crack(self, pivot: float) -> int:
        """Partition so that (*) holds for ``pivot``; returns its position."""
        existing = bisect_left(self._pivots, pivot)
        if existing < len(self._pivots) and self._pivots[existing] == pivot:
            return self._positions[existing]
        start, end = self._piece_bounds(pivot)
        piece = self._values[start:end]
        mask = piece < pivot
        split = start + int(mask.sum())
        if 0 < len(piece):
            self._values[start:end] = np.concatenate((piece[mask], piece[~mask]))
            self.work_counter += len(piece)
            if OBS.enabled:
                OBS.metrics.counter("store.crack.operations").inc()
                OBS.metrics.histogram(
                    "store.crack.piece_elements",
                    buckets=(8, 64, 512, 4_096, 32_768, 262_144, 2_097_152),
                ).record(len(piece))
        insort(self._pivots, pivot)
        self._positions.insert(bisect_left(self._pivots, pivot), split)
        return split

    def range_query(self, lo: float, hi: float) -> np.ndarray:
        """All values ``v`` with ``lo <= v < hi`` (a contiguous slice view)."""
        if hi < lo:
            raise ValueError("range_query requires lo <= hi")
        self.query_counter += 1
        if not OBS.enabled:
            start = self._crack(lo)
            end = self._crack(hi)
            return self._values[start:end]
        with OBS.tracer.span("store.crack.range_query", lo=lo, hi=hi) as span:
            work_before = self.work_counter
            start = self._crack(lo)
            end = self._crack(hi)
            span.set_attribute("partitioned", self.work_counter - work_before)
            span.set_attribute("pieces", self.piece_count)
        return self._values[start:end]

    def range_count(self, lo: float, hi: float) -> int:
        return len(self.range_query(lo, hi))

    def range_sum(self, lo: float, hi: float) -> float:
        return float(self.range_query(lo, hi).sum())

    def check_invariants(self) -> None:
        """Verify every crack point's partition property (for tests)."""
        for pivot, position in zip(self._pivots, self._positions):
            left = self._values[:position]
            right = self._values[position:]
            if len(left) and left.max() >= pivot:
                raise AssertionError(f"values left of pivot {pivot} not all < pivot")
            if len(right) and right.min() < pivot:
                raise AssertionError(f"values right of pivot {pivot} not all >= pivot")
        if self._positions != sorted(self._positions):
            raise AssertionError("crack positions not monotone")


class FullSortColumn:
    """Reference strategy: sort everything before the first query."""

    def __init__(self, values: Sequence[float] | np.ndarray) -> None:
        self._values = np.sort(np.asarray(values, dtype=np.float64))
        # Sorting is ~n log2 n element moves; charged as up-front work.
        n = len(self._values)
        self.work_counter = int(n * max(1.0, np.log2(max(n, 2))))
        self.query_counter = 0

    def range_query(self, lo: float, hi: float) -> np.ndarray:
        if hi < lo:
            raise ValueError("range_query requires lo <= hi")
        self.query_counter += 1
        start = int(np.searchsorted(self._values, lo, side="left"))
        end = int(np.searchsorted(self._values, hi, side="left"))
        return self._values[start:end]

    def range_count(self, lo: float, hi: float) -> int:
        return len(self.range_query(lo, hi))


class ScanColumn:
    """Reference strategy: no index at all; every query scans the column."""

    def __init__(self, values: Sequence[float] | np.ndarray) -> None:
        self._values = np.asarray(values, dtype=np.float64).copy()
        self.work_counter = 0
        self.query_counter = 0

    def range_query(self, lo: float, hi: float) -> np.ndarray:
        if hi < lo:
            raise ValueError("range_query requires lo <= hi")
        self.query_counter += 1
        self.work_counter += len(self._values)
        return self._values[(self._values >= lo) & (self._values < hi)]

    def range_count(self, lo: float, hi: float) -> int:
        return len(self.range_query(lo, hi))
