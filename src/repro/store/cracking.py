"""Adaptive indexing (database cracking) for exploration workloads.

Section 2 of the survey notes that the dynamic setting "prevents a
preprocessing phase (e.g., traditional indexing)" and points to adaptive
indexing [67] as used for interactive exploration of big data series [144]:
instead of sorting a column up front, the store *cracks* it incrementally —
every range query partitions exactly the pieces it touches, so the column
converges toward sorted order along the user's exploration path and each
query pays only for the data it reads.

:class:`CrackedColumn` implements classic two-sided cracking over a numeric
column. Two reference strategies are provided for the C8 benchmark:
:class:`FullSortColumn` (pay everything up front) and :class:`ScanColumn`
(pay a full scan on every query).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..obs import OBS
from ..rdf.graph import TriplePattern
from ..rdf.terms import Triple
from .base import DEFAULT_BATCH_SIZE, StatisticsSnapshot
from .dictionary import TermDictionary

__all__ = ["CrackedColumn", "CrackingTripleStore", "FullSortColumn", "ScanColumn"]


class CrackedColumn:
    """A numeric column indexed adaptively by the queries themselves.

    The column keeps a permuted copy of the input values plus a sorted list
    of *crack points* ``(pivot, position)`` with the invariant::

        values[:position] <  pivot  <=  values[position:]        (*)

    restricted to the piece each pivot was cracked in; globally the pieces
    between consecutive crack positions are value-disjoint and ordered.

    ``range_query(lo, hi)`` cracks on both bounds and then answers from the
    contiguous qualifying slice. ``work_counter`` accumulates the number of
    elements partitioned, the cost driver compared by the C8 bench.
    """

    def __init__(self, values: Sequence[float] | np.ndarray) -> None:
        self._values = np.asarray(values, dtype=np.float64).copy()
        # Crack index: parallel sorted lists of pivots and their positions.
        self._pivots: list[float] = []
        self._positions: list[int] = []
        self.work_counter = 0
        self.query_counter = 0

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> np.ndarray:
        """The (progressively more sorted) physical column."""
        return self._values

    @property
    def piece_count(self) -> int:
        """Number of value-disjoint pieces the column is cracked into."""
        return len(self._pivots) + 1

    def _piece_bounds(self, pivot: float) -> tuple[int, int]:
        """The [start, end) physical range of the piece containing ``pivot``."""
        index = bisect_right(self._pivots, pivot)
        start = self._positions[index - 1] if index > 0 else 0
        end = self._positions[index] if index < len(self._positions) else len(self._values)
        return start, end

    def _crack(self, pivot: float) -> int:
        """Partition so that (*) holds for ``pivot``; returns its position."""
        existing = bisect_left(self._pivots, pivot)
        if existing < len(self._pivots) and self._pivots[existing] == pivot:
            return self._positions[existing]
        start, end = self._piece_bounds(pivot)
        piece = self._values[start:end]
        mask = piece < pivot
        split = start + int(mask.sum())
        if 0 < len(piece):
            self._values[start:end] = np.concatenate((piece[mask], piece[~mask]))
            self.work_counter += len(piece)
            if OBS.enabled:
                OBS.metrics.counter("store.crack.operations").inc()
                OBS.metrics.histogram(
                    "store.crack.piece_elements",
                    buckets=(8, 64, 512, 4_096, 32_768, 262_144, 2_097_152),
                ).record(len(piece))
        insort(self._pivots, pivot)
        self._positions.insert(bisect_left(self._pivots, pivot), split)
        return split

    def range_query(self, lo: float, hi: float) -> np.ndarray:
        """All values ``v`` with ``lo <= v < hi`` (a contiguous slice view)."""
        if hi < lo:
            raise ValueError("range_query requires lo <= hi")
        self.query_counter += 1
        if not OBS.enabled:
            start = self._crack(lo)
            end = self._crack(hi)
            return self._values[start:end]
        with OBS.tracer.span("store.crack.range_query", lo=lo, hi=hi) as span:
            work_before = self.work_counter
            start = self._crack(lo)
            end = self._crack(hi)
            span.set_attribute("partitioned", self.work_counter - work_before)
            span.set_attribute("pieces", self.piece_count)
        return self._values[start:end]

    def range_count(self, lo: float, hi: float) -> int:
        return len(self.range_query(lo, hi))

    def range_sum(self, lo: float, hi: float) -> float:
        return float(self.range_query(lo, hi).sum())

    def check_invariants(self) -> None:
        """Verify every crack point's partition property (for tests)."""
        for pivot, position in zip(self._pivots, self._positions):
            left = self._values[:position]
            right = self._values[position:]
            if len(left) and left.max() >= pivot:
                raise AssertionError(f"values left of pivot {pivot} not all < pivot")
            if len(right) and right.min() < pivot:
                raise AssertionError(f"values right of pivot {pivot} not all >= pivot")
        if self._positions != sorted(self._positions):
            raise AssertionError("crack positions not monotone")


# Column orders per access path, mirroring the paged store's permutations.
_STORE_PERMS = {
    "spo": (0, 1, 2),
    "pos": (1, 2, 0),
    "osp": (2, 0, 1),
}


class CrackingTripleStore:
    """Adaptive columnar triple store over dictionary-encoded id arrays.

    The cracking idea applied at store granularity (survey §2: the dynamic
    setting "prevents a preprocessing phase"): triples live in one flat
    ``(n, 3)`` int64 array, and the sorted orders the three access paths
    need (SPO, POS, OSP) are built *lazily*, each the first time a query
    actually touches that path — a workload that only ever scans by
    predicate never pays for the other two sorts. ``add_all`` appends and
    invalidates, so load → explore → load cycles re-pay only the orders
    the next exploration phase uses.

    Implements both the :class:`~repro.store.base.TripleSource` protocol
    (decoded triples) and the :class:`~repro.store.base.IdScanSource`
    capability (sorted id runs for the vectorized engine), which makes it
    the cheapest substrate for scan+join-heavy workloads: every pattern
    scan is a binary search plus a contiguous slice of an int64 matrix.
    """

    def __init__(self, triples: Iterable[Triple] | None = None) -> None:
        self.dictionary = TermDictionary()
        self._ids = np.empty((0, 3), dtype=np.int64)
        self._id_set: set[tuple[int, int, int]] = set()  # O(1) dedup on add
        self._pending: list[tuple[int, int, int]] = []
        self._sorted: dict[str, np.ndarray] = {}  # access path -> sorted rows
        self.sorts_paid = 0  # how many access-path orders were ever built
        self._stats: StatisticsSnapshot | None = None
        if triples is not None:
            self.add_all(triples)

    # -- mutation ----------------------------------------------------------

    def add(self, triple: Triple) -> bool:
        """Buffer one triple; returns True if the store changed."""
        ids = self.dictionary.encode_triple(triple)
        if ids in self._id_set:
            return False
        self._id_set.add(ids)
        self._pending.append(ids)
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        return sum(1 for t in triples if self.add(t))

    def _flush(self) -> None:
        """Fold buffered rows into the id matrix, dropping stale orders."""
        if not self._pending:
            return
        fresh = np.array(self._pending, dtype=np.int64)
        self._ids = np.concatenate([self._ids, fresh]) if len(self._ids) else fresh
        self._pending.clear()
        self._sorted.clear()
        self._stats = None

    # -- sorted-order management -------------------------------------------

    def _sorted_rows(self, perm_name: str) -> np.ndarray:
        """The id matrix sorted by the access path's key order (cached)."""
        self._flush()
        rows = self._sorted.get(perm_name)
        if rows is None:
            c0, c1, c2 = _STORE_PERMS[perm_name]
            # np.lexsort sorts by the *last* key first.
            order = np.lexsort((self._ids[:, c2], self._ids[:, c1], self._ids[:, c0]))
            rows = np.ascontiguousarray(self._ids[order])
            self._sorted[perm_name] = rows
            self.sorts_paid += 1
            if OBS.enabled:
                OBS.metrics.counter(
                    "store.crack.path_sorts", permutation=perm_name
                ).inc()
        return rows

    def _plan(self, s: int | None, p: int | None, o: int | None) -> tuple[str, tuple[int, ...]]:
        if s is not None:
            if p is not None:
                return "spo", (s, p) + ((o,) if o is not None else ())
            if o is not None:
                return "osp", (o, s)
            return "spo", (s,)
        if p is not None:
            return "pos", (p,) + ((o,) if o is not None else ())
        if o is not None:
            return "osp", (o,)
        return "spo", ()

    def _prefix_slice(
        self, perm_name: str, prefix: tuple[int, ...]
    ) -> tuple[np.ndarray, int, int]:
        """Rows sorted by ``perm_name`` plus the [lo, hi) range matching ``prefix``."""
        rows = self._sorted_rows(perm_name)
        columns = _STORE_PERMS[perm_name]
        lo, hi = 0, len(rows)
        for depth, bound in enumerate(prefix):
            column = rows[lo:hi, columns[depth]]
            lo, hi = (
                lo + int(np.searchsorted(column, bound, side="left")),
                lo + int(np.searchsorted(column, bound, side="right")),
            )
            if lo >= hi:
                break
        return rows, lo, hi

    # -- IdScanSource capability -------------------------------------------

    def match_id_batches(
        self,
        s: int | None,
        p: int | None,
        o: int | None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> Iterator[np.ndarray]:
        self._flush()
        if not len(self._ids):
            return
        perm_name, prefix = self._plan(s, p, o)
        rows, lo, hi = self._prefix_slice(perm_name, prefix)
        for start in range(lo, hi, batch_size):
            yield rows[start : min(start + batch_size, hi)]

    def distinct_ids(
        self, s: int | None, p: int | None, o: int | None, position: int
    ) -> np.ndarray:
        self._flush()
        if not len(self._ids):
            return np.empty(0, dtype=np.int64)
        perm_name, prefix = self._plan(s, p, o)
        rows, lo, hi = self._prefix_slice(perm_name, prefix)
        if lo >= hi:
            return np.empty(0, dtype=np.int64)
        column = rows[lo:hi, position]
        # If `position` is the next key component after the bound prefix the
        # slice is already sorted; np.unique sorts anyway, cheaply for runs.
        return np.unique(column)

    # -- TripleSource protocol ---------------------------------------------

    def triples(self, pattern: TriplePattern = (None, None, None)) -> Iterator[Triple]:
        ids: list[int | None] = []
        for term in pattern:
            if term is None:
                ids.append(None)
            else:
                term_id = self.dictionary.lookup(term)
                if term_id is None:
                    return
                ids.append(term_id)
        decode = self.dictionary.decode_triple
        for batch in self.match_id_batches(ids[0], ids[1], ids[2]):
            for s_id, p_id, o_id in batch.tolist():
                yield decode((s_id, p_id, o_id))

    def count(self, pattern: TriplePattern = (None, None, None)) -> int:
        self._flush()
        if pattern == (None, None, None):
            return len(self._ids)
        ids = []
        for term in pattern:
            if term is None:
                ids.append(None)
            else:
                term_id = self.dictionary.lookup(term)
                if term_id is None:
                    return 0
                ids.append(term_id)
        # Every bound combination maps to a permutation where the bound ids
        # form a contiguous prefix, so counting is two binary searches.
        perm_name, prefix = self._plan(ids[0], ids[1], ids[2])
        _, lo, hi = self._prefix_slice(perm_name, prefix)
        return hi - lo

    def __len__(self) -> int:
        self._flush()
        return len(self._ids)

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    # -- statistics ---------------------------------------------------------

    def statistics(self) -> StatisticsSnapshot:
        """Snapshot computed with three vectorized unique passes."""
        self._flush()
        if self._stats is None:
            if not len(self._ids):
                self._stats = StatisticsSnapshot(0, 0, 0, 0, {})
            else:
                predicates, counts = np.unique(self._ids[:, 1], return_counts=True)
                # distinct objects per predicate: unique (p, o) pairs, then
                # a per-predicate count over the deduplicated pairs
                pairs = np.unique(self._ids[:, 1:3], axis=0)
                pair_preds, pair_counts = np.unique(
                    pairs[:, 0], return_counts=True
                )
                decode = self.dictionary.decode
                self._stats = StatisticsSnapshot(
                    triple_count=len(self._ids),
                    distinct_subjects=int(len(np.unique(self._ids[:, 0]))),
                    distinct_predicates=int(len(predicates)),
                    distinct_objects=int(len(np.unique(self._ids[:, 2]))),
                    predicate_cardinalities={
                        decode(int(pid)): int(card)
                        for pid, card in zip(predicates, counts)
                    },
                    predicate_distinct_objects={
                        decode(int(pid)): int(card)
                        for pid, card in zip(pair_preds, pair_counts)
                    },
                )
        return self._stats


class FullSortColumn:
    """Reference strategy: sort everything before the first query."""

    def __init__(self, values: Sequence[float] | np.ndarray) -> None:
        self._values = np.sort(np.asarray(values, dtype=np.float64))
        # Sorting is ~n log2 n element moves; charged as up-front work.
        n = len(self._values)
        self.work_counter = int(n * max(1.0, np.log2(max(n, 2))))
        self.query_counter = 0

    def range_query(self, lo: float, hi: float) -> np.ndarray:
        if hi < lo:
            raise ValueError("range_query requires lo <= hi")
        self.query_counter += 1
        start = int(np.searchsorted(self._values, lo, side="left"))
        end = int(np.searchsorted(self._values, hi, side="left"))
        return self._values[start:end]

    def range_count(self, lo: float, hi: float) -> int:
        return len(self.range_query(lo, hi))


class ScanColumn:
    """Reference strategy: no index at all; every query scans the column."""

    def __init__(self, values: Sequence[float] | np.ndarray) -> None:
        self._values = np.asarray(values, dtype=np.float64).copy()
        self.work_counter = 0
        self.query_counter = 0

    def range_query(self, lo: float, hi: float) -> np.ndarray:
        if hi < lo:
            raise ValueError("range_query requires lo <= hi")
        self.query_counter += 1
        self.work_counter += len(self._values)
        return self._values[(self._values >= lo) & (self._values < hi)]

    def range_count(self, lo: float, hi: float) -> int:
        return len(self.range_query(lo, hi))
