"""Storage layer: dictionary encoding, indexed memory store, disk paging,
and adaptive (cracking) indexes.

Pick the store that matches the scale:

* :class:`~repro.rdf.graph.Graph` — small graphs, maximal convenience.
* :class:`MemoryStore` — dictionary-encoded indexes, several× smaller.
* :class:`PagedTripleStore` — disk-resident with an LRU buffer pool;
  resident memory is O(pool), the survey's Section 4 recommendation.
* :class:`CrackedColumn` — adaptive numeric index for exploration sessions
  with no preprocessing window (Section 2's dynamic setting).
"""

from .base import (
    StatisticsSnapshot,
    StoreStatistics,
    TripleSource,
    compute_statistics,
)
from .cracking import CrackedColumn, FullSortColumn, ScanColumn
from .dictionary import TermDictionary, decode_term, encode_term
from .federated import FederatedStore, SourceStats
from .memory import MemoryStore
from .paged import BufferPoolStats, LRUBufferPool, PagedTripleStore

__all__ = [
    "BufferPoolStats",
    "CrackedColumn",
    "FederatedStore",
    "FullSortColumn",
    "LRUBufferPool",
    "MemoryStore",
    "PagedTripleStore",
    "ScanColumn",
    "SourceStats",
    "StatisticsSnapshot",
    "StoreStatistics",
    "TermDictionary",
    "TripleSource",
    "compute_statistics",
    "decode_term",
    "encode_term",
]
