"""Storage layer: dictionary encoding, indexed memory store, disk paging,
and adaptive (cracking) indexes.

Pick the store that matches the scale:

* :class:`~repro.rdf.graph.Graph` — small graphs, maximal convenience.
* :class:`MemoryStore` — dictionary-encoded indexes, several× smaller.
* :class:`PagedTripleStore` — disk-resident with an LRU buffer pool;
  resident memory is O(pool), the survey's Section 4 recommendation.
* :class:`CrackedColumn` — adaptive numeric index for exploration sessions
  with no preprocessing window (Section 2's dynamic setting).
* :class:`CrackingTripleStore` — columnar id-triple store whose per-access-
  path sort orders are built lazily by the workload itself.

Stores that can serve sorted id runs additionally implement the
:class:`IdScanSource` capability (probe with :func:`as_id_scan_source`),
which the vectorized SPARQL engine (:mod:`repro.sparql.vectorized`) lowers
BGPs onto; federation and remote-endpoint views deliberately don't, and
execution falls back to the streaming iterator operators there.
"""

from .base import (
    IdScanSource,
    StatisticsSnapshot,
    StoreStatistics,
    TripleSource,
    as_id_scan_source,
    compute_statistics,
)
from .cracking import CrackedColumn, CrackingTripleStore, FullSortColumn, ScanColumn
from .dictionary import TermDictionary, decode_term, encode_term
from .federated import FederatedStore, SourceStats
from .memory import MemoryStore
from .paged import BufferPoolStats, LRUBufferPool, PagedTripleStore

__all__ = [
    "BufferPoolStats",
    "CrackedColumn",
    "CrackingTripleStore",
    "FederatedStore",
    "FullSortColumn",
    "IdScanSource",
    "LRUBufferPool",
    "MemoryStore",
    "PagedTripleStore",
    "ScanColumn",
    "SourceStats",
    "StatisticsSnapshot",
    "StoreStatistics",
    "TermDictionary",
    "TripleSource",
    "as_id_scan_source",
    "compute_statistics",
    "decode_term",
    "encode_term",
]
