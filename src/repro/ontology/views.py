"""Ontology visualization views (survey §3.5).

Adapters from the extracted :class:`~repro.ontology.extract.OntologySummary`
to the three visual paradigms the survey distinguishes:

* **node-link** (VOWL [100], KC-Viz, OntoGraf): a
  :class:`~repro.graph.model.PropertyGraph` laid out with the layered
  (Sugiyama) layout;
* **geometric containment** (CropCircles [137]): a
  :class:`~repro.viz.cropcircles.HierarchyNode` tree;
* **hybrid matrices** (OntoTrix [14]): instance graph + class communities
  through :mod:`repro.viz.nodetrix`.
"""

from __future__ import annotations

from ..graph.model import PropertyGraph
from ..rdf.terms import IRI
from ..viz.cropcircles import HierarchyNode
from .extract import OntologySummary

__all__ = ["ontology_graph", "ontology_tree", "vowl_spec"]

_SYNTHETIC_ROOT = IRI("urn:repro:ontology-root")


def ontology_graph(summary: OntologySummary) -> PropertyGraph:
    """Node-link view: classes as nodes, subclass edges, property links."""
    graph = PropertyGraph()
    for iri, info in summary.classes.items():
        graph.add_node(iri)
        graph.set_attribute(iri, "label", info.label)
        graph.set_attribute(iri, "instances", info.instance_count)
    for iri, info in summary.classes.items():
        for parent in info.parents:
            graph.add_edge(iri, parent, label="subClassOf")
    for prop, domain, range_ in summary.properties:
        if domain is not None and range_ is not None and domain != range_:
            if domain in summary.classes and range_ in summary.classes:
                graph.add_edge(domain, range_, label=str(prop))
    return graph


def ontology_tree(summary: OntologySummary, max_depth: int = 10) -> HierarchyNode:
    """Containment view input: the class forest under one root.

    Multi-parent classes appear under their first parent only (containment
    is a tree); multiple roots hang under a synthetic "Ontology" root.
    """
    def build(iri: IRI, depth: int, seen: frozenset[IRI]) -> HierarchyNode:
        info = summary.classes[iri]
        children = []
        if depth < max_depth:
            for child in info.children:
                child_info = summary.classes.get(child)
                if child_info is None or child in seen:
                    continue
                if child_info.parents and child_info.parents[0] != iri:
                    continue  # shown under its primary parent
                children.append(build(child, depth + 1, seen | {child}))
        return HierarchyNode(label=info.label, children=children)

    roots = [build(r, 1, frozenset({r})) for r in summary.roots]
    if len(roots) == 1:
        return roots[0]
    return HierarchyNode(label="Ontology", children=roots)


def vowl_spec(summary: OntologySummary) -> dict:
    """A VOWL-like declarative description (class/property lists with
    visual hints), serializable to JSON for external renderers."""
    return {
        "classes": [
            {
                "iri": str(info.iri),
                "label": info.label,
                "instances": info.instance_count,
                "radius_hint": 10 + min(info.instance_count, 100) ** 0.5,
            }
            for info in sorted(summary.classes.values(), key=lambda i: str(i.iri))
        ],
        "subclass_edges": [
            {"child": str(iri), "parent": str(parent)}
            for iri, info in sorted(summary.classes.items())
            for parent in info.parents
        ],
        "properties": [
            {
                "iri": str(prop),
                "domain": str(domain) if domain else None,
                "range": str(range_) if range_ else None,
            }
            for prop, domain, range_ in summary.properties
        ],
    }
