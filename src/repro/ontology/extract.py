"""Ontology extraction from RDF schema triples (survey §3.5).

The ontology visualization systems (VOWL, KC-Viz, CropCircles, Knoocks,
OntoTrix, ...) all start from the same skeleton: the ``rdfs:subClassOf``
class hierarchy annotated with instance counts, plus property
domain/range links. This module pulls that skeleton out of any triple
source, tolerating the messiness of real LOD (multiple roots, cycles,
classes that are never declared).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rdf.terms import IRI, Subject
from ..rdf.vocab import OWL, RDF, RDFS
from ..store.base import TripleSource

__all__ = ["ClassInfo", "OntologySummary", "extract_ontology"]


@dataclass
class ClassInfo:
    """One class: its place in the hierarchy and its instance count."""

    iri: IRI
    label: str
    parents: list[IRI] = field(default_factory=list)
    children: list[IRI] = field(default_factory=list)
    instance_count: int = 0


@dataclass
class OntologySummary:
    """The extracted schema skeleton."""

    classes: dict[IRI, ClassInfo]
    roots: list[IRI]
    properties: list[tuple[IRI, IRI | None, IRI | None]]  # (property, domain, range)

    @property
    def class_count(self) -> int:
        return len(self.classes)

    def depth(self) -> int:
        """Longest root→leaf path (cycle-safe)."""
        best = 0
        for root in self.roots:
            stack = [(root, 1, frozenset({root}))]
            while stack:
                node, depth, seen = stack.pop()
                best = max(best, depth)
                for child in self.classes[node].children:
                    if child not in seen:
                        stack.append((child, depth + 1, seen | {child}))
        return best

    def subtree_instances(self, cls: IRI) -> int:
        """Instances of ``cls`` and all (transitive) subclasses."""
        total = 0
        stack = [cls]
        seen: set[IRI] = set()
        while stack:
            node = stack.pop()
            if node in seen or node not in self.classes:
                continue
            seen.add(node)
            total += self.classes[node].instance_count
            stack.extend(self.classes[node].children)
        return total


def extract_ontology(store: TripleSource) -> OntologySummary:
    """Build the class hierarchy + property summary from schema triples.

    Classes are discovered from ``rdfs:subClassOf`` edges, explicit
    ``rdf:type rdfs:Class / owl:Class`` declarations, and usage as an
    ``rdf:type`` object. Multiple roots are preserved (views add a
    synthetic root if they need a tree).
    """
    classes: dict[IRI, ClassInfo] = {}

    def ensure(cls: Subject) -> ClassInfo | None:
        if not isinstance(cls, IRI):
            return None
        info = classes.get(cls)
        if info is None:
            info = ClassInfo(iri=cls, label=cls.local_name or str(cls))
            classes[cls] = info
        return info

    for s, _, o in store.triples((None, RDFS.subClassOf, None)):
        child = ensure(s)
        parent = ensure(o)
        if child is None or parent is None or child is parent:
            continue
        if parent.iri not in child.parents:
            child.parents.append(parent.iri)
        if child.iri not in parent.children:
            parent.children.append(child.iri)

    for class_type in (RDFS.Class, OWL.Class):
        for s, _, _ in store.triples((None, RDF.type, class_type)):
            ensure(s)

    for _, _, o in store.triples((None, RDF.type, None)):
        if isinstance(o, IRI) and o not in (RDFS.Class, OWL.Class):
            info = ensure(o)
            if info is not None:
                info.instance_count += 1

    for info in classes.values():
        label = None
        for _, _, o in store.triples((info.iri, RDFS.label, None)):
            from ..rdf.terms import Literal

            if isinstance(o, Literal):
                label = o.lexical
                break
        if label:
            info.label = label
        info.parents.sort()
        info.children.sort()

    roots = sorted(iri for iri, info in classes.items() if not info.parents)

    properties: list[tuple[IRI, IRI | None, IRI | None]] = []
    declared: set[IRI] = set()
    for property_type in (RDF.Property, OWL.ObjectProperty, OWL.DatatypeProperty):
        for s, _, _ in store.triples((None, RDF.type, property_type)):
            if isinstance(s, IRI):
                declared.add(s)
    for prop in sorted(declared):
        domain = None
        range_ = None
        for _, _, o in store.triples((prop, RDFS.domain, None)):
            if isinstance(o, IRI):
                domain = o
                break
        for _, _, o in store.triples((prop, RDFS.range, None)):
            if isinstance(o, IRI):
                range_ = o
                break
        properties.append((prop, domain, range_))

    return OntologySummary(classes=classes, roots=roots, properties=properties)
