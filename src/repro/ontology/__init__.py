"""Ontology extraction and visualization views (survey §3.5)."""

from .extract import ClassInfo, OntologySummary, extract_ontology
from .keyconcepts import key_concepts, summary_subhierarchy
from .views import ontology_graph, ontology_tree, vowl_spec

__all__ = [
    "ClassInfo",
    "OntologySummary",
    "extract_ontology",
    "key_concepts",
    "summary_subhierarchy",
    "ontology_graph",
    "ontology_tree",
    "vowl_spec",
]
