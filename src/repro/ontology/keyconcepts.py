"""Key-concept extraction for ontology summarization (KC-Viz [104]).

Survey §3.5: KC-Viz offers "a novel approach to visualizing and navigating
ontologies" built on *key concept extraction* — show the ~N most
informative classes first, instead of the whole hierarchy. The published
criteria blend popularity and structural importance; this implementation
scores each class by

* **coverage** — instances in its subtree (popularity),
* **density** — direct children (structural richness),
* **depth centrality** — middle layers beat the trivial root/leaves.

Scores are normalized and mixed; the top-k induce the summary view.
"""

from __future__ import annotations

from ..rdf.terms import IRI
from .extract import OntologySummary

__all__ = ["key_concepts", "summary_subhierarchy"]


def key_concepts(
    summary: OntologySummary,
    k: int = 8,
    coverage_weight: float = 0.5,
    density_weight: float = 0.3,
    depth_weight: float = 0.2,
) -> list[tuple[IRI, float]]:
    """The ``k`` highest-scoring classes with their scores, descending."""
    if k < 1:
        raise ValueError("k must be positive")
    classes = summary.classes
    if not classes:
        return []

    depths: dict[IRI, int] = {}
    for root in summary.roots:
        stack = [(root, 0)]
        while stack:
            node, depth = stack.pop()
            if node in depths and depths[node] <= depth:
                continue
            depths[node] = depth
            for child in classes[node].children:
                stack.append((child, depth + 1))
    max_depth = max(depths.values(), default=0) or 1

    coverages = {iri: summary.subtree_instances(iri) for iri in classes}
    max_coverage = max(coverages.values(), default=0) or 1
    max_density = max((len(info.children) for info in classes.values()), default=0) or 1

    scored: list[tuple[IRI, float]] = []
    for iri, info in classes.items():
        coverage = coverages[iri] / max_coverage
        density = len(info.children) / max_density
        # middle-depth bonus: 1 at the centre, 0 at root and deepest leaves
        depth = depths.get(iri, 0)
        centrality = 1.0 - abs(depth / max_depth - 0.5) * 2.0 if max_depth else 0.0
        score = (
            coverage_weight * coverage
            + density_weight * density
            + depth_weight * centrality
        )
        scored.append((iri, score))
    scored.sort(key=lambda pair: (-pair[1], str(pair[0])))
    return scored[:k]


def summary_subhierarchy(
    summary: OntologySummary, concepts: list[IRI]
) -> dict[IRI, list[IRI]]:
    """Parent→children map over the chosen concepts only.

    A concept's summary-parent is its nearest ancestor that is also a key
    concept (KC-Viz's "flattening" of skipped levels); orphans map from the
    synthetic key ``None``-like root (omitted — they appear as keys with no
    parent entry).
    """
    chosen = set(concepts)
    children_of: dict[IRI, list[IRI]] = {iri: [] for iri in concepts}
    for iri in concepts:
        ancestor = None
        frontier = list(summary.classes[iri].parents)
        seen: set[IRI] = set()
        while frontier:
            candidate = frontier.pop(0)
            if candidate in seen:
                continue
            seen.add(candidate)
            if candidate in chosen:
                ancestor = candidate
                break
            frontier.extend(summary.classes.get(candidate, _EMPTY).parents)
        if ancestor is not None:
            children_of[ancestor].append(iri)
    for members in children_of.values():
        members.sort()
    return children_of


class _Empty:
    parents: list[IRI] = []


_EMPTY = _Empty()
