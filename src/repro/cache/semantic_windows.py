"""Semantic-window region caching (Kalinin et al. [76]).

Survey §4 cites Semantic Windows among the caching techniques to exploit:
exploration queries are *regions*; a new region contained in previously
explored territory can be answered from cached results instead of the
store. :class:`RegionCache` keeps (rectangle → items) entries and answers

* **containment hits** — the query is inside one cached window: filter its
  items, no store access;
* **partial hits** — cached windows cover part of the query: fetch only
  the uncovered remainder (here: fall back to a full fetch but report the
  overlap, which is what a paging layer would exploit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..graph.spatial import Rect

__all__ = ["RegionCache", "RegionQueryStats"]

Item = tuple[float, float, object]  # x, y, payload


@dataclass
class RegionQueryStats:
    containment_hits: int = 0
    misses: int = 0

    @property
    def requests(self) -> int:
        return self.containment_hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.containment_hits / self.requests if self.requests else 0.0


@dataclass
class RegionCache:
    """A bounded cache of explored rectangular regions and their items."""

    loader: Callable[[Rect], Iterable[Item]]
    capacity: int = 16
    windows: list[tuple[Rect, list[Item]]] = field(default_factory=list)
    stats: RegionQueryStats = field(default_factory=RegionQueryStats)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("capacity must be positive")

    def query(self, region: Rect) -> list[Item]:
        """Items inside ``region``, served from a covering window if any."""
        for index, (window, items) in enumerate(self.windows):
            if _covers(window, region):
                self.stats.containment_hits += 1
                # refresh recency
                self.windows.append(self.windows.pop(index))
                return [
                    item for item in items if region.contains_point(item[0], item[1])
                ]
        self.stats.misses += 1
        items = list(self.loader(region))
        self.windows.append((region, items))
        if len(self.windows) > self.capacity:
            self.windows.pop(0)
        return items

    def coverage_of(self, region: Rect) -> float:
        """Fraction of ``region``'s area inside some cached window (upper
        bound via the best single window — the prefetching signal)."""
        area = _area(region)
        if area == 0:
            return 1.0 if any(_covers(w, region) for w, _ in self.windows) else 0.0
        best = 0.0
        for window, _ in self.windows:
            overlap = _intersection_area(window, region)
            best = max(best, overlap / area)
        return min(best, 1.0)

    def __len__(self) -> int:
        return len(self.windows)


def _covers(outer: Rect, inner: Rect) -> bool:
    return (
        outer.x0 <= inner.x0
        and outer.y0 <= inner.y0
        and outer.x1 >= inner.x1
        and outer.y1 >= inner.y1
    )


def _area(rect: Rect) -> float:
    return max(rect.x1 - rect.x0, 0.0) * max(rect.y1 - rect.y0, 0.0)


def _intersection_area(a: Rect, b: Rect) -> float:
    width = min(a.x1, b.x1) - max(a.x0, b.x0)
    height = min(a.y1, b.y1) - max(a.y0, b.y0)
    return max(width, 0.0) * max(height, 0.0)
