"""Tile prefetching for pan/zoom exploration (ForeCache [16] style).

Battle et al.'s ForeCache predicts the user's next tile requests from
recent movement and fetches them ahead of time, hiding latency during
panning. :class:`TilePrefetcher` implements the two classic signals:

* **momentum** — the user keeps panning in the same direction, so fetch
  the tiles one step further along the recent displacement vector;
* **neighborhood** — regardless of direction, the immediate ring around
  the current viewport is likely next (covers direction changes & zooms).

The prefetcher wraps a :class:`~repro.cache.result_cache.ResultCache` and
a loader; benchmark C9 replays session traces through it and compares
hit rates/latency against no-cache and cache-only configurations.
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..obs import OBS, record_error
from .result_cache import ResultCache

__all__ = ["TilePrefetcher"]

Tile = tuple[int, int]


class TilePrefetcher:
    """Predictive tile fetching over a bounded cache.

    Speculative loads are best-effort: a loader failure during prefetch
    must never break the demand request that triggered it, so it is caught
    and accounted in the ``obs.errors`` telemetry counter (labelled with
    the exception type) instead of propagating — or being silently
    swallowed. Demand loads still raise to the caller.
    """

    def __init__(
        self,
        loader: Callable[[Tile], object],
        cache_capacity: int = 64,
        momentum_depth: int = 2,
        neighborhood: bool = True,
    ) -> None:
        if momentum_depth < 0:
            raise ValueError("momentum_depth must be >= 0")
        self.loader = loader
        self.cache = ResultCache(cache_capacity, policy="lru", name="tile.prefetch")
        self.momentum_depth = momentum_depth
        self.neighborhood = neighborhood
        self._previous_request: set[Tile] | None = None
        self._direction: tuple[int, int] = (0, 0)
        self.loads = 0  # actual loader invocations
        self.prefetch_loads = 0  # loader invocations done speculatively
        self.prefetch_errors = 0  # speculative loads that raised

    # -- serving ------------------------------------------------------------

    def _fetch(self, tile: Tile, speculative: bool = False) -> object:
        def load() -> object:
            self.loads += 1
            if speculative:
                self.prefetch_loads += 1
            return self.loader(tile)

        return self.cache.get_or_compute(tile, load)

    def request(self, tiles: Iterable[Tile]) -> list[object]:
        """Serve one viewport's tile set, then prefetch for the next one."""
        tiles = list(tiles)
        results = [self._fetch(tile) for tile in tiles]
        self._update_direction(set(tiles))
        self._prefetch(set(tiles))
        return results

    # -- prediction ------------------------------------------------------------

    def _update_direction(self, current: set[Tile]) -> None:
        if self._previous_request:
            cx = _centroid(current)
            px = _centroid(self._previous_request)
            self._direction = (_sign(cx[0] - px[0]), _sign(cx[1] - px[1]))
        self._previous_request = current

    def _predict(self, current: set[Tile]) -> list[Tile]:
        predicted: list[Tile] = []
        dx, dy = self._direction
        if (dx, dy) != (0, 0):
            for step in range(1, self.momentum_depth + 1):
                for tx, ty in current:
                    predicted.append((tx + dx * step, ty + dy * step))
        if self.neighborhood:
            for tx, ty in current:
                predicted.extend(
                    (tx + ox, ty + oy)
                    for ox in (-1, 0, 1)
                    for oy in (-1, 0, 1)
                    if (ox, oy) != (0, 0)
                )
        seen: set[Tile] = set()
        unique = []
        for tile in predicted:
            if tile not in current and tile not in seen and tile[0] >= 0 and tile[1] >= 0:
                seen.add(tile)
                unique.append(tile)
        return unique

    def _prefetch(self, current: set[Tile]) -> None:
        speculated = 0
        for tile in self._predict(current):
            if tile not in self.cache:
                try:
                    self._fetch(tile, speculative=True)
                except Exception as exc:
                    # Speculative work is disposable: count the failure in
                    # telemetry, keep serving the user's actual request.
                    self.prefetch_errors += 1
                    record_error("cache.prefetch", exc)
                    continue
                speculated += 1
        if speculated and OBS.enabled:
            OBS.metrics.counter(
                "cache.prefetch.speculative_loads", cache=self.cache.name
            ).inc(speculated)

    # -- reporting ---------------------------------------------------------------

    @property
    def demand_hit_rate(self) -> float:
        """Hit rate excluding speculative fills (what the user feels)."""
        demand_requests = self.cache.stats.requests - self.prefetch_loads
        demand_hits = self.cache.stats.hits
        return demand_hits / demand_requests if demand_requests > 0 else 0.0


def _centroid(tiles: set[Tile]) -> tuple[float, float]:
    n = len(tiles)
    return (sum(t[0] for t in tiles) / n, sum(t[1] for t in tiles) / n)


def _sign(x: float) -> int:
    if x > 1e-9:
        return 1
    if x < -1e-9:
        return -1
    return 0
