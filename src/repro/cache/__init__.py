"""Caching & prefetching (survey §4's latency-hiding recommendation)."""

from .prefetch import TilePrefetcher
from .semantic_windows import RegionCache, RegionQueryStats
from .result_cache import CacheStats, ResultCache

__all__ = [
    "CacheStats",
    "RegionCache",
    "RegionQueryStats",
    "ResultCache",
    "TilePrefetcher",
]
