"""Result caching with LRU / LFU policies.

Survey Section 4: "also caching and prefetching techniques may be
exploited; e.g., [128, 76, 70, 16, 33, 83, 39]". :class:`ResultCache` is
the generic keyed cache the exploration layers put in front of expensive
operations (window queries, facet counts, SPARQL results); its statistics
feed benchmark C9.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, TypeVar

from ..obs import OBS

__all__ = ["CacheStats", "ResultCache"]

V = TypeVar("V")

_SENTINEL = object()


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


class ResultCache:
    """Bounded keyed cache; eviction policy ``"lru"`` or ``"lfu"``.

    ``name`` labels the cache in the telemetry registry: when global
    tracing is on, hits/misses/evictions are mirrored into the
    ``cache.hits`` / ``cache.misses`` / ``cache.evictions`` counters with
    ``cache=<name>``, alongside the always-on local :class:`CacheStats`.
    """

    def __init__(self, capacity: int, policy: str = "lru",
                 name: str = "result") -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        if policy not in ("lru", "lfu"):
            raise ValueError("policy must be 'lru' or 'lfu'")
        self.capacity = capacity
        self.policy = policy
        self.name = name
        self._data: OrderedDict[Hashable, object] = OrderedDict()
        self._frequency: dict[Hashable, int] = {}
        self.stats = CacheStats()

    def _record(self, outcome: str) -> None:
        OBS.metrics.counter(f"cache.{outcome}", cache=self.name).inc()

    def get(self, key: Hashable, default: object = None) -> object:
        value = self._data.get(key, _SENTINEL)
        if value is _SENTINEL:
            self.stats.misses += 1
            if OBS.enabled:
                self._record("misses")
            return default
        self.stats.hits += 1
        if OBS.enabled:
            self._record("hits")
        self._touch(key)
        return value

    def put(self, key: Hashable, value: object) -> None:
        if key not in self._data and len(self._data) >= self.capacity:
            self._evict()
        self._data[key] = value
        self._touch(key)

    def get_or_compute(self, key: Hashable, compute: Callable[[], V]) -> V:
        """The memoization workhorse: one lookup, one fill on miss."""
        value = self._data.get(key, _SENTINEL)
        if value is not _SENTINEL:
            self.stats.hits += 1
            if OBS.enabled:
                self._record("hits")
            self._touch(key)
            return value  # type: ignore[return-value]
        self.stats.misses += 1
        if OBS.enabled:
            self._record("misses")
        computed = compute()
        if len(self._data) >= self.capacity:
            self._evict()
        self._data[key] = computed
        self._touch(key)
        return computed

    def _touch(self, key: Hashable) -> None:
        self._data.move_to_end(key)
        self._frequency[key] = self._frequency.get(key, 0) + 1

    def _evict(self) -> None:
        if self.policy == "lru":
            victim, _ = self._data.popitem(last=False)
        else:  # lfu: least frequent, ties broken by recency (oldest first)
            victim = min(self._data, key=lambda k: (self._frequency[k],))
            del self._data[victim]
        self._frequency.pop(victim, None)
        self.stats.evictions += 1
        if OBS.enabled:
            self._record("evictions")

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()
        self._frequency.clear()
