"""Cube → visualization bindings (CubeViz's chart panel).

CubeViz "provides data visualizations using different types of charts
(line, bar, column, area and pie)" over a selected slice. These helpers
turn rolled-up cube data into :class:`~repro.viz.datamodel.DataTable`s and
render the corresponding charts.
"""

from __future__ import annotations

from ..viz.charts import ChartConfig, bar_chart, line_chart, pie_chart
from ..viz.datamodel import DataTable
from .model import DataCube
from .ops import rollup

__all__ = ["cube_to_table", "cube_bar_chart", "cube_pie_chart", "cube_line_chart"]


def cube_to_table(cube: DataCube) -> DataTable:
    """All observations as a typed table (for the recommender)."""
    return DataTable.from_rows(cube.observations)


def _grouped_table(cube: DataCube, dimension: str, measure: str, aggregate: str) -> DataTable:
    if measure not in cube.measure_keys:
        raise KeyError(f"unknown measure {measure!r}")
    grouped = rollup(cube, keep=[dimension], aggregate=aggregate)
    return DataTable.from_rows(grouped)


def cube_bar_chart(
    cube: DataCube, dimension: str, measure: str,
    aggregate: str = "sum", config: ChartConfig | None = None,
) -> str:
    """One bar per member of ``dimension``, ``measure`` aggregated."""
    table = _grouped_table(cube, dimension, measure, aggregate)
    return bar_chart(table, dimension, measure, config or ChartConfig(title=cube.label))


def cube_pie_chart(
    cube: DataCube, dimension: str, measure: str,
    aggregate: str = "sum", config: ChartConfig | None = None,
) -> str:
    table = _grouped_table(cube, dimension, measure, aggregate)
    return pie_chart(table, dimension, measure, config or ChartConfig(title=cube.label))


def cube_line_chart(
    cube: DataCube, dimension: str, measure: str,
    aggregate: str = "sum", config: ChartConfig | None = None,
) -> str:
    """Measure over an ordered (e.g. year) dimension."""
    grouped = rollup(cube, keep=[dimension], aggregate=aggregate)
    # coerce dimension members to numbers when they look numeric (years)
    for row in grouped:
        value = row.get(dimension)
        if isinstance(value, str) and value.replace(".", "", 1).isdigit():
            row[dimension] = float(value)
    table = DataTable.from_rows(grouped)
    return line_chart(table, dimension, measure, config or ChartConfig(title=cube.label))
