"""RDF Data Cube model (W3C QB vocabulary) — survey Section 3.3.

CubeViz [43], the OpenCube Toolkit [75], LDCE [79], and the Payola cube
plugin [60] all browse statistical WoD published as ``qb:DataSet``s.
:class:`DataCube` parses the structure definition (dimensions + measures)
and the observations into a tabular form the OLAP operations in
:mod:`repro.cube.ops` and the chart bindings consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rdf.terms import IRI, Literal, Subject
from ..rdf.vocab import QB, RDFS
from ..store.base import TripleSource

__all__ = ["DataCube", "discover_datasets"]


def discover_datasets(store: TripleSource) -> list[Subject]:
    """All ``qb:DataSet`` resources in the store."""
    return sorted(
        (s for s, _, _ in store.triples((None, None, QB.DataSet))
         if _is_type_triple(store, s)),
        key=str,
    )


def _is_type_triple(store: TripleSource, subject: Subject) -> bool:
    from ..rdf.vocab import RDF

    return any(True for _ in store.triples((subject, RDF.type, QB.DataSet)))


@dataclass
class DataCube:
    """One parsed QB dataset."""

    dataset: Subject
    label: str
    dimensions: list[IRI] = field(default_factory=list)
    measures: list[IRI] = field(default_factory=list)
    observations: list[dict[str, object]] = field(default_factory=list)

    @classmethod
    def from_store(cls, store: TripleSource, dataset: Subject) -> "DataCube":
        """Parse structure (via the DSD's component specs) and observations."""
        from ..rdf.vocab import RDF

        label = str(dataset)
        for _, _, o in store.triples((dataset, RDFS.label, None)):
            if isinstance(o, Literal):
                label = o.lexical
        dsd = None
        for _, _, o in store.triples((dataset, QB.structure, None)):
            dsd = o
        dimensions: list[IRI] = []
        measures: list[IRI] = []
        if dsd is not None:
            for _, _, component in store.triples((dsd, QB.component, None)):
                for _, _, dim in store.triples((component, QB.dimension, None)):
                    if isinstance(dim, IRI):
                        dimensions.append(dim)
                for _, _, measure in store.triples((component, QB.measure, None)):
                    if isinstance(measure, IRI):
                        measures.append(measure)
        dimensions.sort()
        measures.sort()

        observations: list[dict[str, object]] = []
        for obs, _, _ in store.triples((None, QB.dataSet, dataset)):
            row: dict[str, object] = {}
            for _, p, o in store.triples((obs, None, None)):
                if p in (RDF.type, QB.dataSet):
                    continue
                key = _component_key(p)
                row[key] = o.value if isinstance(o, Literal) else str(o)
            if row:
                observations.append(row)
        observations.sort(key=lambda r: tuple(str(r.get(_component_key(d))) for d in dimensions))
        return cls(
            dataset=dataset,
            label=label,
            dimensions=dimensions,
            measures=measures,
            observations=observations,
        )

    @property
    def dimension_keys(self) -> list[str]:
        return [_component_key(d) for d in self.dimensions]

    @property
    def measure_keys(self) -> list[str]:
        return [_component_key(m) for m in self.measures]

    def dimension_members(self, dimension: str) -> list[object]:
        """Distinct values of one dimension (by key or full IRI)."""
        key = _component_key(IRI(dimension)) if dimension.startswith("http") else dimension
        if key not in self.dimension_keys:
            raise KeyError(f"unknown dimension {dimension!r}")
        return sorted({row.get(key) for row in self.observations if key in row}, key=str)

    def __len__(self) -> int:
        return len(self.observations)


def _component_key(predicate: IRI) -> str:
    """Short column key for a component property IRI."""
    return predicate.local_name or str(predicate)
