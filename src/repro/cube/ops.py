"""OLAP-style operations over parsed data cubes.

The OpenCube Browser shows cubes as two-dimensional slices; LDCE "allows
users to explore and analyse statistical datasets" — which means slice,
dice, roll-up, and pivot. All operations return plain data (new observation
lists or matrices); chart bindings live in :mod:`repro.cube.bindings`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import replace
from typing import Callable, Sequence

from .model import DataCube

__all__ = ["slice_cube", "dice_cube", "rollup", "pivot_table"]

_AGGREGATORS: dict[str, Callable[[list[float]], float]] = {
    "sum": sum,
    "avg": lambda values: sum(values) / len(values),
    "min": min,
    "max": max,
    "count": len,
}


def slice_cube(cube: DataCube, dimension: str, member: object) -> DataCube:
    """Fix one dimension to one member; the result drops that dimension."""
    if dimension not in cube.dimension_keys:
        raise KeyError(f"unknown dimension {dimension!r}")
    rows = [
        {k: v for k, v in row.items() if k != dimension}
        for row in cube.observations
        if row.get(dimension) == member
    ]
    remaining = [d for d in cube.dimensions if d.local_name != dimension]
    return replace(cube, dimensions=remaining, observations=rows)


def dice_cube(cube: DataCube, selections: dict[str, Sequence[object]]) -> DataCube:
    """Keep observations whose dimension values fall in the given subsets."""
    for dimension in selections:
        if dimension not in cube.dimension_keys:
            raise KeyError(f"unknown dimension {dimension!r}")
    allowed = {d: set(members) for d, members in selections.items()}
    rows = [
        row
        for row in cube.observations
        if all(row.get(d) in members for d, members in allowed.items())
    ]
    return replace(cube, observations=rows)


def rollup(
    cube: DataCube, keep: Sequence[str], aggregate: str = "sum"
) -> list[dict[str, object]]:
    """Aggregate measures over all dimensions not in ``keep``.

    Returns plain grouped rows: one per distinct combination of the kept
    dimensions, measures aggregated with ``sum``/``avg``/``min``/``max``/
    ``count``.
    """
    if aggregate not in _AGGREGATORS:
        raise ValueError(f"unknown aggregator {aggregate!r}; use {sorted(_AGGREGATORS)}")
    for dimension in keep:
        if dimension not in cube.dimension_keys:
            raise KeyError(f"unknown dimension {dimension!r}")
    aggregator = _AGGREGATORS[aggregate]
    groups: dict[tuple, list[dict[str, object]]] = defaultdict(list)
    for row in cube.observations:
        key = tuple(row.get(d) for d in keep)
        groups[key].append(row)
    result = []
    for key, members in sorted(groups.items(), key=lambda kv: tuple(map(str, kv[0]))):
        out: dict[str, object] = dict(zip(keep, key))
        for measure in cube.measure_keys:
            values = [
                float(m[measure]) for m in members
                if isinstance(m.get(measure), (int, float))
            ]
            if values:
                out[measure] = aggregator(values)
        result.append(out)
    return result


def pivot_table(
    cube: DataCube,
    row_dim: str,
    col_dim: str,
    measure: str,
    aggregate: str = "sum",
) -> tuple[list[object], list[object], list[list[float | None]]]:
    """The OpenCube Browser's 2-D table: rows × columns of one measure.

    Returns ``(row_members, col_members, matrix)`` with ``None`` where no
    observation exists.
    """
    if measure not in cube.measure_keys:
        raise KeyError(f"unknown measure {measure!r}")
    rows = cube.dimension_members(row_dim)
    cols = cube.dimension_members(col_dim)
    grouped = rollup(cube, keep=[row_dim, col_dim], aggregate=aggregate)
    lookup = {
        (entry[row_dim], entry[col_dim]): entry.get(measure) for entry in grouped
    }
    matrix: list[list[float | None]] = [
        [lookup.get((r, c)) for c in cols] for r in rows
    ]
    return rows, cols, matrix
