"""Statistical Linked Data: the RDF Data Cube stack (survey §3.3)."""

from .bindings import cube_bar_chart, cube_line_chart, cube_pie_chart, cube_to_table
from .model import DataCube, discover_datasets
from .ops import dice_cube, pivot_table, rollup, slice_cube

__all__ = [
    "DataCube",
    "cube_bar_chart",
    "cube_line_chart",
    "cube_pie_chart",
    "cube_to_table",
    "dice_cube",
    "discover_datasets",
    "pivot_table",
    "rollup",
    "slice_cube",
]
