"""CLI: ``python -m repro.analysis [paths...]``.

Exit codes: 0 clean; 1 unsuppressed findings (or unparseable files);
2 only stale baseline entries (every finding suppressed, but the
baseline excuses violations that no longer exist — remove them).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .baseline import Baseline, BaselineResult
from .core import all_rules, run_paths
from .report import render_json, render_text

DEFAULT_BASELINE = "analysis-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant checker (rules RPA001-RPA007).",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze "
                             "(default: src)")
    parser.add_argument("--root", default=None,
                        help="project root findings are relative to "
                             "(default: current directory)")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--baseline", default=None,
                        help=f"baseline file (default: {DEFAULT_BASELINE} "
                             "next to --root when present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings as the new baseline "
                             "and exit 0")
    parser.add_argument("--json", dest="json_path", default=None,
                        metavar="FILE",
                        help="write the JSON report to FILE ('-' for "
                             "stdout)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--verbose", action="store_true",
                        help="also print baselined findings")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule_id, cls in all_rules().items():
            print(f"{rule_id}  {cls.name:<16} {cls.description}")
        return 0

    root = Path(args.root).resolve() if args.root else Path.cwd()
    rule_ids = None
    if args.rules:
        rule_ids = [rid.strip() for rid in args.rules.split(",")
                    if rid.strip()]

    started = time.perf_counter()
    result = run_paths(args.paths, root=root, rule_ids=rule_ids)
    elapsed_ms = (time.perf_counter() - started) * 1e3

    baseline_path: Path | None = None
    if not args.no_baseline:
        if args.baseline:
            baseline_path = Path(args.baseline)
        else:
            candidate = root / DEFAULT_BASELINE
            if candidate.is_file():
                baseline_path = candidate

    if args.write_baseline:
        target = Path(args.baseline) if args.baseline \
            else root / DEFAULT_BASELINE
        Baseline.from_findings(result.findings).save(target)
        print(f"wrote {len(result.findings)} suppression(s) to {target}")
        return 0

    if baseline_path is not None:
        try:
            baseline = Baseline.load(baseline_path)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        split = baseline.apply(result.findings)
    else:
        split = BaselineResult(new=list(result.findings))

    if args.json_path:
        report = render_json(result, split)
        if args.json_path == "-":
            sys.stdout.write(report)
        else:
            Path(args.json_path).write_text(report, encoding="utf-8")

    text = render_text(result, split, verbose=args.verbose)
    print(text)
    print(f"analyzed in {elapsed_ms:.1f} ms")

    if split.new or result.parse_errors:
        return 1
    if split.stale:
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
