"""Text and JSON reporters for checker runs."""

from __future__ import annotations

import json

from .baseline import BaselineResult
from .core import AnalysisResult, Finding

__all__ = ["render_text", "render_json"]


def render_text(result: AnalysisResult, split: BaselineResult,
                verbose: bool = False) -> str:
    lines: list[str] = []
    for finding in result.parse_errors:
        lines.append(finding.render())
    for finding in split.new:
        lines.append(finding.render())
    if verbose and split.baselined:
        lines.append(f"-- {len(split.baselined)} baselined finding(s) "
                     "suppressed --")
        lines.extend(finding.render() for finding in split.baselined)
    for entry in split.stale:
        lines.append(
            "stale baseline entry (no longer fires — remove it): "
            f"{entry.get('rule')} {entry.get('path')} "
            f"{entry.get('symbol') or entry.get('snippet')}"
        )
    summary = (
        f"{result.files_scanned} file(s) scanned: "
        f"{len(split.new)} finding(s), "
        f"{len(split.baselined)} baselined, "
        f"{len(result.suppressed)} noqa-suppressed, "
        f"{len(split.stale)} stale baseline entr(ies), "
        f"{len(result.parse_errors)} unparseable"
    )
    lines.append(summary)
    return "\n".join(lines)


def _finding_dicts(findings: list[Finding]) -> list[dict[str, object]]:
    return [finding.to_dict() for finding in findings]


def render_json(result: AnalysisResult, split: BaselineResult) -> str:
    payload = {
        "version": 1,
        "files_scanned": result.files_scanned,
        "findings": _finding_dicts(split.new),
        "baselined": _finding_dicts(split.baselined),
        "noqa_suppressed": _finding_dicts(result.suppressed),
        "stale_baseline_entries": split.stale,
        "parse_errors": _finding_dicts(result.parse_errors),
        "counts": {
            "findings": len(split.new),
            "baselined": len(split.baselined),
            "noqa_suppressed": len(result.suppressed),
            "stale": len(split.stale),
            "parse_errors": len(result.parse_errors),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
