"""Committed baseline of grandfathered findings, with stale detection.

The baseline is a reviewable JSON file mapping finding *identities*
(rule + path + symbol + snippet — line numbers excluded so reflowing a
file does not invalidate it) to suppression entries. Applying it splits a
run's findings into *new* (fail the gate) and *baselined* (pass, for
now); entries that no longer match anything are *stale* and fail CI, so
a fixed violation must be removed from the baseline in the same change.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .core import Finding

__all__ = ["Baseline", "BaselineResult"]

FORMAT_VERSION = 1


@dataclass
class BaselineResult:
    """Findings split against a baseline."""

    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale: list[dict[str, object]] = field(default_factory=list)


class Baseline:
    """A multiset of suppression keys (identical findings may repeat)."""

    def __init__(self, entries: list[dict[str, object]] | None = None
                 ) -> None:
        self.entries = entries or []

    @classmethod
    def from_findings(cls, findings: list[Finding],
                      reason: str = "grandfathered") -> "Baseline":
        entries = [
            {
                "rule": finding.rule,
                "path": finding.path,
                "symbol": finding.symbol,
                "snippet": finding.snippet.strip(),
                "reason": reason,
            }
            for finding in findings
        ]
        return cls(entries)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(data, dict) or "suppressions" not in data:
            raise ValueError(
                f"{path}: not a baseline file (missing 'suppressions')"
            )
        return cls(list(data["suppressions"]))

    def save(self, path: str | Path) -> None:
        payload = {
            "version": FORMAT_VERSION,
            "suppressions": sorted(
                self.entries,
                key=lambda e: (e.get("path", ""), e.get("rule", ""),
                               e.get("symbol", "")),
            ),
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @staticmethod
    def _entry_key(entry: dict[str, object]) -> str:
        return "::".join((
            str(entry.get("rule", "")), str(entry.get("path", "")),
            str(entry.get("symbol", "")), str(entry.get("snippet", "")),
        ))

    def apply(self, findings: list[Finding]) -> BaselineResult:
        budget: dict[str, list[dict[str, object]]] = {}
        for entry in self.entries:
            budget.setdefault(self._entry_key(entry), []).append(entry)
        result = BaselineResult()
        for finding in findings:
            matches = budget.get(finding.key)
            if matches:
                matches.pop()
                result.baselined.append(finding)
            else:
                result.new.append(finding)
        for leftovers in budget.values():
            result.stale.extend(leftovers)
        result.stale.sort(key=self._entry_key)
        return result

    def __len__(self) -> int:
        return len(self.entries)
