"""Core of the invariant checker: findings, file context, rule registry.

The checker is a plain :mod:`ast` walk — no imports of the analyzed code,
no type inference — so it runs on any tree in milliseconds and cannot be
broken by import-time side effects. Each rule sees a :class:`FileContext`
(parsed tree, parent links, source lines, comment map) and yields
:class:`Finding` records; cross-file rules accumulate state on the shared
:class:`ProjectContext` and report from :meth:`Rule.finish`.

Two suppression mechanisms exist, both explicit and reviewable:

* inline ``# repro: noqa(RPA001)`` on the offending line (or alone on the
  line directly above) — for violations that are *intentional*, with the
  reason in the trailing comment text;
* a committed baseline file (:mod:`repro.analysis.baseline`) — for
  *grandfathered* findings awaiting a fix. CI fails when a baseline entry
  goes stale, so suppressions cannot outlive the code they excuse.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

__all__ = [
    "Finding",
    "FileContext",
    "ProjectContext",
    "Rule",
    "AnalysisResult",
    "register",
    "all_rules",
    "run_paths",
    "dotted_name",
]

NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\(([A-Z0-9_,\s]+)\))?")


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored for humans (line) and for the baseline
    (rule + path + symbol + snippet, all line-number independent)."""

    rule: str
    path: str  # project-relative, posix separators
    line: int
    message: str
    snippet: str = ""
    symbol: str = ""  # enclosing qualname, e.g. "FlightRecorder.dump"

    @property
    def key(self) -> str:
        """Stable identity used by baseline matching (survives reflow)."""
        return "::".join(
            (self.rule, self.path, self.symbol, self.snippet.strip())
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
            "snippet": self.snippet,
        }

    def render(self) -> str:
        location = f"{self.path}:{self.line}"
        text = f"{location}: {self.rule} {self.message}"
        if self.snippet.strip():
            text += f"\n    {self.snippet.strip()}"
        return text


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for Name/Attribute chains, ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif isinstance(node, ast.Call):
        # e.g. ``self.cache.stats().hits`` — opaque base, keep the tail
        parts.append("()")
    else:
        return None
    return ".".join(reversed(parts))


class FileContext:
    """Everything a rule needs about one source file."""

    def __init__(self, path: Path, relpath: str, source: str,
                 tree: ast.Module, project: "ProjectContext") -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.project = project
        self.module = relpath[:-3].replace("/", ".") \
            if relpath.endswith(".py") else relpath
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self.comments = self._collect_comments(source)

    @staticmethod
    def _collect_comments(source: str) -> dict[int, str]:
        comments: dict[int, str] = {}
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for token in tokens:
                if token.type == tokenize.COMMENT:
                    comments[token.start[0]] = token.string
        except (tokenize.TokenError, IndentationError):
            # A file that parsed but does not tokenize cleanly keeps its
            # findings; it just loses comment-based escapes.
            return comments
        return comments

    # -- tree navigation ---------------------------------------------------

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor,
                          (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def enclosing_class(self, node: ast.AST) -> ast.ClassDef | None:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None

    def qualname(self, node: ast.AST) -> str:
        """Dotted path of enclosing class/function defs, innermost last."""
        parts: list[str] = []
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                parts.append(ancestor.name)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            parts.insert(0, node.name)
        return ".".join(reversed(parts))

    # -- source access -----------------------------------------------------

    def snippet(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def comment_in_range(self, first: int, last: int,
                         pattern: re.Pattern[str]) -> bool:
        return any(
            pattern.search(self.comments[line])
            for line in range(first, last + 1)
            if line in self.comments
        )

    # -- noqa --------------------------------------------------------------

    def noqa_rules(self, lineno: int) -> set[str] | None:
        """Rules suppressed at ``lineno``; empty set = all rules; None =
        no suppression. A comment-only line directly above also applies,
        so 79-column lines keep their escape readable."""
        for candidate in (lineno, lineno - 1):
            comment = self.comments.get(candidate)
            if comment is None:
                continue
            if candidate != lineno:
                # the line above only counts when it is comment-only
                stripped = self.lines[candidate - 1].strip()
                if not stripped.startswith("#"):
                    continue
            match = NOQA_RE.search(comment)
            if match:
                if match.group(1):
                    return {
                        rule.strip()
                        for rule in match.group(1).split(",")
                        if rule.strip()
                    }
                return set()
        return None

    def make_finding(self, rule: str, node: ast.AST, message: str,
                     symbol: str | None = None) -> Finding:
        lineno = getattr(node, "lineno", 1)
        return Finding(
            rule=rule,
            path=self.relpath,
            line=lineno,
            message=message,
            snippet=self.snippet(lineno),
            symbol=symbol if symbol is not None else self.qualname(node),
        )


class ProjectContext:
    """Cross-file state: the root, the scanned files, shared rule scratch
    space (e.g. the global lock-nesting graph), and cached baselines."""

    def __init__(self, root: Path) -> None:
        self.root = root
        self.files: list[FileContext] = []
        self.state: dict[str, object] = {}
        self._bench_cache: dict[Path, frozenset[str] | None] = {}

    def bench_keys(self, start: Path, filename: str) -> frozenset[str] | None:
        """Top-level keys of the committed ``filename`` bench baseline,
        searched upward from ``start`` to the project root; ``None`` when
        no committed file exists (the rule then skips, it does not guess).
        """
        import json

        directory = start if start.is_dir() else start.parent
        candidates = [directory, *directory.parents]
        for candidate in candidates:
            path = candidate / filename
            if path in self._bench_cache:
                return self._bench_cache[path]
            if path.is_file():
                try:
                    data = json.loads(path.read_text(encoding="utf-8"))
                    keys = frozenset(data) if isinstance(data, dict) \
                        else frozenset()
                except (OSError, ValueError):
                    keys = frozenset()
                self._bench_cache[path] = keys
                return keys
            if candidate == self.root:
                break
        return None


class Rule:
    """One invariant. Subclasses set the id/name/description and implement
    :meth:`check`; cross-file rules also implement :meth:`finish`."""

    id: str = "RPA000"
    name: str = ""
    description: str = ""

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def finish(self, project: ProjectContext) -> Iterable[Finding]:
        return ()


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rules() -> dict[str, type[Rule]]:
    # Import for the registration side effect; cheap and idempotent.
    from . import rules  # noqa: F401  (registration import)

    return dict(sorted(_REGISTRY.items()))


@dataclass
class AnalysisResult:
    """One checker run: what fired, what inline-noqa ate, what broke."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    parse_errors: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors


def discover_files(paths: Iterable[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if "__pycache__" not in candidate.parts
                and not any(part.startswith(".") for part in candidate.parts)
            )
        elif path.suffix == ".py":
            files.append(path)
    return files


def run_paths(
    paths: Iterable[str | Path],
    root: str | Path | None = None,
    rule_ids: Iterable[str] | None = None,
    progress: Callable[[str], None] | None = None,
) -> AnalysisResult:
    """Run the registered rules over ``paths`` and apply inline noqa.

    ``root`` anchors relative paths in findings (defaults to the current
    directory); baseline subtraction is the CLI's job, not this one's.
    """
    root_path = Path(root).resolve() if root is not None else Path.cwd()
    registry = all_rules()
    if rule_ids is not None:
        unknown = set(rule_ids) - set(registry)
        if unknown:
            raise KeyError(f"unknown rule ids: {sorted(unknown)}")
        registry = {rid: registry[rid] for rid in rule_ids}
    rules = [cls() for cls in registry.values()]

    project = ProjectContext(root_path)
    result = AnalysisResult()
    raw: list[tuple[FileContext, Finding]] = []

    for file_path in discover_files(Path(p) for p in paths):
        resolved = file_path.resolve()
        try:
            relpath = resolved.relative_to(root_path).as_posix()
        except ValueError:
            relpath = file_path.as_posix()
        try:
            source = resolved.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(resolved))
        except (OSError, SyntaxError, ValueError) as exc:
            result.parse_errors.append(Finding(
                rule="RPA000", path=relpath, line=getattr(exc, "lineno", 1)
                or 1, message=f"file could not be analyzed: {exc}",
            ))
            continue
        ctx = FileContext(resolved, relpath, source, tree, project)
        project.files.append(ctx)
        result.files_scanned += 1
        if progress is not None:
            progress(relpath)
        for rule in rules:
            for finding in rule.check(ctx):
                raw.append((ctx, finding))

    contexts = {ctx.relpath: ctx for ctx in project.files}
    for rule in rules:
        for finding in rule.finish(project):
            raw.append((contexts.get(finding.path, project.files[0]
                        if project.files else None), finding))

    for ctx, finding in raw:
        suppressed_rules = ctx.noqa_rules(finding.line) \
            if ctx is not None else None
        if suppressed_rules is not None and (
            not suppressed_rules or finding.rule in suppressed_rules
        ):
            result.suppressed.append(finding)
        else:
            result.findings.append(finding)
    result.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    result.suppressed.sort(key=lambda f: (f.path, f.line, f.rule))
    return result
