"""Observability rules: disabled-mode fast paths and exception routing.

* **RPA003** — instrumentation calls (``OBS.metrics``/``OBS.tracer``/
  ``OBS.progress``/``OBS.flight``/``OBS.querylog``/``OBS.interaction``)
  inside per-row hot functions (operator ``__next__``/``_run``/
  ``execute``/``__iter__`` and ``*_batches`` loops) must sit behind an
  enabled check, preserving PR 2's ~0.07% disabled-overhead budget.
* **RPA005** — an ``except`` handler that swallows silently (body of
  ``pass``/``continue``/constant assignments only) must route through the
  ``obs.errors`` counter (:func:`repro.obs.record_error` or a wired
  ``error_counter``) or carry an explicit ``# repro: swallow(<why>)``
  idempotency comment.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..core import FileContext, Finding, Rule, dotted_name, register

# Per-row / per-batch functions where an unguarded instrumentation call
# costs on every iteration of the disabled path.
HOT_FUNCTION_NAMES = frozenset({"__next__", "_run", "execute", "__iter__"})
HOT_FUNCTION_SUFFIX = "_batches"

# OBS.<surface> calls that allocate/lock/record and therefore need the
# guard; record_error is exempt by design (always-on, rare by contract).
INSTRUMENTED_SURFACES = frozenset({
    "metrics", "tracer", "progress", "flight", "querylog", "interaction",
})

SWALLOW_RE = re.compile(r"#\s*repro:\s*swallow\(")

# Exceptions that are iteration/generator control flow, not errors:
# catching and discarding them is the *meaning* of the construct.
CONTROL_FLOW_EXCEPTIONS = frozenset({
    "StopIteration", "StopAsyncIteration", "GeneratorExit",
})


def _is_hot_function(name: str) -> bool:
    return name in HOT_FUNCTION_NAMES or name.endswith(HOT_FUNCTION_SUFFIX)


def _mentions_enabled(node: ast.AST, local_flags: set[str]) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute) and child.attr == "enabled":
            return True
        if isinstance(child, ast.Name) and child.id in local_flags:
            return True
    return False


@register
class ObsFastPathRule(Rule):
    id = "RPA003"
    name = "obs-fast-path"
    description = (
        "instrumentation calls in operator __next__/_run/execute/__iter__ "
        "and *_batches loops are guarded by an enabled check (disabled-"
        "mode overhead budget)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for function in ast.walk(ctx.tree):
            if not isinstance(function, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                continue
            if not _is_hot_function(function.name):
                continue
            yield from self._check_function(ctx, function)

    def _check_function(
        self, ctx: FileContext,
        function: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Finding]:
        local_flags = self._local_enabled_names(function)
        early_exit_lines = self._early_exit_lines(function, local_flags)
        for node in ast.walk(function):
            if not isinstance(node, ast.Call):
                continue
            surface = self._instrumented_surface(node)
            if surface is None:
                continue
            if self._guarded(ctx, node, function, local_flags):
                continue
            if any(line < node.lineno for line in early_exit_lines):
                continue
            yield ctx.make_finding(
                self.id, node,
                f"'OBS.{surface}' call in hot function "
                f"'{function.name}' is not behind an enabled check; "
                "wrap it in 'if OBS.enabled:' to keep the disabled "
                "fast path free",
            )

    @staticmethod
    def _instrumented_surface(call: ast.Call) -> str | None:
        dotted = dotted_name(call.func)
        if dotted is None:
            return None
        parts = dotted.split(".")
        if len(parts) >= 2 and parts[0] == "OBS" \
                and parts[1] in INSTRUMENTED_SURFACES:
            return parts[1]
        return None

    @staticmethod
    def _local_enabled_names(function: ast.AST) -> set[str]:
        """Locals assigned from an expression reading ``.enabled`` — the
        ``logging = log.enabled; if logging:`` idiom."""
        flags: set[str] = set()
        for node in ast.walk(function):
            if isinstance(node, ast.Assign) and _mentions_enabled(
                    node.value, set()):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        flags.add(target.id)
        return flags

    @staticmethod
    def _guarded(ctx: FileContext, node: ast.AST, function: ast.AST,
                 local_flags: set[str]) -> bool:
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, (ast.If, ast.IfExp)) \
                    and _mentions_enabled(ancestor.test, local_flags):
                return True
            if ancestor is function:
                break
        return False

    @staticmethod
    def _early_exit_lines(function: ast.AST,
                          local_flags: set[str]) -> list[int]:
        """Lines of ``if not <...enabled...>: return/continue/raise`` —
        everything after one is on the enabled path."""
        lines: list[int] = []
        for node in ast.walk(function):
            if not isinstance(node, ast.If) or node.orelse:
                continue
            if not isinstance(node.test, ast.UnaryOp) \
                    or not isinstance(node.test.op, ast.Not):
                continue
            if not _mentions_enabled(node.test.operand, local_flags):
                continue
            if node.body and isinstance(
                    node.body[-1], (ast.Return, ast.Continue, ast.Raise)):
                lines.append(node.lineno)
        return lines


@register
class SwallowRoutingRule(Rule):
    id = "RPA005"
    name = "swallow-routing"
    description = (
        "silent 'except ...: pass' swallows route the exception through "
        "the obs.errors counter (record_error / error_counter) or carry "
        "a '# repro: swallow(<why>)' idempotency comment"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_silent(node):
                continue
            if self._control_flow_only(node):
                continue
            last_line = node.end_lineno or node.lineno
            if ctx.comment_in_range(node.lineno, last_line, SWALLOW_RE):
                continue
            caught = self._caught_name(node)
            yield ctx.make_finding(
                self.id, node,
                f"'except {caught}' swallows silently: count it via "
                "record_error(...) / the wired error_counter, or mark "
                "the swallow idempotent with '# repro: swallow(<why>)'",
            )

    @staticmethod
    def _caught_name(node: ast.ExceptHandler) -> str:
        if node.type is None:
            return "BaseException"
        if isinstance(node.type, ast.Tuple):
            names = [dotted_name(elt) or "?" for elt in node.type.elts]
            return "(" + ", ".join(names) + ")"
        return dotted_name(node.type) or "<dynamic>"

    @staticmethod
    def _control_flow_only(node: ast.ExceptHandler) -> bool:
        if node.type is None:
            return False
        types = node.type.elts if isinstance(node.type, ast.Tuple) \
            else [node.type]
        names = [dotted_name(t) for t in types]
        return all(
            name is not None
            and name.split(".")[-1] in CONTROL_FLOW_EXCEPTIONS
            for name in names
        )

    @classmethod
    def _is_silent(cls, node: ast.ExceptHandler) -> bool:
        """True when every statement discards the exception without a
        trace: pass/continue/break, or assignments of plain constants
        (the ``value = None`` fallback shape)."""
        return all(cls._is_silent_stmt(stmt) for stmt in node.body)

    @staticmethod
    def _is_silent_stmt(stmt: ast.stmt) -> bool:
        if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
            return True
        if isinstance(stmt, ast.Expr) \
                and isinstance(stmt.value, ast.Constant):
            return True  # stray docstring / ellipsis
        if isinstance(stmt, ast.Assign):
            return isinstance(stmt.value, ast.Constant)
        if isinstance(stmt, ast.AnnAssign):
            return stmt.value is None \
                or isinstance(stmt.value, ast.Constant)
        return False
