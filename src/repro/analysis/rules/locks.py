"""Lock-discipline rules: guarded-by fields, lock ordering, thread lifecycle.

These are the invariants the sharded execution engine (ROADMAP item 1)
will lean on: 12+ modules already share state under ``threading.Lock``
by convention only. The rules make the conventions mechanical:

* **RPA001** — a field initialized with a ``# guarded-by: _lock`` comment
  may only be touched inside ``with self._lock`` in that class.
  ``__init__`` is exempt (construction happens-before sharing), as are
  methods named ``*_locked`` — the suffix is the contract that the
  caller already holds the lock.
* **RPA002** — the static nesting graph of ``with <lock>`` blocks must be
  acyclic; a cycle (including ``with self._lock`` nested in itself — a
  guaranteed deadlock on a non-reentrant Lock) is a deadlock candidate.
* **RPA006** — every ``threading.Thread`` must be daemon or provably
  joined, so process exit and test teardown cannot hang on a forgotten
  worker.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from ..core import FileContext, Finding, ProjectContext, Rule, dotted_name
from ..core import register

GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_]\w*)")

# Attribute / variable names treated as locks by RPA002's nesting graph.
LOCK_NAME_RE = re.compile(r"lock", re.IGNORECASE)


def _with_lock_names(node: ast.With | ast.AsyncWith) -> list[str]:
    """Dotted names of lock-like context managers entered by ``node``."""
    names: list[str] = []
    for item in node.items:
        dotted = dotted_name(item.context_expr)
        if dotted is not None and LOCK_NAME_RE.search(dotted.split(".")[-1]):
            names.append(dotted)
    return names


def _self_attribute(node: ast.AST) -> str | None:
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


@register
class GuardedByRule(Rule):
    id = "RPA001"
    name = "guarded-by"
    description = (
        "fields declared '# guarded-by: <lock>' are only touched inside "
        "'with self.<lock>' in their class (__init__ and '*_locked' "
        "helper methods exempt)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _declarations(self, ctx: FileContext,
                      cls: ast.ClassDef) -> dict[str, str]:
        """``{field: lock}`` from ``self.X = ... # guarded-by: _lock``."""
        guarded: dict[str, str] = {}
        for node in ast.walk(cls):
            if isinstance(node, ast.Assign):
                targets: Iterable[ast.AST] = node.targets
            elif isinstance(node, ast.AnnAssign):
                targets = (node.target,)
            else:
                continue
            match = None
            for line in range(node.lineno, (node.end_lineno or node.lineno)
                              + 1):
                comment = ctx.comments.get(line)
                if comment:
                    match = GUARDED_BY_RE.search(comment)
                    if match:
                        break
            if match is None:
                continue
            for target in targets:
                attr = _self_attribute(target)
                if attr is not None:
                    guarded[attr] = match.group(1)
        return guarded

    def _check_class(self, ctx: FileContext,
                     cls: ast.ClassDef) -> Iterator[Finding]:
        guarded = self._declarations(ctx, cls)
        if not guarded:
            return
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            if method.name in ("__init__", "__new__"):
                continue
            if method.name.endswith("_locked"):
                # naming contract: the caller already holds the lock
                continue
            for node in ast.walk(method):
                attr = _self_attribute(node)
                if attr is None or attr not in guarded:
                    continue
                lock = guarded[attr]
                if self._held(ctx, node, method, lock):
                    continue
                yield ctx.make_finding(
                    self.id, node,
                    f"'self.{attr}' is guarded by 'self.{lock}' but "
                    f"accessed outside 'with self.{lock}' in "
                    f"{cls.name}.{method.name}",
                    symbol=f"{cls.name}.{method.name}.{attr}",
                )

    @staticmethod
    def _held(ctx: FileContext, node: ast.AST,
              method: ast.AST, lock: str) -> bool:
        want = f"self.{lock}"
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, (ast.With, ast.AsyncWith)):
                for item in ancestor.items:
                    if dotted_name(item.context_expr) == want:
                        return True
            if ancestor is method:
                break
        return False


@register
class LockOrderRule(Rule):
    id = "RPA002"
    name = "lock-order"
    description = (
        "the static nesting graph of 'with <lock>' blocks is acyclic "
        "(cycles are deadlock candidates; self-nesting a non-reentrant "
        "Lock is a guaranteed one)"
    )

    STATE_KEY = "rpa002.edges"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        edges = ctx.project.state.setdefault(self.STATE_KEY, {})
        assert isinstance(edges, dict)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            inner = [self._lock_key(ctx, node, name)
                     for name in _with_lock_names(node)]
            if not inner:
                continue
            site = (ctx.relpath, node.lineno,
                    ctx.qualname(node) or ctx.module)
            held = self._held_locks(ctx, node)
            for held_key in held:
                for inner_key in inner:
                    edges.setdefault((held_key, inner_key), site)
            # ``with a, b:`` acquires left to right: same ordering edge.
            for first, second in zip(inner, inner[1:]):
                edges.setdefault((first, second), site)
        return iter(())

    def _held_locks(self, ctx: FileContext,
                    node: ast.With | ast.AsyncWith) -> list[str]:
        held: list[str] = []
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, (ast.With, ast.AsyncWith)):
                held.extend(self._lock_key(ctx, ancestor, name)
                            for name in _with_lock_names(ancestor))
        return held

    @staticmethod
    def _lock_key(ctx: FileContext, node: ast.AST, dotted: str) -> str:
        """Lock identity: class-qualified for ``self.*``, module-qualified
        for globals — so the graph merges acquisition sites of one lock
        across methods and files."""
        if dotted.startswith("self."):
            cls = ctx.enclosing_class(node)
            owner = cls.name if cls is not None else ctx.module
            return f"{owner}.{dotted[5:]}"
        return f"{ctx.module}.{dotted}"

    def finish(self, project: ProjectContext) -> Iterator[Finding]:
        edges = project.state.get(self.STATE_KEY, {})
        assert isinstance(edges, dict)
        graph: dict[str, set[str]] = {}
        for (src, dst) in edges:
            graph.setdefault(src, set()).add(dst)
            graph.setdefault(dst, set())
        cyclic_edges = _edges_in_cycles(graph)
        for edge in sorted(cyclic_edges):
            src, dst = edge
            path, line, symbol = edges[edge]
            yield Finding(
                rule=self.id, path=path, line=line,
                message=(
                    f"lock nesting '{src}' -> '{dst}' participates in a "
                    "cycle: deadlock candidate (pick one global order or "
                    "release before acquiring)"
                ),
                snippet="", symbol=f"{symbol}:{src}->{dst}",
            )


def _edges_in_cycles(graph: dict[str, set[str]]) -> set[tuple[str, str]]:
    """Edges inside a strongly connected component (incl. self-loops)."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[set[str]] = []
    counter = [0]

    def strongconnect(v: str) -> None:
        # Iterative Tarjan: (node, iterator) pairs to survive deep graphs.
        work = [(v, iter(graph[v]))]
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(graph[succ])))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component: set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)

    for vertex in graph:
        if vertex not in index:
            strongconnect(vertex)

    bad: set[tuple[str, str]] = set()
    for component in components:
        multi = len(component) > 1
        for src in component:
            for dst in graph[src]:
                if dst == src or (multi and dst in component):
                    bad.add((src, dst))
    return bad


@register
class ThreadLifecycleRule(Rule):
    id = "RPA006"
    name = "thread-lifecycle"
    description = (
        "every threading.Thread is daemon=True or provably joined (a "
        ".join() on the attribute it was stored into / appended to, in "
        "the same class or module)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        threads = [node for node in ast.walk(ctx.tree)
                   if isinstance(node, ast.Call)
                   and dotted_name(node.func) in ("threading.Thread",
                                                  "Thread")]
        for call in threads:
            if self._daemon_kwarg(call):
                continue
            scope = ctx.enclosing_class(call) or ctx.tree
            sinks = self._sinks(ctx, call)
            if sinks and self._joined_or_daemonized(scope, sinks):
                continue
            yield ctx.make_finding(
                self.id, call,
                "threading.Thread is neither daemon=True nor joined: "
                "store it and .join() it (or append to a joined list), "
                "else shutdown can hang on it",
            )

    @staticmethod
    def _daemon_kwarg(call: ast.Call) -> bool:
        for keyword in call.keywords:
            if keyword.arg == "daemon" and isinstance(
                    keyword.value, ast.Constant):
                return bool(keyword.value.value)
        return False

    @staticmethod
    def _sinks(ctx: FileContext, call: ast.Call) -> set[str]:
        """Dotted names the thread object lands in: the assignment target
        and, when the local is appended to a container, that container."""
        sinks: set[str] = set()
        parent = ctx.parent(call)
        local: str | None = None
        if isinstance(parent, (ast.ListComp, ast.SetComp,
                               ast.GeneratorExp)):
            # threads = [Thread(...) for _ in range(n)] — the comprehension
            # result is the sink, so look through to its assignment.
            parent = ctx.parent(parent)
        if isinstance(parent, ast.Assign):
            for target in parent.targets:
                dotted = dotted_name(target)
                if dotted is not None:
                    sinks.add(dotted)
                    if isinstance(target, ast.Name):
                        local = target.id
        elif isinstance(parent, ast.AnnAssign) and parent.value is call:
            dotted = dotted_name(parent.target)
            if dotted is not None:
                sinks.add(dotted)
                if isinstance(parent.target, ast.Name):
                    local = parent.target.id
        elif isinstance(parent, ast.Call):
            # e.g. self._threads.append(threading.Thread(...))
            dotted = dotted_name(parent.func)
            if dotted is not None and dotted.endswith(".append"):
                sinks.add(dotted[: -len(".append")])
        if local is not None:
            function = ctx.enclosing_function(call)
            if function is not None:
                for node in ast.walk(function):
                    if (isinstance(node, ast.Call)
                            and isinstance(node.func, ast.Attribute)
                            and node.func.attr == "append"
                            and any(isinstance(arg, ast.Name)
                                    and arg.id == local
                                    for arg in node.args)):
                        container = dotted_name(node.func.value)
                        if container is not None:
                            sinks.add(container)
        return sinks

    @staticmethod
    def _joined_or_daemonized(scope: ast.AST, sinks: set[str]) -> bool:
        # Loop variables iterating a sink container count as aliases:
        #   for t in self._threads: t.join()
        aliases: dict[str, str] = {}
        for node in ast.walk(scope):
            if isinstance(node, ast.For):
                iterated = dotted_name(node.iter)
                if iterated in sinks and isinstance(node.target, ast.Name):
                    aliases[node.target.id] = iterated
        joined = set(sinks)
        joined.update(aliases)
        for node in ast.walk(scope):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"):
                base = dotted_name(node.func.value)
                if base in joined:
                    return True
            if (isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Attribute)
                    and node.targets[0].attr == "daemon"
                    and isinstance(node.value, ast.Constant)
                    and node.value.value
                    and dotted_name(node.targets[0].value) in joined):
                return True
        return False
