"""RPA004: environment hygiene — raw ``os.environ`` reads are confined to
the typed registry in :mod:`repro.env`.

Every ``REPRO_*`` variable is declared once (name, type, default,
docstring) in ``repro/env.py``; everything else calls its typed readers.
That keeps the README env-var table generatable, the semantics uniform
(one definition of falsy), and new knobs discoverable instead of ad hoc.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import FileContext, Finding, Rule, register

# Module paths (suffix match on the project-relative posix path) allowed
# to touch os.environ: the registry itself.
ALLOWED_SUFFIXES = ("repro/env.py",)

RAW_ATTRS = frozenset({"environ", "getenv", "putenv", "unsetenv"})


@register
class EnvRegistryRule(Rule):
    id = "RPA004"
    name = "env-registry"
    description = (
        "no raw os.environ/os.getenv access outside the repro/env.py "
        "typed registry"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.relpath.endswith(ALLOWED_SUFFIXES):
            return
        imported_raw = self._imported_raw_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            offender: str | None = None
            if isinstance(node, ast.Attribute) and node.attr in RAW_ATTRS \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id == "os":
                offender = f"os.{node.attr}"
            elif isinstance(node, ast.Name) and node.id in imported_raw \
                    and isinstance(node.ctx, ast.Load):
                offender = node.id
            if offender is None:
                continue
            yield ctx.make_finding(
                self.id, node,
                f"raw '{offender}' access: declare the variable in "
                "repro/env.py and read it through the typed registry "
                "(repro.env.read_flag/read_str)",
            )

    @staticmethod
    def _imported_raw_names(tree: ast.Module) -> frozenset[str]:
        names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "os":
                for alias in node.names:
                    if alias.name in RAW_ATTRS:
                        names.add(alias.asname or alias.name)
        return frozenset(names)
