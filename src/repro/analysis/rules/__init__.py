"""Rule modules; importing this package registers every rule."""

from . import bench, env, locks, obs  # noqa: F401  (registration imports)

__all__ = ["bench", "env", "locks", "obs"]
