"""RPA007: bench-key drift — metric keys written by benchmarks exist in
the committed ``BENCH_*.json`` baselines that ``repro.obs.regress`` gates.

A benchmark that writes ``{"new_metric_ms": ...}`` without the committed
baseline carrying that key produces a number CI never gates — silent
coverage loss. The rule statically collects the literal top-level keys a
benchmark file writes (dict literals passed to ``json.dumps(...)`` or to
``<results>.update(...)``) and checks each against the committed baseline
the file names; a key missing from the baseline is drift.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..core import FileContext, Finding, Rule, dotted_name, register

BENCH_FILENAME_RE = re.compile(r"^BENCH_\w+\.json$")


@register
class BenchKeyDriftRule(Rule):
    id = "RPA007"
    name = "bench-key-drift"
    description = (
        "literal metric keys written by a benchmark (json.dumps({...}) / "
        "results.update({...})) appear in the committed BENCH_*.json "
        "baseline the file names"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        bench_names = sorted({
            node.value for node in ast.walk(ctx.tree)
            if isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and BENCH_FILENAME_RE.match(node.value)
        })
        if not bench_names:
            return
        committed: set[str] = set()
        missing_baselines: list[str] = []
        for name in bench_names:
            keys = ctx.project.bench_keys(ctx.path, name)
            if keys is None:
                missing_baselines.append(name)
            else:
                committed.update(keys)
        if missing_baselines and not committed:
            # No committed baseline to check against at all: not drift,
            # a brand-new benchmark. The regress gate will demand the
            # baseline; this rule only compares against committed keys.
            return
        for dict_node in self._written_dicts(ctx):
            for key_node in dict_node.keys:
                if not isinstance(key_node, ast.Constant) \
                        or not isinstance(key_node.value, str):
                    continue
                if key_node.value in committed:
                    continue
                yield ctx.make_finding(
                    self.id, key_node,
                    f"benchmark writes key '{key_node.value}' that is "
                    f"absent from the committed "
                    f"{'/'.join(bench_names)} baseline: run the bench "
                    "and commit the refreshed baseline so regress.py "
                    "gates it",
                    symbol=f"{ctx.qualname(key_node)}:{key_node.value}",
                )

    @staticmethod
    def _written_dicts(ctx: FileContext) -> Iterator[ast.Dict]:
        """Dict literals that flow into the bench file: the argument of
        ``json.dumps({...})`` or of ``<name>.update({...})``."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted == "json.dumps":
                for arg in node.args[:1]:
                    if isinstance(arg, ast.Dict):
                        yield arg
            elif dotted is not None and dotted.endswith(".update"):
                for arg in node.args[:1]:
                    if isinstance(arg, ast.Dict):
                        yield arg
