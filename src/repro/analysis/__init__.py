"""repro.analysis — AST-based invariant checker for the repro codebase.

Seven PRs of growth accumulated invariants that existed only as
convention: span fast paths, lock discipline, env-var hygiene, exception
routing, bench-baseline coverage. This package makes them mechanical —
Hillview-style: a trillion-cell system stays correct under concurrency
because its invariants are checked, not remembered.

Run it as ``python -m repro.analysis src/`` (CI gates at zero
unsuppressed findings). Rules:

========  =============================================================
RPA001    ``# guarded-by: _lock`` fields only touched under their lock
RPA002    ``with <lock>`` nesting graph is acyclic (deadlock candidates)
RPA003    instrumentation in hot loops behind the ``OBS.enabled`` check
RPA004    no raw ``os.environ`` outside the ``repro/env.py`` registry
RPA005    silent ``except: pass`` routes through ``obs.errors`` or is
          marked ``# repro: swallow(<why>)``
RPA006    every ``threading.Thread`` daemon or provably joined
RPA007    bench-written metric keys exist in committed ``BENCH_*.json``
========  =============================================================

Escapes: inline ``# repro: noqa(RPA00N)`` with the reason in the comment,
or a committed baseline file with stale-entry detection (see
:mod:`repro.analysis.baseline`).
"""

from .baseline import Baseline, BaselineResult
from .core import (
    AnalysisResult,
    FileContext,
    Finding,
    ProjectContext,
    Rule,
    all_rules,
    run_paths,
)
from .report import render_json, render_text

__all__ = [
    "AnalysisResult",
    "Baseline",
    "BaselineResult",
    "FileContext",
    "Finding",
    "ProjectContext",
    "Rule",
    "all_rules",
    "run_paths",
    "render_json",
    "render_text",
]
