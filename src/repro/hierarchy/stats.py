"""Mergeable aggregate statistics for hierarchy nodes.

Every HETree node carries the summary statistics SynopsViz [25, 26] shows
next to each hierarchy level (the *Statistics* column of survey Table 1):
count, min, max, sum, mean, and variance. The representation is chosen to
be **mergeable** (count/mean/M2 in the Chan et al. parallel-variance form),
so a parent's statistics are combined from its children in O(1) without
revisiting raw data — the property that makes multilevel exploration cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["NodeStats"]


@dataclass
class NodeStats:
    """Streaming/mergeable summary of a multiset of numbers."""

    count: int = 0
    minimum: float = float("inf")
    maximum: float = float("-inf")
    mean: float = 0.0
    m2: float = 0.0  # sum of squared deviations from the mean

    @classmethod
    def of(cls, values: Sequence[float] | Iterable[float]) -> "NodeStats":
        stats = cls()
        for value in values:
            stats.add(float(value))
        return stats

    def add(self, value: float) -> None:
        """Welford single-value update."""
        self.count += 1
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    def merge(self, other: "NodeStats") -> "NodeStats":
        """Combine two disjoint summaries (Chan et al.)."""
        if other.count == 0:
            return self.copy()
        if self.count == 0:
            return other.copy()
        count = self.count + other.count
        delta = other.mean - self.mean
        mean = self.mean + delta * other.count / count
        m2 = self.m2 + other.m2 + delta * delta * self.count * other.count / count
        return NodeStats(
            count=count,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
            mean=mean,
            m2=m2,
        )

    @classmethod
    def merge_all(cls, parts: Iterable["NodeStats"]) -> "NodeStats":
        result = cls()
        for part in parts:
            result = result.merge(part)
        return result

    @property
    def total(self) -> float:
        return self.mean * self.count

    @property
    def variance(self) -> float:
        """Population variance (0 for fewer than 2 values)."""
        return self.m2 / self.count if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        return self.variance ** 0.5

    def copy(self) -> "NodeStats":
        return NodeStats(self.count, self.minimum, self.maximum, self.mean, self.m2)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.count == 0:
            return "NodeStats(empty)"
        return (
            f"NodeStats(n={self.count}, range=[{self.minimum:g}, {self.maximum:g}], "
            f"mean={self.mean:g}, sd={self.stddev:g})"
        )
