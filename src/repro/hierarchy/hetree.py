"""HETree: the hierarchical aggregation model of SynopsViz [25, 26].

The survey's own answer (Section 4) to "squeeze a billion records into a
million pixels" for numeric and temporal data: organize the values of one
property into a balanced tree whose nodes are *intervals with aggregate
statistics*. Exploration then proceeds level by level — overview first at
the root's children, zoom by drilling into a node, details on demand at the
leaves — and every view renders O(degree) items regardless of dataset size.

Two construction flavours, as in the paper:

* :class:`HETreeC` (content-based): leaves hold ~equal **numbers of
  objects** — an equi-depth layout that adapts to skew;
* :class:`HETreeR` (range-based): leaves cover equal-width **subranges** —
  an equi-width layout with uniform interval semantics.

Both share the node type and the query API (:meth:`HETreeBase.level`,
:meth:`HETreeBase.range_stats`, :meth:`HETreeBase.overview_level`).
"""

from __future__ import annotations

import math
from typing import Callable, Iterator, Sequence

from ..obs import OBS
from ..obs.metrics import TIME_MS_BUCKETS
from .stats import NodeStats

__all__ = ["HETreeNode", "HETreeBase", "HETreeC", "HETreeR", "auto_parameters"]

Item = tuple[float, object]  # (numeric value, payload — e.g. the RDF subject)


class HETreeNode:
    """One interval of the hierarchy with its aggregate statistics."""

    __slots__ = ("low", "high", "children", "items", "stats", "depth", "parent")

    def __init__(
        self,
        low: float,
        high: float,
        depth: int,
        parent: "HETreeNode | None" = None,
    ) -> None:
        self.low = low
        self.high = high
        self.depth = depth
        self.parent = parent
        self.children: list[HETreeNode] = []
        self.items: list[Item] = []  # non-empty only at leaves
        self.stats = NodeStats()

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def interval(self) -> tuple[float, float]:
        return (self.low, self.high)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.is_leaf else f"{len(self.children)} children"
        return f"<HETreeNode [{self.low:g}, {self.high:g}) {kind} n={self.stats.count}>"


class HETreeBase:
    """Shared query interface over a fully built hierarchy."""

    def __init__(self, root: HETreeNode) -> None:
        self.root = root

    # -- navigation --------------------------------------------------------

    def level(self, depth: int) -> list[HETreeNode]:
        """All nodes at ``depth`` (0 = root), left to right."""
        current = [self.root]
        for _ in range(depth):
            nxt: list[HETreeNode] = []
            for node in current:
                nxt.extend(node.children)
            if not nxt:
                return []
            current = nxt
        return current

    @property
    def height(self) -> int:
        node = self.root
        height = 0
        while node.children:
            node = node.children[0]
            height += 1
        return height

    @property
    def node_count(self) -> int:
        return sum(1 for _ in self.iter_nodes())

    @property
    def leaf_count(self) -> int:
        return sum(1 for node in self.iter_nodes() if node.is_leaf)

    def iter_nodes(self) -> Iterator[HETreeNode]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def leaves(self) -> list[HETreeNode]:
        return [node for node in self.iter_nodes() if node.is_leaf]

    # -- the mantra: overview first ------------------------------------------

    def overview_level(self, max_items: int) -> list[HETreeNode]:
        """The deepest level that still fits in ``max_items`` rendered nodes.

        This is the survey's "overview first" entry point: the caller passes
        its visual budget (bars that fit on screen) and receives the most
        detailed summary that respects it.
        """
        if max_items < 1:
            raise ValueError("max_items must be positive")
        best = [self.root]
        depth = 0
        while True:
            depth += 1
            candidate = self.level(depth)
            if not candidate or len(candidate) > max_items:
                return best
            best = candidate

    # -- range queries ---------------------------------------------------------

    def range_stats(self, low: float, high: float) -> NodeStats:
        """Statistics of all items with ``low <= value < high``.

        Assembled from maximal fully-covered nodes, recursing only along
        the two boundary paths — O(degree · height) node visits plus the
        partially-covered leaves.
        """
        if high < low:
            raise ValueError("range_stats requires low <= high")
        return self._range_stats(self.root, low, high)

    def _range_stats(self, node: HETreeNode, low: float, high: float) -> NodeStats:
        if node.stats.count == 0 or high <= node.low or low > node.high:
            return NodeStats()
        covered = low <= node.low and node.high < high
        if covered and not node.is_leaf:
            return node.stats.copy()
        if node.is_leaf:
            return NodeStats.of(v for v, _ in node.items if low <= v < high)
        result = NodeStats()
        for child in node.children:
            if child.low >= high:
                break
            result = result.merge(self._range_stats(child, low, high))
        return result

    def items_in_range(self, low: float, high: float) -> list[Item]:
        """The raw (value, payload) pairs inside ``[low, high)``."""
        out: list[Item] = []

        def visit(node: HETreeNode) -> None:
            if high <= node.low or low > node.high:
                return
            if node.is_leaf:
                out.extend((v, p) for v, p in node.items if low <= v < high)
                return
            for child in node.children:
                visit(child)

        visit(self.root)
        return out


def _build_from_leaves(leaves: list[HETreeNode], degree: int) -> HETreeNode:
    """Bottom-up construction of internal levels over prepared leaves."""
    if not leaves:
        return HETreeNode(0.0, 0.0, depth=0)
    level = leaves
    while len(level) > 1:
        parents: list[HETreeNode] = []
        for start in range(0, len(level), degree):
            group = level[start : start + degree]
            parent = HETreeNode(group[0].low, group[-1].high, depth=0)
            parent.children = group
            parent.stats = NodeStats.merge_all(child.stats for child in group)
            for child in group:
                child.parent = parent
            parents.append(parent)
        level = parents
    root = level[0]
    _assign_depths(root, 0)
    return root


def _assign_depths(node: HETreeNode, depth: int) -> None:
    node.depth = depth
    for child in node.children:
        _assign_depths(child, depth + 1)


class HETreeC(HETreeBase):
    """Content-based HETree: equi-depth leaves over the sorted values."""

    def __init__(
        self,
        items: Sequence[Item] | Sequence[float],
        leaf_size: int | None = None,
        degree: int = 4,
        key: Callable[[object], float] | None = None,
    ) -> None:
        if degree < 2:
            raise ValueError("tree degree must be >= 2")
        with OBS.tracer.span("hierarchy.hetree.build", flavour="content") as span:
            normalized = _normalize_items(items, key)
            normalized.sort(key=lambda pair: pair[0])
            if leaf_size is None:
                leaf_size = max(1, int(math.sqrt(len(normalized))) or 1)
            if leaf_size < 1:
                raise ValueError("leaf_size must be positive")
            self.degree = degree
            self.leaf_size = leaf_size
            leaves: list[HETreeNode] = []
            for start in range(0, len(normalized), leaf_size):
                chunk = normalized[start : start + leaf_size]
                low = chunk[0][0]
                # half-open upper bound: next chunk's first value, or +eps at end
                end = start + leaf_size
                high = normalized[end][0] if end < len(normalized) else chunk[-1][0]
                leaf = HETreeNode(low, high, depth=0)
                leaf.items = chunk
                leaf.stats = NodeStats.of(v for v, _ in chunk)
                leaves.append(leaf)
            super().__init__(_build_from_leaves(leaves, degree))
            span.set_attribute("items", len(normalized))
            span.set_attribute("leaves", len(leaves))
            _record_build(span, "content")


class HETreeR(HETreeBase):
    """Range-based HETree: equi-width leaf intervals over the domain."""

    def __init__(
        self,
        items: Sequence[Item] | Sequence[float],
        n_leaves: int | None = None,
        degree: int = 4,
        domain: tuple[float, float] | None = None,
        key: Callable[[object], float] | None = None,
    ) -> None:
        if degree < 2:
            raise ValueError("tree degree must be >= 2")
        with OBS.tracer.span("hierarchy.hetree.build", flavour="range") as span:
            normalized = _normalize_items(items, key)
            if not normalized:
                super().__init__(HETreeNode(0.0, 0.0, depth=0))
                self.degree = degree
                self.n_leaves = 0
                return
            if domain is None:
                low = min(v for v, _ in normalized)
                high = max(v for v, _ in normalized)
            else:
                low, high = domain
            if n_leaves is None:
                n_leaves = max(1, int(math.sqrt(len(normalized))) or 1)
            if n_leaves < 1:
                raise ValueError("n_leaves must be positive")
            self.degree = degree
            self.n_leaves = n_leaves
            width = (high - low) / n_leaves if high > low else 1.0
            leaves = [
                HETreeNode(low + i * width, low + (i + 1) * width, depth=0)
                for i in range(n_leaves)
            ]
            for value, payload in normalized:
                index = min(int((value - low) / width), n_leaves - 1) if width else 0
                leaf = leaves[index]
                leaf.items.append((value, payload))
                leaf.stats.add(value)
            for leaf in leaves:
                leaf.items.sort(key=lambda pair: pair[0])
            super().__init__(_build_from_leaves(leaves, degree))
            span.set_attribute("items", len(normalized))
            span.set_attribute("leaves", len(leaves))
            _record_build(span, "range")


def _record_build(span, flavour: str) -> None:
    """Mirror one construction span into the build-time histogram."""
    if OBS.enabled:
        OBS.metrics.histogram(
            "hierarchy.hetree.build_ms", buckets=TIME_MS_BUCKETS, flavour=flavour
        ).record(span.duration_ms)


def _normalize_items(
    items: Sequence[Item] | Sequence[float], key: Callable[[object], float] | None
) -> list[Item]:
    normalized: list[Item] = []
    for entry in items:
        if key is not None:
            normalized.append((float(key(entry)), entry))
        elif isinstance(entry, tuple) and len(entry) == 2:
            normalized.append((float(entry[0]), entry[1]))
        else:
            normalized.append((float(entry), None))
    return normalized


def auto_parameters(
    n_items: int, screen_slots: int, degree_bounds: tuple[int, int] = (2, 16)
) -> tuple[int, int]:
    """Pick ``(leaf_size, degree)`` from the environment, as SynopsViz does.

    ``screen_slots`` is how many visual items (bars/points) one view can
    show. The degree is chosen so that each drill-down fills the view
    (degree ≈ screen_slots, clamped to ``degree_bounds``), and the leaf size
    so that leaves are the finest useful resolution (≈ items per slot at
    full depth).
    """
    if n_items < 1 or screen_slots < 1:
        raise ValueError("n_items and screen_slots must be positive")
    low, high = degree_bounds
    degree = max(low, min(high, screen_slots))
    leaf_size = max(1, math.ceil(n_items / max(screen_slots**2, 1)))
    return leaf_size, degree
