"""Binding HETrees to RDF properties.

SynopsViz explores *one numeric or temporal property at a time* ("facet"
over ``ex:population``, ``ex:founded``, ...). This module extracts the
(value, subject) pairs of a property from any triple source and hands them
to the hierarchy constructors, covering temporal literals via their native
values (gYear/date → year number).
"""

from __future__ import annotations

from ..rdf.terms import IRI, Literal
from ..store.base import TripleSource
from .hetree import HETreeC, HETreeR, Item
from .incremental import IncrementalHETree

__all__ = ["property_items", "hetree_for_property", "incremental_hetree_for_property"]


def property_items(store: TripleSource, predicate: IRI) -> list[Item]:
    """All ``(numeric value, subject)`` pairs of one property.

    Non-numeric objects are skipped (a property may be mixed-type in LOD);
    temporal literals contribute their year/number coercion.
    """
    items: list[Item] = []
    for s, _, o in store.triples((None, predicate, None)):
        if not isinstance(o, Literal):
            continue
        value = o.value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        items.append((float(value), s))
    return items


def hetree_for_property(
    store: TripleSource,
    predicate: IRI,
    kind: str = "content",
    leaf_size: int | None = None,
    n_leaves: int | None = None,
    degree: int = 4,
):
    """Build a bulk HETree over one property (``kind``: content | range)."""
    items = property_items(store, predicate)
    if kind == "content":
        return HETreeC(items, leaf_size=leaf_size, degree=degree)
    if kind == "range":
        return HETreeR(items, n_leaves=n_leaves, degree=degree)
    raise ValueError(f"unknown HETree kind {kind!r} (use 'content' or 'range')")


def incremental_hetree_for_property(
    store: TripleSource,
    predicate: IRI,
    leaf_size: int | None = None,
    degree: int = 4,
) -> IncrementalHETree:
    """Build an ICO (lazily materialized) HETree over one property."""
    return IncrementalHETree(property_items(store, predicate), leaf_size, degree)
