"""HETree hierarchical aggregation (the SynopsViz model [25, 26]).

Multilevel exploration of numeric/temporal properties: equi-depth
(:class:`HETreeC`) and equi-width (:class:`HETreeR`) hierarchies with
mergeable per-node statistics, incremental construction
(:class:`IncrementalHETree`, the ICO strategy), preference adaptation
(:func:`adapt_degree`), and screen-driven parameter selection
(:func:`auto_parameters`).
"""

from .adaptation import adapt_degree, merge_leaf_pairs
from .hetree import HETreeBase, HETreeC, HETreeNode, HETreeR, auto_parameters
from .nanocube import Nanocube
from .incremental import IncrementalHETree, IncrementalNode
from .rdf_binding import (
    hetree_for_property,
    incremental_hetree_for_property,
    property_items,
)
from .stats import NodeStats

__all__ = [
    "HETreeBase",
    "HETreeC",
    "HETreeNode",
    "HETreeR",
    "IncrementalHETree",
    "Nanocube",
    "IncrementalNode",
    "NodeStats",
    "adapt_degree",
    "auto_parameters",
    "hetree_for_property",
    "incremental_hetree_for_property",
    "merge_leaf_pairs",
    "property_items",
]
