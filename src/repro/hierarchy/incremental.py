"""ICO: incremental HETree construction driven by user interaction.

The survey highlights (Section 2, and again for SynopsViz in Section 3.2)
that a dynamic setting *prevents preprocessing*: "in [25] the hierarchy
tree is incrementally constructed based on user's interaction". This module
implements that strategy: the tree starts as a single unexpanded root over
the sorted value array, and a node's children materialize the first time
the user drills into it. Statistics for a node are computed once, over its
value slice, at materialization time.

The payoff measured by benchmark C2: a session that visits only a drill
path materializes O(session · degree) nodes instead of the full tree.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..obs import OBS
from .hetree import Item
from .stats import NodeStats

__all__ = ["IncrementalNode", "IncrementalHETree"]


class IncrementalNode:
    """A lazily-expanded content-based HETree node over a value slice."""

    __slots__ = ("tree", "start", "end", "depth", "parent", "_children", "_stats")

    def __init__(
        self,
        tree: "IncrementalHETree",
        start: int,
        end: int,
        depth: int,
        parent: "IncrementalNode | None",
    ) -> None:
        self.tree = tree
        self.start = start
        self.end = end
        self.depth = depth
        self.parent = parent
        self._children: list[IncrementalNode] | None = None
        self._stats: NodeStats | None = None

    # -- lazy pieces -------------------------------------------------------

    @property
    def stats(self) -> NodeStats:
        """Aggregate statistics, computed on first access over the slice."""
        if self._stats is None:
            segment = self.tree.values[self.start : self.end]
            stats = NodeStats()
            if len(segment):
                stats.count = int(len(segment))
                stats.minimum = float(segment.min())
                stats.maximum = float(segment.max())
                stats.mean = float(segment.mean())
                stats.m2 = float(((segment - segment.mean()) ** 2).sum())
            self._stats = stats
            self.tree.stats_computations += 1
        return self._stats

    @property
    def count(self) -> int:
        return self.end - self.start

    @property
    def low(self) -> float:
        return float(self.tree.values[self.start]) if self.count else 0.0

    @property
    def high(self) -> float:
        return float(self.tree.values[self.end - 1]) if self.count else 0.0

    @property
    def is_expanded(self) -> bool:
        return self._children is not None

    @property
    def is_leaf(self) -> bool:
        return self.count <= self.tree.leaf_size

    def expand(self) -> list["IncrementalNode"]:
        """Materialize (or return) this node's children — the drill-down.

        Children split the slice into ``degree`` near-equal runs of whole
        leaves, exactly as a bulk-built HETree-C would have grouped them.
        """
        if self._children is not None:
            return self._children
        if self.is_leaf:
            self._children = []
            return self._children
        leaf_size = self.tree.leaf_size
        n_leaves = math.ceil(self.count / leaf_size)
        per_child = math.ceil(n_leaves / self.tree.degree)
        children: list[IncrementalNode] = []
        offset = self.start
        while offset < self.end:
            span = min(per_child * leaf_size, self.end - offset)
            children.append(
                IncrementalNode(self.tree, offset, offset + span, self.depth + 1, self)
            )
            offset += span
        self._children = children
        self.tree.materialized_nodes += len(children)
        # Progress stream: how much of the would-be full tree has been
        # materialized by the session so far (no listeners → one check).
        if OBS.progress.has_subscribers:
            OBS.progress.emit(
                "hierarchy.incremental.materialize",
                completed=self.tree.materialized_nodes,
                total=self.tree.full_tree_node_estimate,
                depth=self.depth + 1,
                expanded_children=len(children),
            )
        return children

    def items(self) -> list[Item]:
        """The (value, payload) pairs of this slice (details-on-demand)."""
        return [
            (float(self.tree.values[i]), self.tree.payloads[i])
            for i in range(self.start, self.end)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<IncrementalNode [{self.start}:{self.end}] depth={self.depth} "
            f"{'expanded' if self.is_expanded else 'unexpanded'}>"
        )


class IncrementalHETree:
    """Lazily-built content-based HETree (the ICO strategy of [25]).

    Construction cost is one sort — O(n log n) but with a tiny constant via
    numpy — after which every interaction pays only for the nodes it
    actually materializes. ``materialized_nodes`` and ``stats_computations``
    expose the incremental-work counters benchmark C2 reports.
    """

    def __init__(
        self,
        items: Sequence[Item] | Sequence[float] | np.ndarray,
        leaf_size: int | None = None,
        degree: int = 4,
    ) -> None:
        if degree < 2:
            raise ValueError("tree degree must be >= 2")
        values, payloads = _split_items(items)
        order = np.argsort(values, kind="stable")
        self.values = values[order]
        self.payloads = [payloads[i] for i in order] if payloads else [None] * len(values)
        if leaf_size is None:
            leaf_size = max(1, int(math.sqrt(len(self.values))) or 1)
        if leaf_size < 1:
            raise ValueError("leaf_size must be positive")
        self.leaf_size = leaf_size
        self.degree = degree
        self.materialized_nodes = 1
        self.stats_computations = 0
        self.root = IncrementalNode(self, 0, len(self.values), 0, None)

    def __len__(self) -> int:
        return len(self.values)

    def drill_path(self, value: float) -> list[IncrementalNode]:
        """Expand from the root toward ``value``; returns the visited path.

        This is the canonical ICO interaction: each step materializes only
        the children of the node the user descends into.
        """
        path = [self.root]
        node = self.root
        while not node.is_leaf:
            children = node.expand()
            nxt = None
            for child in children:
                if child.count and float(self.tree_value(child.end - 1)) >= value:
                    nxt = child
                    break
            if nxt is None:
                nxt = children[-1]
            path.append(nxt)
            node = nxt
        return path

    def tree_value(self, index: int) -> float:
        return float(self.values[index])

    @property
    def full_tree_node_estimate(self) -> int:
        """How many nodes a full bulk build would have materialized."""
        n_leaves = math.ceil(len(self.values) / self.leaf_size) or 1
        total = n_leaves
        level = n_leaves
        while level > 1:
            level = math.ceil(level / self.degree)
            total += level
        return total


def _split_items(
    items: Sequence[Item] | Sequence[float] | np.ndarray,
) -> tuple[np.ndarray, list[object] | None]:
    if isinstance(items, np.ndarray):
        return items.astype(np.float64, copy=True), None
    values: list[float] = []
    payloads: list[object] = []
    has_payloads = False
    for entry in items:
        if isinstance(entry, tuple) and len(entry) == 2:
            values.append(float(entry[0]))
            payloads.append(entry[1])
            has_payloads = True
        else:
            values.append(float(entry))
            payloads.append(None)
    return np.asarray(values, dtype=np.float64), (payloads if has_payloads else None)
