"""ADA: adapting an existing HETree to new user preferences.

SynopsViz's second scalability mechanism (Section 3.2 of the survey): when
the user changes the tree degree — "organize data into different ways,
according to ... the level of detail she wishes to explore" — the hierarchy
is *adapted* rather than rebuilt: existing leaves (and their already-
computed statistics) are regrouped under a new internal structure. The raw
values are never touched again, so adaptation costs O(#leaves), not O(n).
"""

from __future__ import annotations

from .hetree import HETreeBase, HETreeNode, _build_from_leaves

__all__ = ["adapt_degree", "merge_leaf_pairs"]


def adapt_degree(tree: HETreeBase, new_degree: int) -> HETreeBase:
    """Rebuild internal levels with ``new_degree``, reusing the leaves.

    The returned tree shares leaf nodes (and therefore leaf statistics and
    items) with the input; only internal nodes are newly allocated.
    """
    if new_degree < 2:
        raise ValueError("tree degree must be >= 2")
    leaves = tree.leaves()
    for leaf in leaves:
        leaf.children = []
    root = _build_from_leaves(leaves, new_degree)
    adapted = HETreeBase(root)
    adapted.degree = new_degree  # type: ignore[attr-defined]
    return adapted


def merge_leaf_pairs(tree: HETreeBase) -> HETreeBase:
    """Coarsen one level: merge adjacent leaf pairs into new leaves.

    A cheap "increase abstraction" preference operation: each new leaf
    concatenates two old ones, statistics merged in O(1) each.
    """
    old_leaves = tree.leaves()
    if len(old_leaves) < 2:
        return tree
    merged: list[HETreeNode] = []
    for i in range(0, len(old_leaves), 2):
        pair = old_leaves[i : i + 2]
        node = HETreeNode(pair[0].low, pair[-1].high, depth=0)
        node.items = [item for leaf in pair for item in leaf.items]
        node.stats = pair[0].stats.copy() if len(pair) == 1 else pair[0].stats.merge(
            pair[1].stats
        )
        merged.append(node)
    degree = getattr(tree, "degree", 4)
    root = _build_from_leaves(merged, degree)
    coarser = HETreeBase(root)
    coarser.degree = degree  # type: ignore[attr-defined]
    return coarser
