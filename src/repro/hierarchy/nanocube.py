"""Spatio-temporal count index — a Nanocubes-lite (Lins et al. [96]).

Survey §4 names Nanocubes as the exemplar data structure "in the context of
spatio-temporal data exploration": heatmaps and time-series of event data
(tweets, check-ins, sensor readings) answered in milliseconds regardless of
event count. The essential structure is a spatial quadtree whose every node
carries a *time index* of the events below it, so a query

    count(region, t0, t1)

decomposes the region into O(log n) maximal covered quadtree nodes, each
answering its time-slice in O(log n) — no per-event work at query time.

This implementation keeps the per-node time index as a sorted timestamp
array (binary-search range counting): exact answers, O(n · depth) build
memory, and the same query asymptotics as the original's summed tables.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Sequence

import numpy as np

from ..graph.spatial import Rect

__all__ = ["Nanocube"]

Event = tuple[float, float, float]  # x, y, t


class _QuadNode:
    __slots__ = ("rect", "times", "children", "points")

    def __init__(self, rect: Rect) -> None:
        self.rect = rect
        self.times: list[float] = []  # sorted at build end
        self.children: list["_QuadNode"] | None = None
        self.points: list[Event] | None = []  # only at leaves

    def time_count(self, t0: float, t1: float) -> int:
        """Events below this node with ``t0 <= t < t1``."""
        return bisect_left(self.times, t1) - bisect_left(self.times, t0)


class Nanocube:
    """Exact spatio-temporal range counting over point events."""

    def __init__(
        self,
        events: Sequence[Event] | np.ndarray,
        max_depth: int = 8,
        leaf_capacity: int = 32,
        bounds: Rect | None = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if leaf_capacity < 1:
            raise ValueError("leaf_capacity must be >= 1")
        events = [(float(x), float(y), float(t)) for x, y, t in events]
        self.size = len(events)
        self.max_depth = max_depth
        self.leaf_capacity = leaf_capacity
        if bounds is None:
            if events:
                xs = [e[0] for e in events]
                ys = [e[1] for e in events]
                bounds = Rect(min(xs), min(ys), max(xs), max(ys))
            else:
                bounds = Rect(0.0, 0.0, 1.0, 1.0)
        self.bounds = bounds
        self.node_count = 1
        self.root = _QuadNode(bounds)
        for event in events:
            self._insert(self.root, event, depth=0)
        self._finalize(self.root)

    # -- build ---------------------------------------------------------------

    def _insert(self, node: _QuadNode, event: Event, depth: int) -> None:
        node.times.append(event[2])
        if node.children is None:
            node.points.append(event)
            if depth < self.max_depth and len(node.points) > self.leaf_capacity:
                self._split(node, depth)
            return
        self._insert(self._child_for(node, event), event, depth + 1)

    def _split(self, node: _QuadNode, depth: int) -> None:
        x0, y0, x1, y1 = node.rect
        mx, my = (x0 + x1) / 2.0, (y0 + y1) / 2.0
        node.children = [
            _QuadNode(Rect(x0, y0, mx, my)),
            _QuadNode(Rect(mx, y0, x1, my)),
            _QuadNode(Rect(x0, my, mx, y1)),
            _QuadNode(Rect(mx, my, x1, y1)),
        ]
        self.node_count += 4
        points = node.points or []
        node.points = None
        for event in points:
            child = self._child_for(node, event)
            child.times.append(event[2])
            child.points.append(event)
        # a split child may itself overflow; recurse
        for child in node.children:
            if depth + 1 < self.max_depth and len(child.points or []) > self.leaf_capacity:
                self._split(child, depth + 1)

    def _child_for(self, node: _QuadNode, event: Event) -> _QuadNode:
        x0, y0, x1, y1 = node.rect
        mx, my = (x0 + x1) / 2.0, (y0 + y1) / 2.0
        index = (1 if event[0] >= mx else 0) + (2 if event[1] >= my else 0)
        return node.children[index]  # type: ignore[index]

    def _finalize(self, node: _QuadNode) -> None:
        node.times.sort()
        if node.children is not None:
            for child in node.children:
                self._finalize(child)

    # -- queries ------------------------------------------------------------

    def count(self, region: Rect, t0: float = float("-inf"), t1: float = float("inf")) -> int:
        """Events with position inside ``region`` and ``t0 <= t < t1``."""
        if t1 < t0:
            raise ValueError("count requires t0 <= t1")
        self.nodes_visited = 0
        return self._count(self.root, region, t0, t1)

    def _count(self, node: _QuadNode, region: Rect, t0: float, t1: float) -> int:
        self.nodes_visited += 1
        if not region.intersects(node.rect) or not node.times:
            return 0
        if _covers(region, node.rect):
            return node.time_count(t0, t1)
        if node.children is None:
            return sum(
                1
                for x, y, t in node.points or []
                if region.contains_point(x, y) and t0 <= t < t1
            )
        return sum(self._count(child, region, t0, t1) for child in node.children)

    def time_histogram(self, region: Rect, bin_edges: Sequence[float]) -> list[int]:
        """Per-bin counts over ``region`` (the Nanocubes time-series view)."""
        if len(bin_edges) < 2:
            raise ValueError("need at least two bin edges")
        return [
            self.count(region, bin_edges[i], bin_edges[i + 1])
            for i in range(len(bin_edges) - 1)
        ]

    def density_grid(
        self, nx: int, ny: int, t0: float = float("-inf"), t1: float = float("inf")
    ) -> np.ndarray:
        """Fixed-resolution count lattice (the Nanocubes heatmap view)."""
        if nx < 1 or ny < 1:
            raise ValueError("grid dimensions must be positive")
        x0, y0, x1, y1 = self.bounds
        width = (x1 - x0) or 1.0
        height = (y1 - y0) or 1.0
        grid = np.zeros((ny, nx), dtype=np.int64)
        for iy in range(ny):
            for ix in range(nx):
                cell = Rect(
                    x0 + ix * width / nx,
                    y0 + iy * height / ny,
                    x0 + (ix + 1) * width / nx,
                    y0 + (iy + 1) * height / ny,
                )
                # half-open cells to avoid double counting boundaries
                grid[iy, ix] = self._count_half_open(cell, t0, t1, ix == nx - 1, iy == ny - 1)
        return grid

    def _count_half_open(
        self, cell: Rect, t0: float, t1: float, last_col: bool, last_row: bool
    ) -> int:
        total = self.count(cell, t0, t1)
        # subtract right/top boundary unless this is the outermost cell
        if not last_col:
            total -= self.count(Rect(cell.x1, cell.y0, cell.x1, cell.y1), t0, t1)
        if not last_row:
            total -= self.count(Rect(cell.x0, cell.y1, cell.x1, cell.y1), t0, t1)
        if not last_col and not last_row:
            total += self.count(Rect(cell.x1, cell.y1, cell.x1, cell.y1), t0, t1)
        return total

    def __len__(self) -> int:
        return self.size


def _covers(outer: Rect, inner: Rect) -> bool:
    return (
        outer.x0 <= inner.x0
        and outer.y0 <= inner.y0
        and outer.x1 >= inner.x1
        and outer.y1 >= inner.y1
    )
