"""Typed registry of every ``REPRO_*`` environment variable.

Seven PRs of growth left ``REPRO_*`` knobs scattered as ad hoc
``os.environ`` reads with per-site falsy conventions. This module is the
single declaration point — name, type, default, docstring — and the
**only** place in the tree allowed to touch ``os.environ`` (enforced by
the RPA004 rule in :mod:`repro.analysis`). Everything else reads through
the typed accessors::

    from repro.env import read_flag, read_str

    if read_flag("REPRO_TRACE"):
        ...

Reads are live (no import-time caching), so tests that monkeypatch
``os.environ`` keep working. ``python -m repro.env`` prints the registry
as the Markdown table embedded in the README (and a drift test holds the
two together).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = [
    "EnvVar",
    "REGISTRY",
    "declared",
    "read_raw",
    "read_str",
    "read_flag",
    "read_int",
    "markdown_table",
]

# One definition of falsy for flag-typed variables, replacing the three
# slightly different spellings the tree grew (("", "0"), ("", "0",
# "false"), case-sensitive vs not).
_FALSY = frozenset({"", "0", "false", "no", "off"})


@dataclass(frozen=True)
class EnvVar:
    """Declaration of one environment variable."""

    name: str
    kind: str  # "flag" | "string" | "path" | "choice"
    default: str
    doc: str
    choices: tuple[str, ...] = ()


REGISTRY: tuple[EnvVar, ...] = (
    EnvVar(
        "REPRO_TRACE", "flag", "0",
        "Enable the span tracer at process start; spans land in "
        "`OBS.tracer.recorder` and exporters (`repro.obs`).",
    ),
    EnvVar(
        "REPRO_EXEC", "choice", "auto",
        "Execution engine for BGPs: streaming `iterator`, batched "
        "`vectorized` over dictionary ids, or statistics-driven `auto` "
        "(`repro.sparql.vectorized.resolve_exec_mode`).",
        choices=("iterator", "vectorized", "auto"),
    ),
    EnvVar(
        "REPRO_QUERYLOG", "flag", "0",
        "Record every query in the structured query log ring "
        "(`repro.obs.querylog`). Implied on when REPRO_QUERYLOG_DIR is "
        "set; always on inside `repro.server`.",
    ),
    EnvVar(
        "REPRO_QUERYLOG_DIR", "path", "",
        "Directory for the query log's JSONL mirror "
        "(`queries-<pid>.jsonl`); setting it implies REPRO_QUERYLOG=1.",
    ),
    EnvVar(
        "REPRO_FLIGHT_DIR", "path", "",
        "Directory where flight-recorder dumps are written as "
        "`flight-<seq>.jsonl` (CI uploads these as artifacts).",
    ),
    EnvVar(
        "REPRO_PROFILE", "string", "",
        "Start the sampling profiler with the process: `1` for the "
        "default 10 ms cadence, a number for a custom interval in ms "
        "(`repro.obs.profile.profiler_from_env`).",
    ),
    EnvVar(
        "REPRO_BENCH_QUICK", "flag", "0",
        "Shrink the benchmark suite to CI smoke size; regress.py widens "
        "its tolerances accordingly (`--quick`).",
    ),
    EnvVar(
        "REPRO_SKETCH_PRECISION", "int", "12",
        "HLL register precision `p` (2**p one-byte registers) for distinct "
        "counting in the approximate tier and `/statistics` "
        "(`repro.approx.sketch`); 12 ≈ 1.6% standard error in 4 KiB.",
    ),
    EnvVar(
        "REPRO_SKETCH_GROUPS", "int", "256",
        "Group budget for the grouped-moments sketch: at most this many "
        "GROUP BY keys are tracked exactly, the rest fold into the "
        "`other` bucket (`repro.approx.sketch.moments`).",
    ),
    EnvVar(
        "REPRO_SKETCH_K", "int", "128",
        "Compactor budget `k` for the KLL quantile sketch — higher k, "
        "tighter rank error, more memory (`repro.approx.sketch.quantile`).",
    ),
)

_BY_NAME: dict[str, EnvVar] = {var.name: var for var in REGISTRY}


def declared(name: str) -> EnvVar:
    """The declaration for ``name``; raises ``KeyError`` when unknown —
    an undeclared variable is a bug, not a default."""
    return _BY_NAME[name]


def read_raw(name: str) -> str:
    """Live raw value of a *declared* variable (the single point where
    the process environment is consulted)."""
    declared(name)
    return os.environ.get(name, "")


def read_str(name: str) -> str:
    """Stripped string value, falling back to the declared default."""
    value = read_raw(name).strip()
    return value if value else declared(name).default


def read_flag(name: str) -> bool:
    """Boolean value: unset/empty/``0``/``false``/``no``/``off`` (any
    case) is False, everything else True."""
    return read_raw(name).strip().lower() not in _FALSY


def read_int(name: str) -> int:
    """Integer value, falling back to the declared default on unset *or*
    unparseable input (a malformed knob should degrade to the documented
    default, not crash the server at import time)."""
    value = read_raw(name).strip()
    try:
        return int(value)
    except ValueError:
        return int(declared(name).default)


def markdown_table() -> str:
    """The registry as a GitHub-flavored Markdown table (README embeds
    this; a drift test holds them together)."""
    rows = [
        "| Variable | Type | Default | Meaning |",
        "| --- | --- | --- | --- |",
    ]
    for var in REGISTRY:
        kind = var.kind
        if var.choices:
            kind = f"choice: {' / '.join(f'`{c}`' for c in var.choices)}"
        default = f"`{var.default}`" if var.default else "*(unset)*"
        rows.append(f"| `{var.name}` | {kind} | {default} | {var.doc} |")
    return "\n".join(rows) + "\n"


if __name__ == "__main__":
    print(markdown_table(), end="")
