"""Counters, gauges, and fixed-bucket histograms with percentile summaries.

The numeric half of the telemetry layer: cache hit/miss/eviction counters,
buffer-pool page I/O, crack operations, and latency histograms all land in
one process-wide :class:`MetricsRegistry` keyed by ``(name, labels)``.
Everything is stdlib-only and thread-safe; histogram percentiles are
estimated by linear interpolation inside fixed buckets, the classic
Prometheus-style scheme (exact enough for p50/p95/p99 reporting, O(buckets)
memory regardless of observation count).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Iterator, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "BoundedLabelSet",
    "DEFAULT_BUCKETS",
    "TIME_MS_BUCKETS",
]

# Default latency-ish buckets (unit-agnostic; callers pick ms or counts).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0,
    100.0, 500.0, 1_000.0, 5_000.0, 10_000.0,
)

# Millisecond-latency buckets for operator/interaction timings. The
# unit-agnostic defaults above have a factor-of-5 gap around 0.5–2ms, where
# most operator timings land (BENCH_obs.json), making p50/p95 interpolation
# meaningless there; these are dense through that range and include the
# latency-budget boundaries (100 / 300 / 1000 ms) as exact bucket edges.
TIME_MS_BUCKETS: tuple[float, ...] = (
    0.01, 0.025, 0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0,
    5.0, 7.5, 10.0, 15.0, 25.0, 50.0, 75.0, 100.0, 150.0, 300.0,
    500.0, 1_000.0, 2_500.0, 10_000.0,
)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0  # guarded-by: _lock

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        # repro: noqa(RPA001) — lock-free read of a GIL-atomic int
        return self._value

    def snapshot(self) -> dict[str, object]:
        # repro: noqa(RPA001) — lock-free read of a GIL-atomic int
        return {"type": "counter", "value": self._value}


class Gauge:
    """A value that can go up and down (pool residency, queue depth)."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0  # guarded-by: _lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        # repro: noqa(RPA001) — lock-free read of a GIL-atomic float
        return self._value

    def snapshot(self) -> dict[str, object]:
        # repro: noqa(RPA001) — lock-free read of a GIL-atomic float
        return {"type": "gauge", "value": self._value}


class Histogram:
    """Fixed-bucket histogram with p50/p95/p99 summaries.

    Bucket semantics are upper-bound inclusive (``value <= bound`` lands in
    that bucket); observations above the last bound go to the overflow
    bucket, whose percentile estimate is clamped to the observed maximum.
    """

    __slots__ = (
        "name", "labels", "bounds", "_lock", "_counts", "_overflow",
        "_count", "_sum", "_min", "_max",
    )

    def __init__(
        self,
        name: str,
        labels: LabelKey = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError("histogram bucket bounds must be distinct")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self._lock = threading.Lock()
        self._counts = [0] * len(bounds)  # guarded-by: _lock
        self._overflow = 0  # guarded-by: _lock
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None

    def record(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            if index < len(self.bounds):
                self._counts[index] += 1
            else:
                self._overflow += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def bucket_counts(self) -> list[tuple[float, int]]:
        """``(upper_bound, count)`` pairs; the overflow bucket is ``inf``."""
        with self._lock:
            pairs = list(zip(self.bounds, self._counts))
            pairs.append((float("inf"), self._overflow))
            return pairs

    def percentile(self, q: float) -> float:
        """Estimated ``q``-quantile (``q`` in [0, 1]) via bucket interpolation."""
        if not (0.0 <= q <= 1.0):
            raise ValueError("q must be in [0, 1]")
        with self._lock:
            if self._count == 0:
                return 0.0
            observed_min = self._min if self._min is not None else 0.0
            observed_max = self._max if self._max is not None else self.bounds[-1]
            target = q * self._count
            cumulative = 0
            prev_bound = observed_min
            for bound, count in zip(self.bounds, self._counts):
                if count:
                    cumulative += count
                    if cumulative >= target:
                        # interpolate inside the bucket, clamped to the
                        # observed value range
                        upper = min(bound, observed_max)
                        lower = min(max(prev_bound, observed_min), upper)
                        inside = (target - (cumulative - count)) / count
                        return lower + (upper - lower) * inside
                prev_bound = bound
            # overflow bucket: clamp to the observed maximum
            return observed_max

    def summary(self) -> dict[str, float]:
        return {
            "count": float(self._count),
            "sum": self._sum,
            "mean": self.mean,
            "min": self._min if self._min is not None else 0.0,
            "max": self._max if self._max is not None else 0.0,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }

    def snapshot(self) -> dict[str, object]:
        return {"type": "histogram", **self.summary()}


class BoundedLabelSet:
    """Caps the distinct values of one label dimension.

    Metric labels multiply: a counter labelled with exception type names can
    mint a new time series per distinct exception, unboundedly. ``fold``
    passes the first ``cap`` distinct values through verbatim and maps
    everything after that to ``overflow_label``, so the registry stays
    bounded while the common labels keep their identity.
    """

    __slots__ = ("cap", "overflow_label", "_lock", "_seen")

    def __init__(self, cap: int, overflow_label: str = "other") -> None:
        if cap < 1:
            raise ValueError("cap must be positive")
        self.cap = cap
        self.overflow_label = overflow_label
        self._lock = threading.Lock()
        self._seen: set[str] = set()  # guarded-by: _lock

    def fold(self, label: object) -> str:
        text = str(label)
        with self._lock:
            if text in self._seen:
                return text
            if len(self._seen) < self.cap:
                self._seen.add(text)
                return text
        return self.overflow_label

    def __len__(self) -> int:
        with self._lock:
            return len(self._seen)


class MetricsRegistry:
    """Process-wide get-or-create store of named metrics.

    Metrics are keyed by ``(name, sorted labels)``; asking twice returns
    the same instance, so call sites never hold module-level metric
    globals. Creation takes a lock; increments lock per-metric only.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, LabelKey], object] \
            = {}  # guarded-by: _lock

    def _get_or_create(self, kind: type, name: str, labels: dict, **kwargs):
        key = (name, _label_key(labels))
        # double-checked locking: the lock-free probe here is
        # re-validated under the lock below
        # repro: noqa(RPA001)
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = kind(name, key[1], **kwargs)
                    self._metrics[key] = metric
        if not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: object,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, labels, buckets=buckets)

    def __iter__(self) -> Iterator[object]:
        with self._lock:
            return iter(list(self._metrics.values()))

    def __len__(self) -> int:
        # repro: noqa(RPA001) — approximate size; len() is atomic
        return len(self._metrics)

    def snapshot(self) -> dict[str, dict]:
        """Flat ``{"name{label=value}": {...}}`` dump of every metric."""
        out: dict[str, dict] = {}
        with self._lock:
            items = list(self._metrics.items())
        for (name, labels), metric in sorted(items, key=lambda kv: kv[0]):
            if labels:
                rendered = ",".join(f"{k}={v}" for k, v in labels)
                key = f"{name}{{{rendered}}}"
            else:
                key = name
            out[key] = metric.snapshot()  # type: ignore[attr-defined]
        return out

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()
