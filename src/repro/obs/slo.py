"""Per-tenant SLOs: rolling-window error-budget burn rate.

The budget layer (:mod:`repro.obs.budget`) says whether one interaction
met its class's latency target; an *SLO* says whether a tenant's recent
traffic, taken together, is meeting an objective like "99% of
interactions within budget". The gap between those two is the error
budget: at a 99% objective, 1% of interactions may violate before the
tenant is out of contract.

:class:`SloTracker` keeps one rolling window (count- and age-bounded) of
``(interaction_class, violated)`` outcomes per tenant and reports the
**burn rate** — the observed violation fraction divided by the allowed
one. Burn rate 1.0 means the tenant is consuming its error budget exactly
as fast as it accrues; 2.0 means twice as fast; well below 1.0 means
healthy. The serving layer feeds the burn rate into
:meth:`repro.server.shedding.LoadShedder.decide`, so a tenant burning its
budget is degraded to approximate answers *before* well-behaved tenants
feel anything — SynopsViz-style per-interaction accountability applied to
multi-tenant admission.

Everything is stdlib-only and thread-safe; observation is O(1) amortized
(append plus occasional pruning), reporting O(window).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

from .budget import BudgetTracker

__all__ = ["TenantSlo", "SloTracker"]

_clock = time.monotonic


@dataclass(frozen=True)
class TenantSlo:
    """One tenant's rolling-window SLO state at one instant."""

    tenant: str
    objective: float
    count: int
    violations: int
    burn_rate: float
    by_class: dict[str, int]

    @property
    def compliance(self) -> float:
        if self.count == 0:
            return 1.0
        return 1.0 - self.violations / self.count

    def to_dict(self) -> dict[str, object]:
        return {
            "tenant": self.tenant,
            "objective": self.objective,
            "count": self.count,
            "violations": self.violations,
            "compliance": round(self.compliance, 6),
            "burn_rate": round(self.burn_rate, 6),
            "by_class": dict(sorted(self.by_class.items())),
        }


class _TenantWindow:
    __slots__ = ("samples",)

    def __init__(self, max_samples: int) -> None:
        # (monotonic_s, interaction_class, violated)
        self.samples: deque[tuple[float, str, bool]] = deque(
            maxlen=max_samples
        )

    def prune(self, now: float, window_s: float) -> None:
        while self.samples and now - self.samples[0][0] > window_s:
            self.samples.popleft()


class SloTracker:
    """Rolling-window burn-rate accounting, one window per tenant.

    ``objective`` is the target fraction of in-budget interactions
    (0.99 → a 1% error budget). ``budgets`` (usually ``OBS.budgets``) lets
    :meth:`observe` derive the violated flag from a duration when the
    caller has not already decided; explicitly passed flags win.
    """

    def __init__(
        self,
        objective: float = 0.99,
        window_s: float = 30.0,
        max_samples: int = 512,
        budgets: BudgetTracker | None = None,
    ) -> None:
        if not 0.0 < objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if max_samples < 1:
            raise ValueError("max_samples must be positive")
        self.objective = objective
        self.window_s = window_s
        self.max_samples = max_samples
        self.budgets = budgets
        self._lock = threading.Lock()
        self._tenants: dict[str, _TenantWindow] \
            = {}  # guarded-by: _lock

    # -- accounting --------------------------------------------------------

    def observe(
        self,
        tenant: str,
        interaction_class: str,
        duration_ms: float,
        violated: bool | None = None,
    ) -> bool:
        """Account one finished interaction for ``tenant``.

        Returns the violated flag actually recorded (derived from the
        budget tracker when not passed; unbudgeted classes never violate).
        """
        if violated is None:
            if self.budgets is not None:
                violated = self.budgets.budget(
                    interaction_class
                ).violated_by(duration_ms)
            else:
                violated = False
        now = _clock()
        with self._lock:
            window = self._tenants.get(tenant)
            if window is None:
                window = self._tenants[tenant] = _TenantWindow(
                    self.max_samples
                )
            window.prune(now, self.window_s)
            window.samples.append((now, interaction_class, bool(violated)))
        return bool(violated)

    # -- reporting ---------------------------------------------------------

    def _tenant_locked(self, tenant: str, now: float) -> TenantSlo:
        window = self._tenants.get(tenant)
        if window is None:
            return TenantSlo(tenant, self.objective, 0, 0, 0.0, {})
        window.prune(now, self.window_s)
        count = len(window.samples)
        violations = sum(1 for _, _, bad in window.samples if bad)
        by_class: dict[str, int] = {}
        for _, interaction_class, _ in window.samples:
            by_class[interaction_class] = by_class.get(
                interaction_class, 0
            ) + 1
        allowed = 1.0 - self.objective
        burn = (violations / count) / allowed if count else 0.0
        return TenantSlo(tenant, self.objective, count, violations,
                         burn, by_class)

    def burn_rate(self, tenant: str) -> float:
        """The tenant's current burn rate (0.0 for unseen tenants)."""
        with self._lock:
            return self._tenant_locked(tenant, _clock()).burn_rate

    def tenant(self, tenant: str) -> TenantSlo:
        with self._lock:
            return self._tenant_locked(tenant, _clock())

    def tenants(self) -> list[str]:
        with self._lock:
            return sorted(self._tenants)

    def peak_burn_rate(self) -> float:
        """The highest burn rate across all tenants (0.0 when empty).

        The shedder uses this to tell *attributable* overload (spare the
        healthy tenants, degrade the offender) from diffuse overload
        (no offender — shed everyone).
        """
        now = _clock()
        with self._lock:
            return max(
                (self._tenant_locked(name, now).burn_rate
                 for name in self._tenants),
                default=0.0,
            )

    def snapshot(self) -> dict[str, TenantSlo]:
        """Every tenant's state, keyed by tenant name."""
        now = _clock()
        with self._lock:
            return {
                name: self._tenant_locked(name, now)
                for name in sorted(self._tenants)
            }

    def reset(self) -> None:
        with self._lock:
            self._tenants.clear()
