"""Hierarchical span tracing with a no-op fast path.

The survey's efficiency requirements (Section 2) are claims about *where
time goes* — caching, incremental computation, progressive approximation
all trade one kind of work for another. This module is the measuring
instrument: a dependency-free tracer whose spans nest (query → operator →
store access), survive generator suspension (pull-based operators yield
mid-span), and cost a single attribute check per call site when disabled.

Design points:

* **Monotonic clocks** — all durations come from ``time.perf_counter_ns``;
  wall-clock timestamps are never compared.
* **Suspension-aware durations** — :meth:`Span.pause` / :meth:`Span.resume`
  accumulate *active* nanoseconds, so a generator that yields mid-span is
  charged only for the time it actually ran. :func:`traced_iter` wraps any
  iterator with that bookkeeping.
* **Thread safety** — the ambient span stack is thread-local; the recorder
  of finished root spans takes a lock only when a root span closes.
* **Sampling** — a deterministic error-accumulation sampler keeps exactly
  ``sample_rate`` of root spans in the long run (children follow their
  root's fate, so traces are never torn).
* **Disabled fast path** — :meth:`Tracer.span` returns one shared
  :class:`NoopSpan` singleton when tracing is off: no allocation, no
  clock read, no stack mutation.
* **Wire identity** — every span carries a random 64-bit ``span_id`` and
  inherits (or mints) a ``trace_id``. A :class:`TraceContext` travels on
  HTTP requests as ``X-Repro-Trace`` / ``X-Repro-Span`` headers, so a
  span opened in another process with ``remote_parent=ctx`` continues the
  caller's trace and the per-process JSONL exports stitch back into one
  cross-process tree (:func:`repro.obs.export.stitch_records`).
"""

from __future__ import annotations

import functools
import random
import re
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping

__all__ = [
    "Span",
    "NoopSpan",
    "NOOP_SPAN",
    "SpanRecorder",
    "TraceContext",
    "Tracer",
    "traced_iter",
]

_clock = time.perf_counter_ns

TRACE_HEADER = "X-Repro-Trace"
SPAN_HEADER = "X-Repro-Span"

_ID_PATTERN = re.compile(r"^[0-9a-f]{1,32}$")


def _new_id() -> str:
    """A random 64-bit id in lowercase hex (trace and span identity)."""
    return f"{random.getrandbits(64):016x}"


@dataclass(frozen=True)
class TraceContext:
    """The wire form of "where in whose trace am I": trace id + span id.

    ``to_headers`` / ``from_headers`` carry the context across HTTP hops;
    a span opened with ``remote_parent=ctx`` in the receiving process
    continues the trace, and the exported record's ``parent_span_id``
    points back at the caller's wire-call span so the per-process JSONL
    files stitch into a single tree.
    """

    trace_id: str
    span_id: str

    def to_headers(self) -> dict[str, str]:
        return {TRACE_HEADER: self.trace_id, SPAN_HEADER: self.span_id}

    @classmethod
    def from_headers(
        cls, headers: Mapping[str, str]
    ) -> "TraceContext | None":
        """Parse a context from (case-insensitive) request headers.

        Returns ``None`` when the headers are absent or malformed — a
        garbage trace id from an arbitrary client must not corrupt the
        receiving process's telemetry.
        """
        lowered = {str(k).lower(): str(v) for k, v in headers.items()}
        trace_id = lowered.get(TRACE_HEADER.lower(), "").strip().lower()
        span_id = lowered.get(SPAN_HEADER.lower(), "").strip().lower()
        if not _ID_PATTERN.match(trace_id) or not _ID_PATTERN.match(span_id):
            return None
        return cls(trace_id=trace_id, span_id=span_id)


class Span:
    """One timed region with attributes and child spans.

    Duration is *active* time: the sum of run segments between
    ``start``/``resume`` and ``pause``/``end``. For spans that never pause
    this equals wall time; for generator-backed spans it excludes the time
    the generator sat suspended in its consumer.
    """

    __slots__ = (
        "name",
        "attributes",
        "children",
        "start_ns",
        "end_ns",
        "_active_ns",
        "_resumed_at",
        "error",
        "trace_id",
        "span_id",
        "remote_parent_id",
    )

    def __init__(self, name: str, **attributes: object) -> None:
        self.name = name
        self.attributes: dict[str, object] = dict(attributes)
        self.children: list[Span] = []
        self.start_ns = _clock()
        self.end_ns: int | None = None
        self._active_ns = 0
        self._resumed_at: int | None = self.start_ns
        self.error: str | None = None
        # Wire identity: the tracer fills trace_id in (inherit from parent,
        # continue a remote context, or mint a fresh one for new roots);
        # bare/manual spans stitch under whatever tree attaches them.
        self.trace_id: str | None = None
        self.span_id: str = _new_id()
        self.remote_parent_id: str | None = None

    # -- construction ------------------------------------------------------

    @classmethod
    def manual(
        cls, name: str, duration_ns: int, **attributes: object
    ) -> "Span":
        """A pre-measured span (e.g. built post-hoc from operator timers)."""
        span = cls(name, **attributes)
        span._resumed_at = None
        span._active_ns = int(duration_ns)
        span.end_ns = span.start_ns + int(duration_ns)
        return span

    # -- lifecycle ---------------------------------------------------------

    def pause(self) -> None:
        """Stop charging time to this span (generator about to yield)."""
        if self._resumed_at is not None:
            self._active_ns += _clock() - self._resumed_at
            self._resumed_at = None

    def resume(self) -> None:
        """Start charging time again (generator resumed)."""
        if self._resumed_at is None:
            self._resumed_at = _clock()

    def end(self) -> None:
        if self.end_ns is not None:
            return
        now = _clock()
        if self._resumed_at is not None:
            self._active_ns += now - self._resumed_at
            self._resumed_at = None
        self.end_ns = now

    # -- data --------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.end_ns is not None

    @property
    def duration_ns(self) -> int:
        """Active nanoseconds so far (final once :meth:`end` has run)."""
        active = self._active_ns
        if self._resumed_at is not None:
            active += _clock() - self._resumed_at
        return active

    @property
    def duration_ms(self) -> float:
        return self.duration_ns / 1e6

    @property
    def wall_ns(self) -> int:
        """Start-to-end nanoseconds, suspensions included."""
        end = self.end_ns if self.end_ns is not None else _clock()
        return end - self.start_ns

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = value

    def context(self) -> TraceContext | None:
        """This span's wire context (``None`` until a trace id is known)."""
        if self.trace_id is None:
            return None
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    def add_child(self, child: "Span") -> None:
        self.children.append(child)

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["Span"]:
        return [span for span in self.walk() if span.name == name]

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.error = exc_type.__name__
        # The tracer that opened this span closes it (pops the stack);
        # manual use (Span(...) as plain context manager) just ends it.
        self.end()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.end_ns is None else f"{self.duration_ms:.3f}ms"
        return f"<Span {self.name!r} {state} children={len(self.children)}>"


class NoopSpan:
    """The shared do-nothing span returned while tracing is disabled.

    Every method is a no-op and every instance-producing call returns the
    singleton itself, so the disabled path allocates nothing.
    """

    __slots__ = ()

    name = ""
    attributes: dict[str, object] = {}
    children: tuple = ()
    duration_ns = 0
    duration_ms = 0.0
    wall_ns = 0
    finished = True
    error = None
    trace_id = None
    span_id = ""
    remote_parent_id = None

    def pause(self) -> None:
        pass

    def resume(self) -> None:
        pass

    def end(self) -> None:
        pass

    def set_attribute(self, key: str, value: object) -> None:
        pass

    def context(self) -> None:
        return None

    def add_child(self, child: object) -> None:
        pass

    def walk(self) -> Iterator["NoopSpan"]:
        return iter(())

    def find(self, name: str) -> list:
        return []

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NOOP_SPAN = NoopSpan()


class SpanRecorder:
    """Thread-safe sink of finished root spans, bounded by ``max_spans``."""

    def __init__(self, max_spans: int = 10_000) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be positive")
        self.max_spans = max_spans
        self._lock = threading.Lock()
        self._spans: list[Span] = []  # guarded-by: _lock
        self.dropped = 0  # guarded-by: _lock

    def record(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self.dropped += 1
                return
            self._spans.append(span)

    def drain(self) -> list[Span]:
        """Return and remove everything recorded so far."""
        with self._lock:
            spans, self._spans = self._spans, []
            return spans

    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


class _SpanStack(threading.local):
    def __init__(self) -> None:
        self.stack: list[Span] = []


class Tracer:
    """Creates and nests spans; owns the recorder and the sampler.

    ``enabled`` is the one attribute hot call sites check. When False,
    :meth:`span` returns :data:`NOOP_SPAN` immediately.
    """

    def __init__(self, enabled: bool = False, sample_rate: float = 1.0,
                 max_spans: int = 10_000) -> None:
        if not (0.0 <= sample_rate <= 1.0):
            raise ValueError("sample_rate must be in [0, 1]")
        self.enabled = enabled
        self.sample_rate = sample_rate
        self.recorder = SpanRecorder(max_spans)
        self._local = _SpanStack()
        self._sample_lock = threading.Lock()
        self._sample_error = 0.0  # guarded-by: _sample_lock

    # -- sampling ----------------------------------------------------------

    def _sample(self) -> bool:
        """Deterministic error-diffusion sampling of root spans."""
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        with self._sample_lock:
            self._sample_error += self.sample_rate
            if self._sample_error >= 1.0:
                self._sample_error -= 1.0
                return True
            return False

    # -- span API ----------------------------------------------------------

    def span(
        self,
        name: str,
        remote_parent: TraceContext | None = None,
        **attributes: object,
    ) -> Span | NoopSpan:
        """Open a span nested under the current one (context manager).

        Closing the span (the ``with`` exit) pops it from the ambient
        stack; root spans additionally land in the recorder.

        ``remote_parent`` continues a trace started in another process:
        the span adopts the context's trace id and remembers the caller's
        span id, so the exported record stitches under the caller's
        wire-call span (:func:`repro.obs.export.stitch_records`).
        """
        if not self.enabled:
            return NOOP_SPAN
        stack = self._local.stack
        if not stack and not self._sample():
            # Sampling decisions are made per root span; spans opened under
            # a sampled-out root re-sample as roots themselves.
            return NOOP_SPAN
        span = _TracerSpan(self, name, **attributes)
        if stack:
            parent = stack[-1]
            parent.add_child(span)
            span.trace_id = parent.trace_id
        elif remote_parent is not None:
            span.trace_id = remote_parent.trace_id
            span.remote_parent_id = remote_parent.span_id
        else:
            span.trace_id = _new_id()
        stack.append(span)
        return span

    def current(self) -> Span | None:
        stack = self._local.stack
        return stack[-1] if stack else None

    def current_context(self) -> TraceContext | None:
        """The ambient span's wire context, or ``None`` outside any trace."""
        current = self.current()
        if current is None:
            return None
        return current.context()

    def traced(self, name: str | None = None, **attributes: object) -> Callable:
        """Decorator form: the wrapped call runs inside a span."""

        def decorate(fn: Callable) -> Callable:
            span_name = name or f"{fn.__module__}.{fn.__qualname__}"

            @functools.wraps(fn)
            def wrapper(*args: object, **kwargs: object) -> object:
                if not self.enabled:
                    return fn(*args, **kwargs)
                with self.span(span_name, **attributes):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    def attach(self, span: Span) -> None:
        """Add a pre-built (e.g. manual) span under the current span, or
        record it as a root if nothing is open."""
        if not self.enabled:
            return
        current = self.current()
        if current is not None:
            current.add_child(span)
        else:
            self.recorder.record(span)

    def reset(self) -> None:
        self.recorder.clear()
        self._local = _SpanStack()
        with self._sample_lock:
            self._sample_error = 0.0


class _TracerSpan(Span):
    """A tracer-owned span: closing it maintains the ambient stack."""

    __slots__ = ("_tracer",)

    def __init__(self, tracer: Tracer, name: str, **attributes: object) -> None:
        super().__init__(name, **attributes)
        self._tracer = tracer

    def end(self) -> None:
        if self.end_ns is not None:
            return
        super().end()
        tracer = self._tracer
        stack = tracer._local.stack
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # leaked children above us: pop through
            while stack and stack[-1] is not self:
                stack.pop()
            if stack:
                stack.pop()
        if not stack:
            tracer.recorder.record(self)

    def pause(self) -> None:
        """Pause and step out of the ambient stack (generator yielding)."""
        super().pause()
        stack = self._tracer._local.stack
        if stack and stack[-1] is self:
            stack.pop()

    def resume(self) -> None:
        """Resume and re-enter the ambient stack (generator resumed)."""
        super().resume()
        stack = self._tracer._local.stack
        if not stack or stack[-1] is not self:
            stack.append(self)


def traced_iter(
    tracer: Tracer, name: str, iterable: Iterable, **attributes: object
) -> Iterator:
    """Iterate ``iterable`` inside a suspension-aware span.

    The span is active only while the underlying iterator is computing the
    next item; time spent by the consumer between items is not charged.
    The item count lands in the span's ``items`` attribute.
    """
    if not tracer.enabled:
        yield from iterable
        return
    span = tracer.span(name, **attributes)
    count = 0
    iterator = iter(iterable)
    try:
        while True:
            span.resume()
            try:
                item = next(iterator)
            except StopIteration:
                break
            finally:
                span.pause()
            count += 1
            yield item
    finally:
        span.set_attribute("items", count)
        span.resume()
        span.end()
