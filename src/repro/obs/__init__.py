"""repro.obs — unified telemetry: spans, metrics, and progress events.

One process-wide :class:`Observability` handle (``OBS``) owns the tracer,
the metrics registry, and the progress emitter. Hot call sites across the
query/store/cache stack guard on a single attribute check::

    from repro.obs import OBS
    ...
    if OBS.enabled:
        OBS.metrics.counter("store.paged.page_miss").inc()

Tracing starts disabled; enable it with :func:`configure`, the
:envvar:`REPRO_TRACE` environment variable, or the :func:`trace_query`
convenience context manager::

    from repro.obs import trace_query, render_span_tree

    with trace_query("dashboard refresh") as span:
        engine.query(text)
    print(render_span_tree(span))

Error accounting is always on (exceptions are rare, visibility is cheap):
:func:`record_error` bumps the ``obs.errors`` counter labelled with the
site and exception type, replacing silent ``except: pass`` swallowing.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

from .export import (
    merge_into_bench,
    render_span_tree,
    span_to_dicts,
    spans_to_jsonl,
    telemetry_payload,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .progress import ProgressEmitter, ProgressEvent
from .trace import (
    NOOP_SPAN,
    NoopSpan,
    Span,
    SpanRecorder,
    Tracer,
    traced_iter,
)

__all__ = [
    "OBS",
    "Observability",
    "configure",
    "record_error",
    "trace_query",
    # trace
    "Span",
    "NoopSpan",
    "NOOP_SPAN",
    "SpanRecorder",
    "Tracer",
    "traced_iter",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    # progress
    "ProgressEmitter",
    "ProgressEvent",
    # export
    "span_to_dicts",
    "spans_to_jsonl",
    "render_span_tree",
    "telemetry_payload",
    "merge_into_bench",
]


def _env_enabled() -> bool:
    return os.environ.get("REPRO_TRACE", "").strip() not in ("", "0", "false")


class Observability:
    """The process-wide telemetry handle: tracer + metrics + progress.

    ``enabled`` is the one flag hot paths check; it mirrors
    ``tracer.enabled`` so both spellings stay consistent.
    """

    __slots__ = ("enabled", "tracer", "metrics", "progress")

    def __init__(self, enabled: bool | None = None) -> None:
        if enabled is None:
            enabled = _env_enabled()
        self.enabled = enabled
        self.tracer = Tracer(enabled=enabled)
        self.metrics = MetricsRegistry()
        self.progress = ProgressEmitter(error_counter=self._count_error)

    def _count_error(self, site: str, exc: BaseException) -> None:
        self.metrics.counter(
            "obs.errors", site=site, exception=type(exc).__name__
        ).inc()

    def configure(
        self,
        enabled: bool | None = None,
        sample_rate: float | None = None,
        max_spans: int | None = None,
    ) -> "Observability":
        if sample_rate is not None:
            if not (0.0 <= sample_rate <= 1.0):
                raise ValueError("sample_rate must be in [0, 1]")
            self.tracer.sample_rate = sample_rate
        if max_spans is not None:
            self.tracer.recorder.max_spans = max_spans
        if enabled is not None:
            self.enabled = enabled
            self.tracer.enabled = enabled
        return self

    def reset(self) -> None:
        """Clear recorded spans, metrics, and progress state (tests)."""
        self.tracer.reset()
        self.metrics.reset()
        self.progress.reset()


OBS = Observability()


def configure(
    enabled: bool | None = None,
    sample_rate: float | None = None,
    max_spans: int | None = None,
) -> Observability:
    """Configure the global telemetry handle; returns it for chaining."""
    return OBS.configure(enabled=enabled, sample_rate=sample_rate,
                         max_spans=max_spans)


def record_error(site: str, exc: BaseException) -> None:
    """Count an exception in the ``obs.errors`` metric (always on)."""
    OBS._count_error(site, exc)


@contextmanager
def trace_query(label: str = "query", **attributes: object) -> Iterator[Span]:
    """Trace one logical operation, enabling the tracer for its duration.

    The span is yielded so callers can attach attributes or render it;
    tracing is restored to its previous state on exit.
    """
    previous = OBS.enabled
    OBS.configure(enabled=True)
    span = OBS.tracer.span(label, **attributes)
    try:
        with span:
            yield span
    finally:
        OBS.configure(enabled=previous)
