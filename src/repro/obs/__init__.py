"""repro.obs — unified telemetry: spans, metrics, progress, budgets, flight.

One process-wide :class:`Observability` handle (``OBS``) owns the tracer,
the metrics registry, the progress emitter, the latency-budget tracker, and
the flight recorder. Hot call sites across the query/store/cache stack
guard on a single attribute check::

    from repro.obs import OBS
    ...
    if OBS.enabled:
        OBS.metrics.counter("store.paged.page_miss").inc()

Tracing starts disabled; enable it with :func:`configure`, the
:envvar:`REPRO_TRACE` environment variable, or the :func:`trace_query`
convenience context manager::

    from repro.obs import trace_query, render_span_tree

    with trace_query("dashboard refresh") as span:
        engine.query(text)
    print(render_span_tree(span))

*Interactions* — the user-facing operations of the exploration layer — are
accounted **always**, not only under tracing: each one is timed against its
class's latency budget (``interactive`` 100 ms, ``navigation`` 300 ms,
``progressive`` 1 s cadence), lands in the flight recorder's ring buffer,
and emits a span tagged ``interaction_class`` when tracing is on. A budget
violation or an ``obs.errors`` hit dumps the recent flight history
(JSONL + offending span tree) so slow interactions are diagnosable after
the fact::

    with OBS.interaction("facets.pivot", "navigation") as act:
        browser = browser.pivot(predicate)
    print(OBS.budgets.report().render())

Error accounting is always on (exceptions are rare, visibility is cheap):
:func:`record_error` bumps the ``obs.errors`` counter labelled with the
site and exception type — label cardinality capped, overflow folded into
``other`` — replacing silent ``except: pass`` swallowing.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from typing import Callable, Iterator

from ..env import read_flag, read_str
from .budget import (
    BATCH,
    DEFAULT_BUDGETS_MS,
    INTERACTIVE,
    NAVIGATION,
    PROGRESSIVE,
    BudgetReport,
    BudgetTracker,
    ClassReport,
    LatencyBudget,
)
from .export import (
    StitchedSpan,
    merge_into_bench,
    render_prometheus,
    render_span_tree,
    render_stitched_tree,
    span_to_dicts,
    spans_to_jsonl,
    stitch_jsonl,
    stitch_records,
    telemetry_payload,
)
from .flight import FlightDump, FlightEntry, FlightRecorder
from .metrics import (
    DEFAULT_BUCKETS,
    TIME_MS_BUCKETS,
    BoundedLabelSet,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .profile import PROFILE_ENV, SamplingProfiler, profiler_from_env
from .progress import ProgressEmitter, ProgressEvent
from .querylog import (
    QUERYLOG_DIR_ENV,
    QUERYLOG_ENV,
    QueryLog,
    QueryRecord,
    ScanObservation,
)
from .slo import SloTracker, TenantSlo
from .trace import (
    NOOP_SPAN,
    NoopSpan,
    Span,
    SpanRecorder,
    TraceContext,
    Tracer,
    traced_iter,
)

__all__ = [
    "OBS",
    "Observability",
    "Interaction",
    "configure",
    "record_error",
    "trace_query",
    "track",
    # trace
    "Span",
    "NoopSpan",
    "NOOP_SPAN",
    "SpanRecorder",
    "TraceContext",
    "Tracer",
    "traced_iter",
    # slo
    "SloTracker",
    "TenantSlo",
    # profiler
    "SamplingProfiler",
    "profiler_from_env",
    "PROFILE_ENV",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "BoundedLabelSet",
    "DEFAULT_BUCKETS",
    "TIME_MS_BUCKETS",
    # progress
    "ProgressEmitter",
    "ProgressEvent",
    # budgets
    "INTERACTIVE",
    "NAVIGATION",
    "PROGRESSIVE",
    "BATCH",
    "DEFAULT_BUDGETS_MS",
    "LatencyBudget",
    "ClassReport",
    "BudgetReport",
    "BudgetTracker",
    # flight recorder
    "FlightEntry",
    "FlightDump",
    "FlightRecorder",
    # query log
    "QueryLog",
    "QueryRecord",
    "ScanObservation",
    "QUERYLOG_ENV",
    "QUERYLOG_DIR_ENV",
    # export
    "span_to_dicts",
    "spans_to_jsonl",
    "render_span_tree",
    "StitchedSpan",
    "stitch_records",
    "stitch_jsonl",
    "render_stitched_tree",
    "render_prometheus",
    "telemetry_payload",
    "merge_into_bench",
]

_clock = time.perf_counter_ns

# Cardinality caps for the obs.errors counter labels: sites are code-chosen
# (bounded in practice), exception types are input-driven (unbounded).
_ERROR_SITE_CAP = 64
_ERROR_EXCEPTION_CAP = 16

# Hottest folded stacks attached to each flight dump while profiling.
_PROFILE_DUMP_STACKS = 40


def _env_enabled() -> bool:
    return read_flag("REPRO_TRACE")


class Interaction:
    """One budget-accounted interaction (context manager).

    Always: times the body, feeds the budget tracker, and records a flight
    entry. When tracing is enabled: additionally opens a span tagged
    ``interaction_class`` under the ambient stack. A budget violation
    triggers a (throttled) flight-recorder dump carrying the offending
    span tree.
    """

    __slots__ = ("_obs", "name", "interaction_class", "attributes",
                 "_span", "_start_ns", "remote_parent")

    def __init__(self, obs: "Observability", name: str,
                 interaction_class: str, attributes: dict[str, object],
                 remote_parent: TraceContext | None = None) -> None:
        self._obs = obs
        self.name = name
        self.interaction_class = interaction_class
        self.attributes = attributes
        self.remote_parent = remote_parent
        self._span: Span | NoopSpan = NOOP_SPAN
        self._start_ns = 0

    def set_attribute(self, key: str, value: object) -> None:
        """Attach ``key=value`` to both the flight entry and the span."""
        self.attributes[key] = value
        self._span.set_attribute(key, value)

    def __enter__(self) -> "Interaction":
        self._start_ns = _clock()
        self._span = self._obs.tracer.span(
            self.name,
            remote_parent=self.remote_parent,
            interaction_class=self.interaction_class,
            **self.attributes,
        )
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._span.__exit__(exc_type, exc, tb)
        duration_ms = (_clock() - self._start_ns) / 1e6
        obs = self._obs
        attributes = self.attributes
        attributes["interaction_class"] = self.interaction_class
        if exc_type is not None:
            attributes["error"] = exc_type.__name__
        violated = obs.budgets.observe(
            self.interaction_class, duration_ms, operation=self.name
        )
        span = self._span
        entry = obs.flight.record(
            "interaction",
            self.name,
            duration_ms=duration_ms,
            attributes=attributes,
            violated=violated,
            span=span if span is not NOOP_SPAN else None,
        )
        if violated:
            obs.flight.dump(
                f"budget:{self.interaction_class}:{self.name}",
                offending=entry,
                force=False,
            )


class Observability:
    """The process-wide telemetry handle: tracer + metrics + progress +
    budgets + flight recorder.

    ``enabled`` is the one flag hot paths check; it mirrors
    ``tracer.enabled`` so both spellings stay consistent. Budget and
    flight accounting are *always on* — they cost a couple of clock reads
    per interaction, and interactions are user-scale events, not row-scale
    ones.
    """

    __slots__ = ("enabled", "tracer", "metrics", "progress", "budgets",
                 "flight", "querylog", "profiler", "_error_sites",
                 "_error_exceptions", "_progress_last_ns")

    def __init__(self, enabled: bool | None = None) -> None:
        if enabled is None:
            enabled = _env_enabled()
        self.enabled = enabled
        self.tracer = Tracer(enabled=enabled)
        self.metrics = MetricsRegistry()
        self.progress = ProgressEmitter(error_counter=self._count_error)
        self.flight = FlightRecorder()
        # The recorder's own failures (disk full, broken profiler) count
        # into obs.errors through the non-dumping path: see
        # _count_error_quiet for why it must not re-enter the recorder.
        self.flight.error_counter = self._count_error_quiet
        self.querylog = QueryLog()
        # Records emitted without an explicit trace id inherit the ambient
        # trace; wired here (not in querylog.py) to keep the module free of
        # a circular trace import.
        self.querylog.trace_provider = self.tracer.current_context
        self.budgets = BudgetTracker(metrics=self.metrics)
        self.profiler: SamplingProfiler | None = None
        self._error_sites = BoundedLabelSet(_ERROR_SITE_CAP)
        self._error_exceptions = BoundedLabelSet(_ERROR_EXCEPTION_CAP)
        self._progress_last_ns: dict[str, int] = {}
        self.progress.tap(self._flight_progress)
        # REPRO_PROFILE starts the sampling profiler with the process and
        # attaches its hottest stacks to every flight dump.
        env_profiler = profiler_from_env(read_str(PROFILE_ENV))
        if env_profiler is not None:
            self.profiler = env_profiler
            self.flight.profile_provider = (
                lambda: env_profiler.folded(limit=_PROFILE_DUMP_STACKS)
            )
            env_profiler.start()

    # -- error accounting --------------------------------------------------

    def _count_error_quiet(self, site: str, exc: BaseException) -> str:
        """Bump ``obs.errors`` without touching the flight recorder.

        The recorder's own failure paths route here (wired as
        ``flight.error_counter``), so counting must not re-enter the
        recorder. Returns the folded site label.
        """
        folded_site = self._error_sites.fold(site)
        folded_exception = self._error_exceptions.fold(type(exc).__name__)
        self.metrics.counter(
            "obs.errors", site=folded_site, exception=folded_exception
        ).inc()
        return folded_site

    def _count_error(self, site: str, exc: BaseException) -> None:
        folded_site = self._count_error_quiet(site, exc)
        entry = self.flight.record(
            "error", folded_site,
            attributes={"exception": type(exc).__name__, "message": str(exc)},
        )
        self.flight.dump(f"error:{folded_site}", offending=entry, force=False)

    # -- interactions ------------------------------------------------------

    def interaction(self, name: str, interaction_class: str = INTERACTIVE,
                    remote_parent: TraceContext | None = None,
                    **attributes: object) -> Interaction:
        """Open one budget-accounted interaction (see :class:`Interaction`).

        ``remote_parent`` continues a trace begun in another process (the
        server passes the parsed ``X-Repro-Trace``/``X-Repro-Span``
        headers here), so the interaction's span stitches under the
        caller's wire-call span in the cross-process tree.
        """
        return Interaction(self, name, interaction_class, dict(attributes),
                           remote_parent=remote_parent)

    # -- profiler ----------------------------------------------------------

    def start_profiler(
        self, interval_ms: float = 10.0
    ) -> SamplingProfiler:
        """Start (or return) the background sampling profiler.

        Its hottest stacks attach to every flight dump until
        :meth:`stop_profiler` is called.
        """
        if self.profiler is None:
            self.profiler = SamplingProfiler(interval_ms=interval_ms)
        profiler = self.profiler
        self.flight.profile_provider = (
            lambda: profiler.folded(limit=_PROFILE_DUMP_STACKS)
        )
        profiler.start()
        return profiler

    def stop_profiler(self) -> None:
        if self.profiler is not None:
            self.profiler.stop()
        self.flight.profile_provider = None

    # -- progress → flight + cadence budget --------------------------------

    def _flight_progress(self, event: ProgressEvent) -> None:
        """Always-on tap: ring-record every progress event and hold
        progressive updates to the ``progressive`` cadence budget (the gap
        between successive events of one operation, not their duration)."""
        attributes: dict[str, object] = {"completed": event.completed}
        if event.total is not None:
            attributes["total"] = event.total
        self.flight.record("progress", event.operation, attributes=attributes)
        previous = self._progress_last_ns.get(event.operation)
        self._progress_last_ns[event.operation] = event.monotonic_ns
        if previous is not None:
            gap_ms = (event.monotonic_ns - previous) / 1e6
            self.budgets.observe(
                PROGRESSIVE, gap_ms, operation=f"progress.{event.operation}"
            )

    # -- configuration -----------------------------------------------------

    def configure(
        self,
        enabled: bool | None = None,
        sample_rate: float | None = None,
        max_spans: int | None = None,
    ) -> "Observability":
        if sample_rate is not None:
            if not (0.0 <= sample_rate <= 1.0):
                raise ValueError("sample_rate must be in [0, 1]")
            self.tracer.sample_rate = sample_rate
        if max_spans is not None:
            self.tracer.recorder.max_spans = max_spans
        if enabled is not None:
            self.enabled = enabled
            self.tracer.enabled = enabled
        return self

    def reset(self) -> None:
        """Clear recorded spans, metrics, progress, budget, and flight
        state (tests)."""
        self.tracer.reset()
        self.metrics.reset()
        self.progress.reset()
        # a fresh tracker also restores any budget overrides to the defaults
        self.budgets = BudgetTracker(metrics=self.metrics)
        self.flight.reset()
        self.querylog.reset()
        self._error_sites = BoundedLabelSet(_ERROR_SITE_CAP)
        self._error_exceptions = BoundedLabelSet(_ERROR_EXCEPTION_CAP)
        self._progress_last_ns = {}
        # ProgressEmitter.reset dropped all subscribers and taps; re-wire
        # the always-on flight feed.
        self.progress.tap(self._flight_progress)
        # The profiler (if any) keeps running across resets — it is
        # process-scoped, not workload-scoped — but starts counting afresh.
        if self.profiler is not None:
            self.profiler.reset()


OBS = Observability()


def configure(
    enabled: bool | None = None,
    sample_rate: float | None = None,
    max_spans: int | None = None,
) -> Observability:
    """Configure the global telemetry handle; returns it for chaining."""
    return OBS.configure(enabled=enabled, sample_rate=sample_rate,
                         max_spans=max_spans)


def record_error(site: str, exc: BaseException) -> None:
    """Count an exception in the ``obs.errors`` metric (always on)."""
    OBS._count_error(site, exc)


def track(name: str, interaction_class: str = INTERACTIVE,
          **attributes: object) -> Callable:
    """Decorator form of :meth:`Observability.interaction`.

    The wrapped call is budget-accounted and flight-recorded on the global
    handle; under tracing it runs inside a span tagged
    ``interaction_class``.
    """

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args: object, **kwargs: object) -> object:
            with OBS.interaction(name, interaction_class, **attributes):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


@contextmanager
def trace_query(label: str = "query", **attributes: object) -> Iterator[Span]:
    """Trace one logical operation, enabling the tracer for its duration.

    The span is yielded so callers can attach attributes or render it;
    tracing is restored to its previous state on exit.
    """
    previous = OBS.enabled
    OBS.configure(enabled=True)
    span = OBS.tracer.span(label, **attributes)
    try:
        with span:
            yield span
    finally:
        OBS.configure(enabled=previous)
