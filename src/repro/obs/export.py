"""Telemetry exporters: JSON-lines, span trees, stitching, Prometheus.

Five consumers, five formats:

* :func:`spans_to_jsonl` — flat one-object-per-line dump (span ids +
  parent ids, plus wire ``trace_id``/``span_id``/``parent_span_id``) for
  offline analysis;
* :func:`render_span_tree` — the human-readable tree the README quickstart
  shows, durations annotated per node;
* :func:`stitch_records` / :func:`stitch_jsonl` — merge per-process JSONL
  exports into one cross-process span tree, linking a remote process's
  continuation spans under the caller's wire-call span by span id;
  :func:`render_stitched_tree` renders it with wire hops marked;
* :func:`render_prometheus` — the metrics registry in Prometheus text
  exposition format (the ``/metrics`` server surface);
* :func:`merge_into_bench` — folds a metrics/span summary into the
  ``BENCH_*.json`` files the benchmark suite writes, so perf PRs can diff
  telemetry alongside timings.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from typing import IO, Iterable

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .trace import Span, Tracer

__all__ = [
    "span_to_dicts",
    "spans_to_jsonl",
    "render_span_tree",
    "StitchedSpan",
    "stitch_records",
    "stitch_jsonl",
    "render_stitched_tree",
    "render_prometheus",
    "telemetry_payload",
    "merge_into_bench",
]


def span_to_dicts(span: Span, _parent_id: int | None = None,
                  _counter: list[int] | None = None,
                  _parent_span_id: str | None = None,
                  _trace_id: str | None = None) -> list[dict]:
    """Flatten one span tree into dicts with ``id``/``parent_id`` links.

    Each record also carries the wire identity — ``trace_id`` (inherited
    down the tree when a child was attached post-hoc, e.g. operator
    spans), ``span_id``, and ``parent_span_id`` (the in-tree parent's span
    id, or for a remote-continuation root the caller's wire-call span id)
    — which is what :func:`stitch_records` links cross-process trees by.
    """
    counter = _counter if _counter is not None else [0]
    counter[0] += 1
    local_id = counter[0]
    trace_id = span.trace_id or _trace_id
    parent_span_id = _parent_span_id or span.remote_parent_id
    record = {
        "id": local_id,
        "parent_id": _parent_id,
        "name": span.name,
        "start_ns": span.start_ns,
        "duration_ns": span.duration_ns,
        "duration_ms": round(span.duration_ms, 6),
        "span_id": span.span_id,
    }
    if trace_id is not None:
        record["trace_id"] = trace_id
    if parent_span_id is not None:
        record["parent_span_id"] = parent_span_id
    if span.attributes:
        record["attributes"] = dict(span.attributes)
    if span.error is not None:
        record["error"] = span.error
    records = [record]
    for child in span.children:
        records.extend(span_to_dicts(child, local_id, counter,
                                     span.span_id, trace_id))
    return records


def spans_to_jsonl(spans: Iterable[Span], fh: IO[str] | None = None) -> str:
    """Serialize span trees as JSON lines; writes to ``fh`` when given."""
    lines = []
    counter = [0]
    for span in spans:
        for record in span_to_dicts(span, None, counter):
            lines.append(json.dumps(record, default=str, sort_keys=True))
    text = "\n".join(lines) + ("\n" if lines else "")
    if fh is not None:
        fh.write(text)
    return text


def render_span_tree(span: Span, indent: int = 0) -> str:
    """Indented text rendering of one span tree with durations."""
    attrs = ""
    if span.attributes:
        rendered = " ".join(f"{k}={v}" for k, v in span.attributes.items())
        attrs = f"  [{rendered}]"
    error = f"  !{span.error}" if span.error else ""
    line = f"{'  ' * indent}{span.name}  {span.duration_ms:.3f}ms{attrs}{error}"
    parts = [line]
    parts.extend(render_span_tree(child, indent + 1) for child in span.children)
    return "\n".join(parts)


@dataclass
class StitchedSpan:
    """One node of a cross-process span tree rebuilt from JSONL records."""

    record: dict
    children: list["StitchedSpan"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return str(self.record.get("name", ""))

    @property
    def trace_id(self) -> str | None:
        value = self.record.get("trace_id")
        return str(value) if value is not None else None

    @property
    def span_id(self) -> str:
        return str(self.record.get("span_id", ""))

    @property
    def duration_ms(self) -> float:
        return float(self.record.get("duration_ms", 0.0))

    @property
    def attributes(self) -> dict:
        found = self.record.get("attributes")
        return found if isinstance(found, dict) else {}

    @property
    def service(self) -> str | None:
        """Which process/server produced this span (``None`` when untagged).

        Server interactions tag their spans ``service=repro-server:<port>``;
        a change of service between parent and child is a wire hop. An
        untagged span belongs to whatever service produced its parent —
        operator spans inside a server are not wire hops.
        """
        found = self.attributes.get("service")
        return str(found) if found is not None else None

    def walk(self) -> Iterable["StitchedSpan"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["StitchedSpan"]:
        return [node for node in self.walk() if node.name == name]


def stitch_records(records: Iterable[dict]) -> list[StitchedSpan]:
    """Merge span records from any number of processes into linked trees.

    Records are linked by ``span_id`` → ``parent_span_id``: within one
    export that reproduces the local tree; across exports a remote
    process's continuation span (opened with ``remote_parent``) carries
    the caller's wire-call span id as its ``parent_span_id`` and therefore
    lands *under* that wire-call span — one tree per trace, wire hops
    included. Duplicate span ids (overlapping exports) keep the first
    record seen; orphans (parent not exported) become roots. Returns the
    roots in input order.
    """
    nodes: dict[str, StitchedSpan] = {}
    ordered: list[StitchedSpan] = []
    for record in records:
        span_id = str(record.get("span_id", "")) or f"_anon{len(nodes)}"
        if span_id in nodes:
            continue
        node = StitchedSpan(record)
        nodes[span_id] = node
        ordered.append(node)
    roots: list[StitchedSpan] = []
    for node in ordered:
        parent_id = node.record.get("parent_span_id")
        parent = nodes.get(str(parent_id)) if parent_id is not None else None
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            roots.append(node)
    return roots


def stitch_jsonl(*texts: str) -> list[StitchedSpan]:
    """Stitch one or more JSONL exports (one per process) into trees."""
    records = []
    for text in texts:
        for line in text.splitlines():
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return stitch_records(records)


def render_stitched_tree(node: StitchedSpan, indent: int = 0,
                         parent_service: str | None = None) -> str:
    """Indented rendering of a stitched tree; wire hops are annotated.

    A child produced by a different service than its parent gets a
    ``[wire -> service]`` marker, so a federated query reads as one
    EXPLAIN-ANALYZE-style tree with remote operator time attributed to
    the endpoint that spent it. Untagged spans inherit their parent's
    service: operator spans inside one process never read as hops.
    """
    service = node.service
    if service is None:
        service = parent_service if parent_service is not None else "local"
    hop = ""
    if parent_service is not None and service != parent_service:
        hop = f"  [wire -> {service}]"
    attrs = ""
    shown = {k: v for k, v in node.attributes.items() if k != "service"}
    if shown:
        rendered = " ".join(f"{k}={v}" for k, v in shown.items())
        attrs = f"  [{rendered}]"
    error = f"  !{node.record['error']}" if node.record.get("error") else ""
    line = (f"{'  ' * indent}{node.name}  "
            f"{node.duration_ms:.3f}ms{hop}{attrs}{error}")
    parts = [line]
    parts.extend(
        render_stitched_tree(child, indent + 1, service)
        for child in node.children
    )
    return "\n".join(parts)


# --------------------------------------------------------------------------- #
# Prometheus text exposition
# --------------------------------------------------------------------------- #

_PROM_NAME = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    sanitized = _PROM_NAME.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _prom_labels(labels, extra: dict[str, str] | None = None) -> str:
    pairs = list(labels) + sorted((extra or {}).items())
    if not pairs:
        return ""
    rendered = ",".join(
        f'{_prom_name(str(k))}="{_prom_label_value(str(v))}"'
        for k, v in pairs
    )
    return "{" + rendered + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """The whole registry in Prometheus text exposition format (0.0.4).

    Counters gain the conventional ``_total`` suffix; histograms emit
    cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``. Metric
    names are sanitized (``obs.errors`` → ``obs_errors``); one ``# TYPE``
    line per family, families sorted by name for a stable scrape diff.
    """
    families: dict[str, tuple[str, list[str]]] = {}
    for metric in registry:
        family = _prom_name(metric.name)
        if isinstance(metric, Counter):
            kind = "counter"
            # the TYPE line must name the family as scraped: with _total
            family = f"{family}_total"
            samples = [
                f"{family}{_prom_labels(metric.labels)}"
                f" {metric.value}"
            ]
        elif isinstance(metric, Gauge):
            kind = "gauge"
            samples = [
                f"{family}{_prom_labels(metric.labels)} {metric.value:g}"
            ]
        elif isinstance(metric, Histogram):
            kind = "histogram"
            samples = []
            cumulative = 0
            for bound, count in metric.bucket_counts():
                cumulative += count
                le = "+Inf" if bound == float("inf") else f"{bound:g}"
                samples.append(
                    f"{family}_bucket"
                    f"{_prom_labels(metric.labels, {'le': le})}"
                    f" {cumulative}"
                )
            samples.append(
                f"{family}_sum{_prom_labels(metric.labels)} {metric.sum:g}"
            )
            samples.append(
                f"{family}_count{_prom_labels(metric.labels)} {metric.count}"
            )
        else:  # pragma: no cover - registry only creates the three kinds
            continue
        entry = families.setdefault(family, (kind, []))
        entry[1].extend(samples)
    lines: list[str] = []
    for family in sorted(families):
        kind, samples = families[family]
        lines.append(f"# TYPE {family} {kind}")
        lines.extend(samples)
    return "\n".join(lines) + ("\n" if lines else "")


def telemetry_payload(
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
) -> dict:
    """The merged telemetry block: metrics snapshot + per-span-name rollup."""
    payload: dict[str, object] = {}
    if registry is not None:
        payload["metrics"] = registry.snapshot()
    if tracer is not None:
        rollup: dict[str, dict[str, float]] = {}
        for root in tracer.recorder.spans():
            for span in root.walk():
                entry = rollup.setdefault(
                    span.name, {"count": 0, "total_ms": 0.0, "max_ms": 0.0}
                )
                entry["count"] += 1
                entry["total_ms"] += span.duration_ms
                entry["max_ms"] = max(entry["max_ms"], span.duration_ms)
        payload["spans"] = {
            name: {
                "count": entry["count"],
                "total_ms": round(entry["total_ms"], 6),
                "max_ms": round(entry["max_ms"], 6),
            }
            for name, entry in sorted(rollup.items())
        }
        if tracer.recorder.dropped:
            payload["spans_dropped"] = tracer.recorder.dropped
    return payload


def merge_into_bench(
    path: str | os.PathLike,
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    key: str = "telemetry",
) -> dict:
    """Fold a telemetry payload into an existing ``BENCH_*.json`` file.

    Creates the file (as ``{key: payload}``) if missing; otherwise reads
    the benchmark results dict, sets ``result[key]``, and writes it back.
    Returns the merged document.
    """
    payload = telemetry_payload(registry, tracer)
    document: dict = {}
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as fh:
            loaded = json.load(fh)
        if not isinstance(loaded, dict):
            raise ValueError(f"{path} does not hold a JSON object")
        document = loaded
    document[key] = payload
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, default=str)
        fh.write("\n")
    return document
