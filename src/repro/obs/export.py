"""Telemetry exporters: JSON-lines, text span trees, and BENCH_*.json merge.

Three consumers, three formats:

* :func:`spans_to_jsonl` — flat one-object-per-line dump (span ids +
  parent ids) for offline analysis;
* :func:`render_span_tree` — the human-readable tree the README quickstart
  shows, durations annotated per node;
* :func:`merge_into_bench` — folds a metrics/span summary into the
  ``BENCH_*.json`` files the benchmark suite writes, so perf PRs can diff
  telemetry alongside timings.
"""

from __future__ import annotations

import json
import os
from typing import IO, Iterable

from .metrics import MetricsRegistry
from .trace import Span, Tracer

__all__ = [
    "span_to_dicts",
    "spans_to_jsonl",
    "render_span_tree",
    "telemetry_payload",
    "merge_into_bench",
]


def span_to_dicts(span: Span, _parent_id: int | None = None,
                  _counter: list[int] | None = None) -> list[dict]:
    """Flatten one span tree into dicts with ``id``/``parent_id`` links."""
    counter = _counter if _counter is not None else [0]
    counter[0] += 1
    span_id = counter[0]
    record = {
        "id": span_id,
        "parent_id": _parent_id,
        "name": span.name,
        "start_ns": span.start_ns,
        "duration_ns": span.duration_ns,
        "duration_ms": round(span.duration_ms, 6),
    }
    if span.attributes:
        record["attributes"] = dict(span.attributes)
    if span.error is not None:
        record["error"] = span.error
    records = [record]
    for child in span.children:
        records.extend(span_to_dicts(child, span_id, counter))
    return records


def spans_to_jsonl(spans: Iterable[Span], fh: IO[str] | None = None) -> str:
    """Serialize span trees as JSON lines; writes to ``fh`` when given."""
    lines = []
    counter = [0]
    for span in spans:
        for record in span_to_dicts(span, None, counter):
            lines.append(json.dumps(record, default=str, sort_keys=True))
    text = "\n".join(lines) + ("\n" if lines else "")
    if fh is not None:
        fh.write(text)
    return text


def render_span_tree(span: Span, indent: int = 0) -> str:
    """Indented text rendering of one span tree with durations."""
    attrs = ""
    if span.attributes:
        rendered = " ".join(f"{k}={v}" for k, v in span.attributes.items())
        attrs = f"  [{rendered}]"
    error = f"  !{span.error}" if span.error else ""
    line = f"{'  ' * indent}{span.name}  {span.duration_ms:.3f}ms{attrs}{error}"
    parts = [line]
    parts.extend(render_span_tree(child, indent + 1) for child in span.children)
    return "\n".join(parts)


def telemetry_payload(
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
) -> dict:
    """The merged telemetry block: metrics snapshot + per-span-name rollup."""
    payload: dict[str, object] = {}
    if registry is not None:
        payload["metrics"] = registry.snapshot()
    if tracer is not None:
        rollup: dict[str, dict[str, float]] = {}
        for root in tracer.recorder.spans():
            for span in root.walk():
                entry = rollup.setdefault(
                    span.name, {"count": 0, "total_ms": 0.0, "max_ms": 0.0}
                )
                entry["count"] += 1
                entry["total_ms"] += span.duration_ms
                entry["max_ms"] = max(entry["max_ms"], span.duration_ms)
        payload["spans"] = {
            name: {
                "count": entry["count"],
                "total_ms": round(entry["total_ms"], 6),
                "max_ms": round(entry["max_ms"], 6),
            }
            for name, entry in sorted(rollup.items())
        }
        if tracer.recorder.dropped:
            payload["spans_dropped"] = tracer.recorder.dropped
    return payload


def merge_into_bench(
    path: str | os.PathLike,
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    key: str = "telemetry",
) -> dict:
    """Fold a telemetry payload into an existing ``BENCH_*.json`` file.

    Creates the file (as ``{key: payload}``) if missing; otherwise reads
    the benchmark results dict, sets ``result[key]``, and writes it back.
    Returns the merged document.
    """
    payload = telemetry_payload(registry, tracer)
    document: dict = {}
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as fh:
            loaded = json.load(fh)
        if not isinstance(loaded, dict):
            raise ValueError(f"{path} does not hold a JSON object")
        document = loaded
    document[key] = payload
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, default=str)
        fh.write("\n")
    return document
