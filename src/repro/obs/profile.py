"""Stdlib-only sampling profiler: folded stacks, flamegraph-ready.

When an interaction blows its latency budget the flight recorder says
*which* operation was slow; the profiler says *where in the code* the
process was spending its time around then. A background daemon thread
wakes every ``interval_ms``, snapshots every other thread's stack via
``sys._current_frames()``, and folds each into the classic
semicolon-joined form (``root;caller;...;leaf``), counting occurrences —
the exact input ``flamegraph.pl`` and speedscope consume.

Enabled via the :envvar:`REPRO_PROFILE` environment variable (``1`` for
the default 10 ms interval, a number for a custom interval in ms) or
programmatically with :meth:`repro.obs.Observability.start_profiler`.
While running, the flight recorder attaches the hottest stacks to every
dump, so a budget-violation dump carries both the offending span tree and
a statistical picture of where the process was busy.

Costs: one C-level frame snapshot per interval (microseconds), bounded
memory (``max_unique_stacks`` distinct stacks, overflow folded into
``(other)``), zero cost to instrumented code — nothing is patched and no
per-call hooks exist, which is what keeps the disabled-mode overhead at
literally nothing.
"""

from __future__ import annotations

import sys
import threading
from typing import Iterator

__all__ = ["SamplingProfiler", "profiler_from_env", "PROFILE_ENV"]

PROFILE_ENV = "REPRO_PROFILE"

_OVERFLOW_STACK = "(other)"


def _fold_frame_stack(frame, max_depth: int) -> str:
    """One thread's stack as ``root;...;leaf`` of ``module.function``."""
    parts: list[str] = []
    depth = 0
    while frame is not None and depth < max_depth:
        code = frame.f_code
        module = frame.f_globals.get("__name__", "?")
        parts.append(f"{module}.{code.co_name}")
        frame = frame.f_back
        depth += 1
    parts.reverse()
    return ";".join(parts)


class SamplingProfiler:
    """Background wall-clock sampler over ``sys._current_frames()``.

    ``start()`` spawns the daemon thread; ``stop()`` joins it. The sampler
    skips its own thread (profiling the profiler is noise) and degrades
    gracefully: a platform without ``sys._current_frames`` simply records
    nothing.
    """

    def __init__(
        self,
        interval_ms: float = 10.0,
        max_depth: int = 64,
        max_unique_stacks: int = 10_000,
    ) -> None:
        if interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        if max_depth < 1:
            raise ValueError("max_depth must be positive")
        if max_unique_stacks < 1:
            raise ValueError("max_unique_stacks must be positive")
        self.interval_ms = interval_ms
        self.max_depth = max_depth
        self.max_unique_stacks = max_unique_stacks
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self._samples_taken = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    def start(self) -> "SamplingProfiler":
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout_s: float = 1.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout_s)
            self._thread = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def _run(self) -> None:
        interval_s = self.interval_ms / 1e3
        while not self._stop.wait(interval_s):
            self.sample_once()

    # -- sampling ----------------------------------------------------------

    def sample_once(self) -> int:
        """Take one sample of every other thread; returns stacks recorded."""
        current_frames = getattr(sys, "_current_frames", None)
        if current_frames is None:  # pragma: no cover - CPython always has it
            return 0
        me = threading.get_ident()
        recorded = 0
        frames = current_frames()
        with self._lock:
            self._samples_taken += 1
            for thread_id, frame in frames.items():
                if thread_id == me:
                    continue
                stack = _fold_frame_stack(frame, self.max_depth)
                if not stack:
                    continue
                if (stack not in self._counts
                        and len(self._counts) >= self.max_unique_stacks):
                    stack = _OVERFLOW_STACK
                self._counts[stack] = self._counts.get(stack, 0) + 1
                recorded += 1
        return recorded

    # -- reporting ---------------------------------------------------------

    @property
    def samples_taken(self) -> int:
        with self._lock:
            return self._samples_taken

    def stacks(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def _sorted(self) -> Iterator[tuple[str, int]]:
        counts = self.stacks()
        return iter(sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])))

    def folded(self, limit: int | None = None) -> str:
        """Folded-stack text (``stack count`` per line), hottest first.

        Feed it straight to ``flamegraph.pl`` or any folded-stack viewer;
        ``limit`` keeps flight-dump attachments bounded.
        """
        lines = [
            f"{stack} {count}" for stack, count in self._sorted()
        ]
        if limit is not None:
            lines = lines[:limit]
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            return {
                "running": self.running,
                "interval_ms": self.interval_ms,
                "samples_taken": self._samples_taken,
                "unique_stacks": len(self._counts),
                "total_stack_samples": sum(self._counts.values()),
            }

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()
            self._samples_taken = 0


def profiler_from_env(value: str | None) -> SamplingProfiler | None:
    """Build a profiler from the ``REPRO_PROFILE`` value, or ``None``.

    ``"1"``/``"true"``/``"yes"`` enable the default 10 ms cadence; any
    other number is a custom interval in milliseconds; empty/``0``/
    ``false`` disable.
    """
    if value is None:
        return None
    text = value.strip().lower()
    if text in ("", "0", "false", "no", "off"):
        return None
    if text in ("1", "true", "yes", "on"):
        return SamplingProfiler()
    try:
        interval_ms = float(text)
    except ValueError:
        return SamplingProfiler()
    if interval_ms <= 0:
        return None
    return SamplingProfiler(interval_ms=interval_ms)
