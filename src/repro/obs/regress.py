"""Benchmark regression gating over the committed ``BENCH_*.json`` baselines.

The benchmark suite persists headline metrics (``BENCH_planner.json``,
``BENCH_obs.json``); until now those files were a trajectory nobody
enforced. This module turns them into a contract: load a baseline, compare
a fresh run's metrics against it with configurable tolerance, and produce a
machine-readable verdict a CI job can fail on.

Metric classification (by key, heuristically — the BENCH files are flat
``{key: number}`` documents):

* **params** — run-shape fields (``entities``, ``repeats``, ``triples``,
  ``quick_mode``, …) and any non-numeric value. Timings are only
  comparable between runs with identical parameters; on mismatch every
  timing/ratio/counter comparison is *skipped* (reported, not failed).
* **timings** (``*_ms``, ``*_ns``, ``*_seconds`` …) — tolerated within
  ``timing_tolerance`` (default ±20%); only slowdowns regress.
* **ratios** (``*speedup*``, ``*ratio*``, ``*overhead*``) — tolerated
  within ``ratio_tolerance``; direction-aware (speedups must not fall,
  overheads must not rise).
* **counters** (everything else numeric, e.g. cache hit rates) — exact by
  default (``counter_tolerance = 0``): a changed hit rate is a behaviour
  change, not noise.

``--quick`` is the CI mode: fresh numbers come from a different machine
than the committed baseline, so absolute timing and ratio tolerances are
floored at ±100% (a 2x slowdown still fails) and counters get a 2% band
for plan-shape jitter. Run it as::

    python -m repro.obs.regress --quick --baseline-dir .bench-baseline \\
        BENCH_planner.json BENCH_obs.json

With no fresh files named, the CLI discovers every ``BENCH_*.json`` in
the working directory (``BENCH_planner.json``, ``BENCH_obs.json``,
``BENCH_server.json``, …). ``--json`` switches stdout to the
machine-readable verdict document (the same shape ``--output`` writes),
for toolchains that would otherwise have to parse the text table.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from dataclasses import dataclass, field
from typing import Sequence

__all__ = [
    "RegressConfig",
    "MetricComparison",
    "FileVerdict",
    "RegressionVerdict",
    "classify_metric",
    "higher_is_better",
    "compare_documents",
    "compare_files",
    "main",
]

PARAM_KEYS = frozenset({
    "experiment", "entities", "repeats", "triples", "quick_mode",
    "plans_per_planner", "estimates_per_planner", "seed",
})

_TIMING_SUFFIXES = ("_ms", "_ns", "_us", "_s", "_seconds")
_TIMING_MARKERS = ("_ms_", "_ns_", "seconds_per", "_seconds_")
_RATIO_MARKERS = ("speedup", "ratio", "overhead")
_RATE_MARKERS = ("_rate", "hit_rate", "accuracy", "compliance")


def classify_metric(key: str, value: object) -> str:
    """``param`` | ``timing`` | ``ratio`` | ``counter`` | ``nested``."""
    if isinstance(value, (dict, list)):
        return "nested"
    if key in PARAM_KEYS or isinstance(value, (str, bool)) or value is None:
        return "param"
    if not isinstance(value, (int, float)):
        return "param"
    lowered = key.lower()
    if any(marker in lowered for marker in _RATE_MARKERS):
        return "counter"
    # timing before ratio: "span_overhead_ns" is a duration, not a ratio
    if lowered.endswith(_TIMING_SUFFIXES) or any(
        marker in lowered for marker in _TIMING_MARKERS
    ):
        return "timing"
    if any(marker in lowered for marker in _RATIO_MARKERS):
        return "ratio"
    return "counter"


def higher_is_better(key: str) -> bool:
    """Direction of goodness for timing/ratio metrics.

    Speedups, rates, and throughputs should not fall; times, overheads,
    and generic ratios (binding blowup, enabled/disabled cost) should not
    rise.
    """
    lowered = key.lower()
    return any(
        marker in lowered
        for marker in ("speedup", "throughput", "_qps", "per_second",
                       "_per_s", "rate")
    )


@dataclass(frozen=True)
class RegressConfig:
    timing_tolerance: float = 0.20
    ratio_tolerance: float = 0.20
    counter_tolerance: float = 0.0
    quick: bool = False
    allow_missing: bool = False

    def tolerance_for(self, kind: str) -> float:
        if kind == "timing":
            base = self.timing_tolerance
            return max(base, 1.0) if self.quick else base
        if kind == "ratio":
            base = self.ratio_tolerance
            return max(base, 1.0) if self.quick else base
        base = self.counter_tolerance
        return max(base, 0.02) if self.quick else base


@dataclass(frozen=True)
class MetricComparison:
    key: str
    kind: str
    baseline: object
    fresh: object
    status: str  # ok | improved | regressed | missing | new | skipped
    change: float | None = None  # signed relative change vs baseline
    note: str = ""

    @property
    def failed(self) -> bool:
        return self.status in ("regressed", "missing")

    def to_dict(self) -> dict[str, object]:
        record: dict[str, object] = {
            "key": self.key,
            "kind": self.kind,
            "baseline": self.baseline,
            "fresh": self.fresh,
            "status": self.status,
        }
        if self.change is not None:
            record["change"] = round(self.change, 6)
        if self.note:
            record["note"] = self.note
        return record


@dataclass(frozen=True)
class FileVerdict:
    name: str
    comparable: bool
    comparisons: tuple[MetricComparison, ...]
    note: str = ""

    @property
    def regressions(self) -> list[MetricComparison]:
        return [entry for entry in self.comparisons if entry.failed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "comparable": self.comparable,
            "ok": self.ok,
            "note": self.note,
            "comparisons": [entry.to_dict() for entry in self.comparisons],
        }


@dataclass(frozen=True)
class RegressionVerdict:
    files: tuple[FileVerdict, ...]
    config: RegressConfig = field(default_factory=RegressConfig)

    @property
    def ok(self) -> bool:
        return all(entry.ok for entry in self.files)

    @property
    def regressions(self) -> list[MetricComparison]:
        found: list[MetricComparison] = []
        for entry in self.files:
            found.extend(entry.regressions)
        return found

    def to_dict(self) -> dict[str, object]:
        return {
            "ok": self.ok,
            "quick": self.config.quick,
            "files": [entry.to_dict() for entry in self.files],
        }

    def render(self) -> str:
        lines = []
        for file_verdict in self.files:
            marker = "PASS" if file_verdict.ok else "FAIL"
            lines.append(f"[{marker}] {file_verdict.name}"
                         + (f"  ({file_verdict.note})" if file_verdict.note else ""))
            for entry in file_verdict.comparisons:
                if entry.status == "ok":
                    continue
                change = (
                    f" ({entry.change:+.1%})" if entry.change is not None else ""
                )
                lines.append(
                    f"  {entry.status:<10}{entry.key}: "
                    f"{entry.baseline} -> {entry.fresh}{change}"
                    + (f"  [{entry.note}]" if entry.note else "")
                )
        lines.append("verdict: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def _params_of(document: dict) -> dict[str, object]:
    return {
        key: value
        for key, value in document.items()
        if classify_metric(key, value) == "param"
    }


def _relative_change(baseline: float, fresh: float) -> float:
    if baseline == 0:
        return 0.0 if fresh == 0 else float("inf") if fresh > 0 else float("-inf")
    return (fresh - baseline) / abs(baseline)


def _compare_numeric(
    key: str, kind: str, baseline: float, fresh: float, config: RegressConfig
) -> MetricComparison:
    tolerance = config.tolerance_for(kind)
    change = _relative_change(baseline, fresh)
    if kind == "counter":
        if baseline == 0:
            bad = abs(fresh) > tolerance
        else:
            bad = abs(change) > tolerance
        status = "regressed" if bad else "ok"
        note = "counter drifted beyond tolerance" if bad else ""
        return MetricComparison(key, kind, baseline, fresh, status,
                                change, note)
    # timing / ratio: direction-aware
    worse = change > tolerance
    better = change < -tolerance
    if higher_is_better(key):
        worse, better = better, worse
    if worse:
        return MetricComparison(
            key, kind, baseline, fresh, "regressed", change,
            f"beyond ±{tolerance:.0%} tolerance",
        )
    if better:
        return MetricComparison(key, kind, baseline, fresh, "improved", change)
    return MetricComparison(key, kind, baseline, fresh, "ok", change)


def compare_documents(
    baseline: dict,
    fresh: dict,
    config: RegressConfig | None = None,
    name: str = "bench",
) -> FileVerdict:
    """Compare two BENCH documents; the heart of the regression gate."""
    config = config or RegressConfig()
    baseline_params = _params_of(baseline)
    fresh_params = _params_of(fresh)
    mismatched = sorted(
        key
        for key in set(baseline_params) & set(fresh_params)
        if baseline_params[key] != fresh_params[key]
    )
    comparable = not mismatched
    note = (
        "" if comparable
        else "run parameters differ (" + ", ".join(mismatched) + "); "
             "metric comparisons skipped"
    )

    comparisons: list[MetricComparison] = []
    for key in sorted(set(baseline) | set(fresh)):
        baseline_value = baseline.get(key)
        fresh_value = fresh.get(key)
        kind = classify_metric(key, baseline_value if key in baseline else fresh_value)
        if kind in ("param", "nested"):
            continue
        if key not in fresh:
            status = "skipped" if config.allow_missing else "missing"
            comparisons.append(MetricComparison(
                key, kind, baseline_value, None, status,
                note="metric absent from fresh run",
            ))
            continue
        if key not in baseline:
            comparisons.append(MetricComparison(
                key, kind, None, fresh_value, "new",
                note="metric absent from baseline",
            ))
            continue
        if not comparable:
            comparisons.append(MetricComparison(
                key, kind, baseline_value, fresh_value, "skipped",
                note="incomparable runs",
            ))
            continue
        comparisons.append(_compare_numeric(
            key, kind, float(baseline_value), float(fresh_value), config
        ))
    return FileVerdict(name, comparable, tuple(comparisons), note)


def compare_files(
    baseline_path: str | os.PathLike,
    fresh_path: str | os.PathLike,
    config: RegressConfig | None = None,
) -> FileVerdict:
    with open(baseline_path, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    with open(fresh_path, "r", encoding="utf-8") as fh:
        fresh = json.load(fh)
    return compare_documents(
        baseline, fresh, config, name=os.path.basename(str(fresh_path))
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.regress",
        description="Compare fresh BENCH_*.json results against baselines.",
    )
    parser.add_argument("fresh", nargs="*",
                        help="fresh BENCH_*.json files to check (default: "
                             "every BENCH_*.json in the working directory)")
    parser.add_argument("--baseline-dir", required=True,
                        help="directory holding the baseline copies "
                             "(matched by file name)")
    parser.add_argument("--quick", action="store_true",
                        help="CI mode: floor tolerances for cross-machine runs")
    parser.add_argument("--json", action="store_true",
                        help="print the machine-readable verdict JSON "
                             "instead of the text table")
    parser.add_argument("--timing-tolerance", type=float, default=0.20)
    parser.add_argument("--ratio-tolerance", type=float, default=0.20)
    parser.add_argument("--counter-tolerance", type=float, default=0.0)
    parser.add_argument("--allow-missing", action="store_true",
                        help="skip (rather than fail) metrics missing from "
                             "the fresh run")
    parser.add_argument("--output", default=None,
                        help="write the machine-readable verdict JSON here")
    options = parser.parse_args(argv)

    config = RegressConfig(
        timing_tolerance=options.timing_tolerance,
        ratio_tolerance=options.ratio_tolerance,
        counter_tolerance=options.counter_tolerance,
        quick=options.quick,
        allow_missing=options.allow_missing,
    )
    fresh_paths = list(options.fresh)
    if not fresh_paths:
        fresh_paths = sorted(glob.glob("BENCH_*.json"))
        if not fresh_paths:
            print("no BENCH_*.json files found in the working directory",
                  file=sys.stderr)
            return 2
    verdicts: list[FileVerdict] = []
    for fresh_path in fresh_paths:
        baseline_path = os.path.join(
            options.baseline_dir, os.path.basename(fresh_path)
        )
        if not os.path.exists(baseline_path):
            verdicts.append(FileVerdict(
                os.path.basename(fresh_path), False, (),
                note=f"no baseline at {baseline_path}; nothing enforced",
            ))
            continue
        verdicts.append(compare_files(baseline_path, fresh_path, config))
    verdict = RegressionVerdict(tuple(verdicts), config)

    if options.json:
        print(json.dumps(verdict.to_dict(), indent=2))
    else:
        print(verdict.render())
    if options.output:
        with open(options.output, "w", encoding="utf-8") as fh:
            json.dump(verdict.to_dict(), fh, indent=2)
            fh.write("\n")
    return 0 if verdict.ok else 1


if __name__ == "__main__":
    sys.exit(main())
