"""Declarative latency budgets per interaction class.

The survey's Section 2 requirements are about *real-time, interactive*
exploration: every operation — facet selection, node expansion, drill-down,
pan/zoom — must return within perceptual latency limits even over huge
inputs. Hillview-style systems make that requirement explicit: each
interaction class carries a latency target, and the system keeps always-on
accounting of how often reality meets it.

Three built-in classes (budgets in milliseconds):

* ``interactive`` (100 ms) — direct-manipulation operations whose feedback
  must feel instantaneous: facet refresh, window queries, pans and zooms;
* ``navigation`` (300 ms) — operations that load or derive new data: pivots,
  relationship search, layouts, graph sampling;
* ``progressive`` (1000 ms) — the *cadence* of progressive updates: each
  partial answer should land within a second of the previous one;
* ``batch`` (unbudgeted) — index builds and other preparation work that is
  measured but never counts as a violation.

:class:`BudgetTracker` is the always-on accountant: every observation lands
in a per-class count/total/max, a per-class latency histogram
(:data:`~repro.obs.metrics.TIME_MS_BUCKETS` resolution), and — when over
budget — a violation counter plus an ``on_violation`` callback (the flight
recorder hooks in there). :meth:`BudgetTracker.report` summarizes it all as
a :class:`BudgetReport` with per-class compliance rates.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

from .metrics import TIME_MS_BUCKETS, MetricsRegistry

__all__ = [
    "INTERACTIVE",
    "NAVIGATION",
    "PROGRESSIVE",
    "BATCH",
    "DEFAULT_BUDGETS_MS",
    "LatencyBudget",
    "ClassReport",
    "BudgetReport",
    "BudgetTracker",
]

INTERACTIVE = "interactive"
NAVIGATION = "navigation"
PROGRESSIVE = "progressive"
BATCH = "batch"

DEFAULT_BUDGETS_MS: dict[str, float | None] = {
    INTERACTIVE: 100.0,
    NAVIGATION: 300.0,
    PROGRESSIVE: 1_000.0,
    BATCH: None,
}

ViolationCallback = Callable[[str, str, float, float], None]


@dataclass(frozen=True)
class LatencyBudget:
    """One interaction class's target: ``limit_ms`` of ``None`` = unbudgeted."""

    interaction_class: str
    limit_ms: float | None

    def violated_by(self, duration_ms: float) -> bool:
        return self.limit_ms is not None and duration_ms > self.limit_ms


@dataclass(frozen=True)
class ClassReport:
    """Accounting for one interaction class."""

    interaction_class: str
    limit_ms: float | None
    count: int
    violations: int
    total_ms: float
    max_ms: float
    p50_ms: float
    p95_ms: float

    @property
    def compliance(self) -> float:
        """Fraction of observations inside budget (1.0 when none seen)."""
        if self.count == 0:
            return 1.0
        return 1.0 - self.violations / self.count

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, object]:
        return {
            "interaction_class": self.interaction_class,
            "limit_ms": self.limit_ms,
            "count": self.count,
            "violations": self.violations,
            "compliance": round(self.compliance, 6),
            "mean_ms": round(self.mean_ms, 6),
            "max_ms": round(self.max_ms, 6),
            "p50_ms": round(self.p50_ms, 6),
            "p95_ms": round(self.p95_ms, 6),
        }


@dataclass(frozen=True)
class BudgetReport:
    """Per-class compliance summary over everything observed so far."""

    classes: tuple[ClassReport, ...]

    @property
    def total_interactions(self) -> int:
        return sum(entry.count for entry in self.classes)

    @property
    def total_violations(self) -> int:
        return sum(entry.violations for entry in self.classes)

    @property
    def overall_compliance(self) -> float:
        total = self.total_interactions
        if total == 0:
            return 1.0
        return 1.0 - self.total_violations / total

    def for_class(self, interaction_class: str) -> ClassReport | None:
        for entry in self.classes:
            if entry.interaction_class == interaction_class:
                return entry
        return None

    def to_dict(self) -> dict[str, object]:
        return {
            "total_interactions": self.total_interactions,
            "total_violations": self.total_violations,
            "overall_compliance": round(self.overall_compliance, 6),
            "classes": [entry.to_dict() for entry in self.classes],
        }

    def render(self) -> str:
        """Human-readable compliance table."""
        lines = [
            f"{'class':<14}{'budget':>10}{'count':>8}{'viol':>6}"
            f"{'compliance':>12}{'p50':>10}{'p95':>10}{'max':>10}"
        ]
        for entry in self.classes:
            budget = "-" if entry.limit_ms is None else f"{entry.limit_ms:g}ms"
            lines.append(
                f"{entry.interaction_class:<14}{budget:>10}{entry.count:>8}"
                f"{entry.violations:>6}{entry.compliance:>11.1%} "
                f"{entry.p50_ms:>8.2f}{entry.p95_ms:>10.2f}{entry.max_ms:>10.2f}"
            )
        lines.append(
            f"overall: {self.total_interactions} interactions, "
            f"{self.total_violations} violations "
            f"({self.overall_compliance:.1%} compliant)"
        )
        return "\n".join(lines)


class _ClassStats:
    __slots__ = ("count", "violations", "total_ms", "max_ms")

    def __init__(self) -> None:
        self.count = 0
        self.violations = 0
        self.total_ms = 0.0
        self.max_ms = 0.0


class BudgetTracker:
    """Always-on latency accounting against per-class budgets.

    ``metrics`` receives the per-class latency histogram
    (``obs.interaction_ms``) and violation counter
    (``obs.budget.violations``); ``on_violation`` is invoked as
    ``(interaction_class, operation, duration_ms, limit_ms)`` whenever an
    observation exceeds its class budget — the flight recorder's dump
    trigger.
    """

    def __init__(
        self,
        budgets: dict[str, float | None] | None = None,
        metrics: MetricsRegistry | None = None,
        on_violation: ViolationCallback | None = None,
    ) -> None:
        source = DEFAULT_BUDGETS_MS if budgets is None else budgets
        self._budgets: dict[str, LatencyBudget] = {
            name: LatencyBudget(name, limit) for name, limit in source.items()
        }
        self.metrics = metrics
        self.on_violation = on_violation
        self._lock = threading.Lock()
        self._stats: dict[str, _ClassStats] = {}  # guarded-by: _lock

    # -- configuration -----------------------------------------------------

    def set_budget(self, interaction_class: str, limit_ms: float | None) -> None:
        """Register or override one class's budget (``None`` = unbudgeted)."""
        if limit_ms is not None and limit_ms <= 0:
            raise ValueError("limit_ms must be positive (or None)")
        with self._lock:
            self._budgets[interaction_class] = LatencyBudget(
                interaction_class, limit_ms
            )

    def budget(self, interaction_class: str) -> LatencyBudget:
        """The class's budget; unknown classes are unbudgeted."""
        found = self._budgets.get(interaction_class)
        if found is None:
            return LatencyBudget(interaction_class, None)
        return found

    @property
    def classes(self) -> list[str]:
        with self._lock:
            known = set(self._budgets) | set(self._stats)
        return sorted(known)

    # -- accounting --------------------------------------------------------

    def observe(
        self, interaction_class: str, duration_ms: float, operation: str = ""
    ) -> bool:
        """Account one interaction; returns True when it blew its budget."""
        budget = self.budget(interaction_class)
        violated = budget.violated_by(duration_ms)
        with self._lock:
            stats = self._stats.get(interaction_class)
            if stats is None:
                stats = self._stats[interaction_class] = _ClassStats()
            stats.count += 1
            stats.total_ms += duration_ms
            if duration_ms > stats.max_ms:
                stats.max_ms = duration_ms
            if violated:
                stats.violations += 1
        if self.metrics is not None:
            self.metrics.histogram(
                "obs.interaction_ms",
                buckets=TIME_MS_BUCKETS,
                interaction_class=interaction_class,
            ).record(duration_ms)
            if violated:
                self.metrics.counter(
                    "obs.budget.violations", interaction_class=interaction_class
                ).inc()
        if violated and self.on_violation is not None:
            self.on_violation(
                interaction_class, operation, duration_ms, budget.limit_ms or 0.0
            )
        return violated

    # -- reporting ---------------------------------------------------------

    def report(self) -> BudgetReport:
        """Compliance snapshot across every class observed or budgeted."""
        entries: list[ClassReport] = []
        with self._lock:
            names = sorted(set(self._budgets) | set(self._stats))
            snapshot = {
                name: (
                    stats.count, stats.violations, stats.total_ms, stats.max_ms
                )
                for name, stats in self._stats.items()
            }
        for name in names:
            count, violations, total_ms, max_ms = snapshot.get(
                name, (0, 0, 0.0, 0.0)
            )
            p50 = p95 = 0.0
            if self.metrics is not None and count:
                histogram = self.metrics.histogram(
                    "obs.interaction_ms",
                    buckets=TIME_MS_BUCKETS,
                    interaction_class=name,
                )
                p50 = histogram.percentile(0.50)
                p95 = histogram.percentile(0.95)
            entries.append(
                ClassReport(
                    interaction_class=name,
                    limit_ms=self.budget(name).limit_ms,
                    count=count,
                    violations=violations,
                    total_ms=total_ms,
                    max_ms=max_ms,
                    p50_ms=p50,
                    p95_ms=p95,
                )
            )
        return BudgetReport(tuple(entries))

    def reset(self) -> None:
        with self._lock:
            self._stats.clear()
