"""Progress-event streams for long-running operators.

Incremental and progressive computation (survey Section 2: "approximate
answers are computed incrementally over progressively larger samples") is
only useful if the UI can *watch* it happen. :class:`ProgressEmitter` is
the channel: long-running operators — progressive aggregation, incremental
HETree materialization, bulk store builds — emit :class:`ProgressEvent`
records, and any number of subscribers (a UI, a logger, a test) observe
them without the operator knowing who is listening.

Emission is a no-op costing one attribute check when nobody subscribes.
Subscriber exceptions never propagate into the operator; they are routed
to the telemetry error counter (``obs.errors`` with the exception type as
a label) so failures are visible instead of silently swallowed.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["ProgressEvent", "ProgressEmitter"]

Subscriber = Callable[["ProgressEvent"], None]


@dataclass(frozen=True)
class ProgressEvent:
    """One observation of a long-running operation's advancement."""

    operation: str
    completed: int
    total: int | None = None
    monotonic_ns: int = field(default_factory=time.perf_counter_ns)
    attributes: dict[str, object] = field(default_factory=dict)

    @property
    def fraction(self) -> float | None:
        """Completion in [0, 1], or ``None`` when the total is unknown."""
        if self.total is None or self.total <= 0:
            return None
        return min(1.0, self.completed / self.total)

    @property
    def done(self) -> bool:
        return self.total is not None and self.completed >= self.total

    def __str__(self) -> str:
        if self.fraction is None:
            return f"{self.operation}: {self.completed} done"
        return f"{self.operation}: {self.completed}/{self.total} ({self.fraction:.0%})"


class ProgressEmitter:
    """Fan-out of progress events to registered subscribers.

    ``error_counter`` is a callable ``(operation, exception) -> None`` used
    to account subscriber failures; the package wires it to the metrics
    registry's ``obs.errors`` counter.
    """

    def __init__(
        self,
        history: int = 256,
        error_counter: Callable[[str, BaseException], None] | None = None,
    ) -> None:
        if history < 0:
            raise ValueError("history must be >= 0")
        self._lock = threading.Lock()
        self._subscribers: list[Subscriber] = []  # guarded-by: _lock
        self._taps: list[Subscriber] = []  # guarded-by: _lock
        self._history_size = history
        self._history: list[ProgressEvent] = []  # guarded-by: _lock
        self._latest: dict[str, ProgressEvent] \
            = {}  # guarded-by: _lock
        self._error_counter = error_counter

    # -- subscription ------------------------------------------------------

    def subscribe(self, subscriber: Subscriber) -> Callable[[], None]:
        """Register; returns an unsubscribe callable."""
        with self._lock:
            self._subscribers.append(subscriber)

        def unsubscribe() -> None:
            with self._lock:
                try:
                    self._subscribers.remove(subscriber)
                except ValueError:
                    # repro: swallow(unsubscribe is idempotent by
                    # contract; a second call is a no-op, not an error)
                    pass

        return unsubscribe

    def tap(self, subscriber: Subscriber) -> Callable[[], None]:
        """Register an *internal* observer (e.g. the flight recorder).

        Taps receive every published event but do not count toward
        :attr:`has_subscribers`, so guarded emitters keep their no-listener
        fast path: an operator that skips :meth:`emit` when nobody is
        watching stays silent even while taps are installed.
        """
        with self._lock:
            self._taps.append(subscriber)

        def untap() -> None:
            with self._lock:
                try:
                    self._taps.remove(subscriber)
                except ValueError:
                    # repro: swallow(untap is idempotent by contract;
                    # a second call is a no-op, not an error)
                    pass

        return untap

    @property
    def has_subscribers(self) -> bool:
        # repro: noqa(RPA001) — lock-free truthiness probe
        return bool(self._subscribers)

    # -- emission ----------------------------------------------------------

    def emit(
        self,
        operation: str,
        completed: int,
        total: int | None = None,
        **attributes: object,
    ) -> ProgressEvent | None:
        """Build and fan out one event; returns it (None if nobody listens).

        The no-listener path is the disabled fast path: one truthiness
        check, no allocation. History and ``latest`` are therefore only
        maintained while at least one subscriber is registered.
        """
        # the no-listener fast path is one lock-free truthiness
        # check by design
        # repro: noqa(RPA001)
        if not self._subscribers:
            return None
        event = ProgressEvent(operation, completed, total, attributes=attributes)
        self.publish(event)
        return event

    def publish(self, event: ProgressEvent) -> None:
        with self._lock:
            subscribers = list(self._subscribers) + list(self._taps)
            if self._history_size:
                self._history.append(event)
                if len(self._history) > self._history_size:
                    del self._history[: len(self._history) - self._history_size]
            self._latest[event.operation] = event
        for subscriber in subscribers:
            try:
                subscriber(event)
            except Exception as exc:
                if self._error_counter is not None:
                    self._error_counter(f"progress.{event.operation}", exc)

    # -- observation -------------------------------------------------------

    def latest(self, operation: str) -> ProgressEvent | None:
        """Most recent event for ``operation`` (polling interface)."""
        with self._lock:
            return self._latest.get(operation)

    def history(self, operation: str | None = None) -> list[ProgressEvent]:
        with self._lock:
            if operation is None:
                return list(self._history)
            return [e for e in self._history if e.operation == operation]

    def reset(self) -> None:
        with self._lock:
            self._subscribers.clear()
            self._taps.clear()
            self._history.clear()
            self._latest.clear()
