"""Structured query log: one durable record per executed query.

The survey's interactivity claims are claims about a *workload* — yet until
now the system could trace a single query (:mod:`repro.obs.trace`) or dump
the recent past on a violation (:mod:`repro.obs.flight`), but could not
answer "which plans are slow, which estimates are wrong, what do tenants
actually run". This module is the missing substrate: every query the
engines execute emits one :class:`QueryRecord` — plan digest, execution
strategy, tenant, interaction class, shed tier, cache outcome, trace id,
latency, the :class:`~repro.sparql.physical.EvalStats` resource counters,
and per-scan estimated-vs-actual cardinality observations — into a bounded
in-memory ring that is additionally *mirrored* to JSONL when the
:envvar:`REPRO_QUERYLOG_DIR` environment variable names a directory.

The ring answers live questions (``GET /debug/queries`` on the server, the
workload analyzer over a running process); the JSONL mirror is the durable
feed :mod:`repro.obs.workload` analyzes offline and CI uploads as an
artifact. Recording is O(1) per query: a sequence bump, one slot write,
and (mirror only) one buffered line append.

Enablement follows the tracer's precedent — off by default so library hot
paths pay a single attribute check, switched on by the serving layer, the
:envvar:`REPRO_QUERYLOG` environment variable, or setting
``OBS.querylog.enabled`` directly. Setting ``REPRO_QUERYLOG_DIR`` implies
enablement (a mirror directory without recording would be inert).

Server-side request context (tenant, interaction class, shed tier,
service) travels to the engine via a thread-local :meth:`QueryLog.serving`
scope, so the engines stay ignorant of HTTP while their records still
carry full serving attribution.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from ..env import read_flag, read_raw, read_str

__all__ = [
    "QUERYLOG_DIR_ENV",
    "QUERYLOG_ENV",
    "QueryLog",
    "QueryRecord",
    "ScanObservation",
]

QUERYLOG_DIR_ENV = "REPRO_QUERYLOG_DIR"
QUERYLOG_ENV = "REPRO_QUERYLOG"

_COUNTER_FIELDS = ("store_lookups", "scan_batches", "scan_rows", "solutions")


def _env_enabled() -> bool:
    if read_raw(QUERYLOG_ENV).strip():
        return read_flag(QUERYLOG_ENV)
    # A mirror directory without recording would be inert: imply enablement.
    return bool(read_str(QUERYLOG_DIR_ENV))


@dataclass(frozen=True)
class ScanObservation:
    """One pattern scan's estimated-vs-actual cardinality.

    ``mask`` is the pattern's bound-position signature — one character per
    S/P/O slot, ``b`` for a constant, ``v`` for a variable (``"vbb"`` =
    variable subject, bound predicate, bound object) — the key the planner
    estimated under. ``leading`` marks scans that executed exactly once
    against an empty ambient binding, so their actual row count is directly
    comparable to the planner's unconditioned estimate; only those feed the
    drift-correction table.
    """

    predicate: str | None
    mask: str
    estimated: float | None
    actual: int
    executions: int
    leading: bool

    def to_dict(self) -> dict[str, object]:
        return {
            "predicate": self.predicate,
            "mask": self.mask,
            "est": self.estimated,
            "actual": self.actual,
            "executions": self.executions,
            "leading": self.leading,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "ScanObservation":
        return cls(
            predicate=record.get("predicate"),
            mask=str(record.get("mask", "")),
            estimated=record.get("est"),
            actual=int(record.get("actual", 0)),
            executions=int(record.get("executions", 0)),
            leading=bool(record.get("leading", False)),
        )


@dataclass(frozen=True)
class QueryRecord:
    """One executed query, as the workload analyzer sees it."""

    sequence: int
    ts: float  # wall-clock (time.time) — the `since` filter key
    digest: str | None
    form: str  # SELECT | ASK | CONSTRUCT | DESCRIBE | GRAPH
    strategy: str  # iterator | vectorized:<strategies> | cached | none
    latency_ms: float
    tenant: str | None = None
    interaction_class: str | None = None
    tier: str | None = None
    service: str | None = None
    cache_hit: bool = False
    complete: bool = True  # False: abandoned stream (partial counters)
    trace_id: str | None = None
    store_lookups: int = 0
    scan_batches: int = 0
    scan_rows: int = 0
    solutions: int = 0
    scans: tuple[ScanObservation, ...] = ()

    def to_dict(self) -> dict[str, object]:
        record: dict[str, object] = {
            "seq": self.sequence,
            "ts": round(self.ts, 6),
            "digest": self.digest,
            "form": self.form,
            "strategy": self.strategy,
            "latency_ms": round(self.latency_ms, 6),
            "cache_hit": self.cache_hit,
            "store_lookups": self.store_lookups,
            "scan_batches": self.scan_batches,
            "scan_rows": self.scan_rows,
            "solutions": self.solutions,
        }
        if self.tenant is not None:
            record["tenant"] = self.tenant
        if self.interaction_class is not None:
            record["class"] = self.interaction_class
        if self.tier is not None:
            record["tier"] = self.tier
        if self.service is not None:
            record["service"] = self.service
        if self.trace_id is not None:
            record["trace_id"] = self.trace_id
        if not self.complete:
            record["complete"] = False
        if self.scans:
            record["scans"] = [scan.to_dict() for scan in self.scans]
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "QueryRecord":
        return cls(
            sequence=int(record.get("seq", 0)),
            ts=float(record.get("ts", 0.0)),
            digest=record.get("digest"),
            form=str(record.get("form", "")),
            strategy=str(record.get("strategy", "")),
            latency_ms=float(record.get("latency_ms", 0.0)),
            tenant=record.get("tenant"),
            interaction_class=record.get("class"),
            tier=record.get("tier"),
            service=record.get("service"),
            cache_hit=bool(record.get("cache_hit", False)),
            complete=bool(record.get("complete", True)),
            trace_id=record.get("trace_id"),
            store_lookups=int(record.get("store_lookups", 0)),
            scan_batches=int(record.get("scan_batches", 0)),
            scan_rows=int(record.get("scan_rows", 0)),
            solutions=int(record.get("solutions", 0)),
            scans=tuple(
                ScanObservation.from_dict(scan)
                for scan in record.get("scans", ())
            ),
        )


class _ServingContext:
    """Mutable per-request attribution, stacked thread-locally.

    The server opens one per admitted request; the shed tier is decided
    later than admission, so the context is mutable and
    :meth:`QueryLog.annotate_serving` updates the innermost scope.
    """

    __slots__ = ("tenant", "interaction_class", "tier", "service")

    def __init__(
        self,
        tenant: str | None = None,
        interaction_class: str | None = None,
        tier: str | None = None,
        service: str | None = None,
    ) -> None:
        self.tenant = tenant
        self.interaction_class = interaction_class
        self.tier = tier
        self.service = service


class QueryLog:
    """Bounded ring of :class:`QueryRecord` with an optional JSONL mirror.

    The ring retains the most recent ``capacity`` records by sequence
    number under concurrent writers (same discipline as the flight
    recorder); everything ever recorded additionally lands in the JSONL
    mirror when :envvar:`REPRO_QUERYLOG_DIR` is set — the ring bounds
    memory, the mirror is the durable workload feed. ``dropped`` counts
    records the ring has overwritten (still present in the mirror).
    """

    def __init__(
        self, capacity: int = 512, enabled: bool | None = None
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.enabled = _env_enabled() if enabled is None else enabled
        # Wired by the Observability handle: a zero-arg callable returning
        # the ambient TraceContext (or None), the trace-id fallback for
        # records emitted without an explicit id.
        self.trace_provider: Callable[[], object] | None = None
        self._lock = threading.Lock()
        self._ring: list[QueryRecord | None] \
            = [None] * capacity  # guarded-by: _lock
        self._sequence = 0  # guarded-by: _lock
        self._mirror_errors = 0  # guarded-by: _lock
        self._mirror_path: str | None = None  # guarded-by: _lock
        self._mirror_handle = None  # guarded-by: _lock
        self._local = threading.local()

    # -- serving context ---------------------------------------------------

    @contextmanager
    def serving(
        self,
        tenant: str | None = None,
        interaction_class: str | None = None,
        tier: str | None = None,
        service: str | None = None,
    ) -> Iterator[_ServingContext]:
        """Attribute every record emitted in this scope (thread-local)."""
        stack = self._serving_stack()
        context = _ServingContext(tenant, interaction_class, tier, service)
        stack.append(context)
        try:
            yield context
        finally:
            stack.pop()

    def annotate_serving(self, **fields: str | None) -> None:
        """Update the innermost serving scope (e.g. the shed tier, which
        is decided after admission). No-op outside a serving scope."""
        stack = self._serving_stack()
        if not stack:
            return
        context = stack[-1]
        for key, value in fields.items():
            setattr(context, key, value)

    def current_serving(self) -> _ServingContext | None:
        stack = self._serving_stack()
        return stack[-1] if stack else None

    def _serving_stack(self) -> list[_ServingContext]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    # -- recording ---------------------------------------------------------

    def emit(
        self,
        *,
        digest: str | None,
        form: str,
        strategy: str,
        latency_ms: float,
        counters: object | None = None,
        scans: Iterable[object] = (),
        trace_id: str | None = None,
        cache_hit: bool = False,
        complete: bool = True,
        solutions: int | None = None,
    ) -> QueryRecord | None:
        """Record one executed query; returns ``None`` when disabled.

        ``counters`` is duck-read for the :class:`EvalStats` fields so the
        obs layer stays import-independent of the SPARQL stack; ``scans``
        accepts :class:`ScanObservation` objects or their dict form (the
        shape :func:`repro.sparql.physical.scan_observations` produces).
        """
        if not self.enabled:
            return None
        if trace_id is None and self.trace_provider is not None:
            context = self.trace_provider()
            trace_id = getattr(context, "trace_id", None)
        serving = self.current_serving()
        values = {
            name: int(getattr(counters, name, 0) or 0)
            for name in _COUNTER_FIELDS
        }
        if solutions is not None:
            values["solutions"] = int(solutions)
        observations = tuple(
            scan if isinstance(scan, ScanObservation)
            else ScanObservation.from_dict(scan)
            for scan in scans
        )
        with self._lock:
            sequence = self._sequence
            self._sequence += 1
            record = QueryRecord(
                sequence=sequence,
                ts=time.time(),
                digest=digest,
                form=form,
                strategy=strategy,
                latency_ms=latency_ms,
                tenant=serving.tenant if serving else None,
                interaction_class=(
                    serving.interaction_class if serving else None
                ),
                tier=serving.tier if serving else None,
                service=serving.service if serving else None,
                cache_hit=cache_hit,
                complete=complete,
                trace_id=trace_id,
                scans=observations,
                **values,
            )
            self._ring[sequence % self.capacity] = record
            self._mirror_locked(record)
        return record

    def emit_cache_hit(
        self,
        *,
        digest: str | None,
        form: str,
        latency_ms: float,
        solutions: int = 0,
        trace_id: str | None = None,
    ) -> QueryRecord | None:
        """A cache-served query: ``cache_hit=true``, zeroed scan counters —
        visible to the workload analyzer instead of vanishing."""
        return self.emit(
            digest=digest,
            form=form,
            strategy="cached",
            latency_ms=latency_ms,
            counters=None,
            scans=(),
            trace_id=trace_id,
            cache_hit=True,
            solutions=solutions,
        )

    # -- reading -----------------------------------------------------------

    def records(
        self,
        tenant: str | None = None,
        digest: str | None = None,
        since: float | None = None,
        since_seq: int | None = None,
        service: str | None = None,
    ) -> list[QueryRecord]:
        """The retained window, oldest first, optionally filtered."""
        with self._lock:
            kept = [record for record in self._ring if record is not None]
        kept.sort(key=lambda record: record.sequence)
        out = []
        for record in kept:
            if tenant is not None and record.tenant != tenant:
                continue
            if digest is not None and record.digest != digest:
                continue
            if since is not None and record.ts < since:
                continue
            if since_seq is not None and record.sequence < since_seq:
                continue
            if service is not None and record.service != service:
                continue
            out.append(record)
        return out

    def __len__(self) -> int:
        with self._lock:
            return sum(1 for record in self._ring if record is not None)

    def __iter__(self) -> Iterator[QueryRecord]:
        return iter(self.records())

    @property
    def recorded_total(self) -> int:
        """Records ever emitted (≥ the retained window once wrapped)."""
        with self._lock:
            return self._sequence

    @property
    def dropped(self) -> int:
        """Records the ring overwrote (the JSONL mirror still has them)."""
        with self._lock:
            return max(0, self._sequence - self.capacity)

    @property
    def mirror_errors(self) -> int:
        with self._lock:
            return self._mirror_errors

    @property
    def mirror_path(self) -> str | None:
        with self._lock:
            return self._mirror_path

    # -- JSONL mirror ------------------------------------------------------

    def _mirror_locked(self, record: QueryRecord) -> None:
        """Append one record to the JSONL mirror (caller holds the lock).

        The mirror must never take the query path down with it: any OSError
        counts into ``mirror_errors`` and the query proceeds. Lines are
        flushed per record so an external analyzer (or CI) sees a complete
        prefix at any moment.
        """
        directory = read_str(QUERYLOG_DIR_ENV)
        if not directory:
            return
        try:
            if self._mirror_handle is None:
                os.makedirs(directory, exist_ok=True)
                path = os.path.join(
                    directory, f"queries-{os.getpid()}.jsonl"
                )
                self._mirror_handle = open(path, "a", encoding="utf-8")
                self._mirror_path = path
            self._mirror_handle.write(
                json.dumps(record.to_dict(), sort_keys=True) + "\n"
            )
            self._mirror_handle.flush()
        except OSError:
            self._mirror_errors += 1

    def _close_mirror_locked(self) -> None:
        if self._mirror_handle is not None:
            try:
                self._mirror_handle.close()
            except OSError:
                # repro: swallow(best-effort teardown; write failures
                # were already counted into mirror_errors)
                pass
            self._mirror_handle = None
            self._mirror_path = None

    def reset(self) -> None:
        """Clear the ring and re-read env enablement (tests)."""
        with self._lock:
            self._ring = [None] * self.capacity
            self._sequence = 0
            self._mirror_errors = 0
            self._close_mirror_locked()
        self.enabled = _env_enabled()
        self._local = threading.local()
