"""Always-on flight recorder: the last N interactions, cheaply, always.

Tracing (:mod:`repro.obs.trace`) answers "where did the time go?" — but only
when it was switched on *before* the slow interaction happened. The flight
recorder closes that gap: a bounded ring buffer records every interaction,
progress event, and error as it happens (one lock-guarded slot write each),
and when something goes wrong — a latency budget is violated, or the
``obs.errors`` counter fires — the recent history is *dumped* automatically:
a JSONL transcript plus the offending span tree, diagnosable after the fact
without re-running under ``REPRO_TRACE=1``.

Dumps are kept in memory (bounded by ``max_dumps``) and, when the
:envvar:`REPRO_FLIGHT_DIR` environment variable names a directory, also
written there as ``flight-<seq>.jsonl`` files (CI uploads these as
artifacts). Automatic dumps are throttled (``auto_dump_interval_ms``) so an
error storm produces one dump per window, not thousands.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator

from ..env import read_str
from .export import render_span_tree, span_to_dicts
from .trace import Span

__all__ = ["FlightEntry", "FlightDump", "FlightRecorder"]

FLIGHT_DIR_ENV = "REPRO_FLIGHT_DIR"

_clock = time.perf_counter_ns


@dataclass(frozen=True)
class FlightEntry:
    """One ring-buffer record: an interaction, progress event, or error."""

    kind: str  # "interaction" | "progress" | "error" | "note"
    name: str
    sequence: int
    monotonic_ns: int = field(default_factory=_clock)
    duration_ms: float | None = None
    attributes: dict[str, object] = field(default_factory=dict)
    violated: bool = False
    span: Span | None = None

    def to_dict(self, include_span: bool = False) -> dict[str, object]:
        record: dict[str, object] = {
            "kind": self.kind,
            "name": self.name,
            "sequence": self.sequence,
            "monotonic_ns": self.monotonic_ns,
        }
        if self.duration_ms is not None:
            record["duration_ms"] = round(self.duration_ms, 6)
        if self.attributes:
            record["attributes"] = dict(self.attributes)
        if self.violated:
            record["violated"] = True
        if include_span and self.span is not None:
            record["span_tree"] = span_to_dicts(self.span)
        return record

    def span_tree(self) -> Span:
        """The entry's span tree; synthesized when tracing was disabled.

        Interactions always yield a tree: either the real traced span
        (with operator children etc.) or a single manual span rebuilt from
        the recorded duration and attributes — so a dump can show *which*
        interaction blew its budget even in untraced runs.
        """
        if self.span is not None:
            return self.span
        duration_ns = int((self.duration_ms or 0.0) * 1e6)
        return Span.manual(self.name, duration_ns, **self.attributes)


@dataclass(frozen=True)
class FlightDump:
    """One triggered dump: the recent history plus the offending entry."""

    reason: str
    sequence: int
    entries: tuple[FlightEntry, ...]
    offending: FlightEntry | None = None
    profile_folded: str | None = None

    def to_jsonl(self) -> str:
        """Header line, then one JSON object per recorded entry.

        The header carries the reason and, for the offending entry, both
        the flattened span records and the human-readable span tree; when
        a sampling profiler was running, also its hottest folded stacks.
        """
        header: dict[str, object] = {
            "flight_dump": self.sequence,
            "reason": self.reason,
            "entries": len(self.entries),
        }
        if self.offending is not None:
            tree = self.offending.span_tree()
            header["offending"] = self.offending.to_dict()
            header["offending_span_tree"] = span_to_dicts(tree)
            header["offending_span_text"] = render_span_tree(tree)
        if self.profile_folded:
            header["profile_folded"] = self.profile_folded
        lines = [json.dumps(header, default=str, sort_keys=True)]
        lines.extend(
            json.dumps(entry.to_dict(include_span=True), default=str,
                       sort_keys=True)
            for entry in self.entries
        )
        return "\n".join(lines) + "\n"


class FlightRecorder:
    """Bounded ring buffer of telemetry entries with automatic dumping.

    Recording is O(1): a sequence bump and one slot write under a lock.
    Under concurrent writers the ring wraps atomically — the retained
    entries are always the most recent ``capacity`` records by sequence
    number, with no tearing and no unbounded growth.
    """

    def __init__(
        self,
        capacity: int = 256,
        max_dumps: int = 8,
        auto_dump_interval_ms: float = 1_000.0,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if max_dumps < 1:
            raise ValueError("max_dumps must be positive")
        self.capacity = capacity
        self.max_dumps = max_dumps
        self.auto_dump_interval_ms = auto_dump_interval_ms
        # When set (a zero-arg callable returning folded-stack text, e.g.
        # SamplingProfiler.folded), every dump attaches a profile snapshot.
        self.profile_provider = None
        # Wired by Observability to a *non-dumping* obs.errors bump: the
        # recorder's own failures must be counted without re-entering the
        # recorder (a failing disk would otherwise recurse through dump()).
        self.error_counter: Callable[[str, BaseException], None] | None \
            = None
        self._lock = threading.Lock()
        self._ring: list[FlightEntry | None] \
            = [None] * capacity  # guarded-by: _lock
        self._sequence = 0  # guarded-by: _lock
        self._dump_lock = threading.Lock()
        self._dumps: list[FlightDump] = []  # guarded-by: _dump_lock
        self._dump_sequence = 0  # guarded-by: _dump_lock
        self._last_auto_dump_ns: int | None \
            = None  # guarded-by: _dump_lock

    # -- recording ---------------------------------------------------------

    def record(
        self,
        kind: str,
        name: str,
        duration_ms: float | None = None,
        attributes: dict[str, object] | None = None,
        violated: bool = False,
        span: Span | None = None,
    ) -> FlightEntry:
        with self._lock:
            sequence = self._sequence
            self._sequence += 1
            entry = FlightEntry(
                kind=kind,
                name=name,
                sequence=sequence,
                duration_ms=duration_ms,
                attributes=attributes or {},
                violated=violated,
                span=span,
            )
            self._ring[sequence % self.capacity] = entry
        return entry

    @property
    def recorded_total(self) -> int:
        """Entries ever recorded (≥ len(entries()) once the ring wraps)."""
        with self._lock:
            return self._sequence

    def entries(self) -> list[FlightEntry]:
        """The retained window, oldest first."""
        with self._lock:
            kept = [entry for entry in self._ring if entry is not None]
        return sorted(kept, key=lambda entry: entry.sequence)

    def __iter__(self) -> Iterator[FlightEntry]:
        return iter(self.entries())

    def __len__(self) -> int:
        with self._lock:
            return sum(1 for entry in self._ring if entry is not None)

    # -- dumping -----------------------------------------------------------

    def dump(
        self,
        reason: str,
        offending: FlightEntry | None = None,
        force: bool = True,
    ) -> FlightDump | None:
        """Snapshot the ring into a :class:`FlightDump`.

        With ``force=False`` (the automatic-trigger path) dumps are
        throttled to one per ``auto_dump_interval_ms``; explicit calls
        always dump. Returns ``None`` when throttled.
        """
        now = _clock()
        with self._dump_lock:
            if not force and self._last_auto_dump_ns is not None:
                elapsed_ms = (now - self._last_auto_dump_ns) / 1e6
                if elapsed_ms < self.auto_dump_interval_ms:
                    return None
            if not force:
                self._last_auto_dump_ns = now
            profile_folded: str | None = None
            provider = self.profile_provider
            if provider is not None:
                try:
                    profile_folded = provider() or None
                except Exception as exc:
                    # A broken profiler must not take the dump down with
                    # it — but it must not fail invisibly either.
                    self._count_error("obs.flight.profile", exc)
                    profile_folded = None
            self._dump_sequence += 1
            dump = FlightDump(
                reason=reason,
                sequence=self._dump_sequence,
                entries=tuple(self.entries()),
                offending=offending,
                profile_folded=profile_folded,
            )
            self._dumps.append(dump)
            if len(self._dumps) > self.max_dumps:
                del self._dumps[: len(self._dumps) - self.max_dumps]
        self._write_to_disk(dump)
        return dump

    def dumps(self) -> list[FlightDump]:
        with self._dump_lock:
            return list(self._dumps)

    @property
    def dump_count(self) -> int:
        """Dumps ever taken (kept ones are bounded by ``max_dumps``)."""
        with self._dump_lock:
            return self._dump_sequence

    def _write_to_disk(self, dump: FlightDump) -> None:
        directory = read_str(FLIGHT_DIR_ENV)
        if not directory:
            return
        try:
            os.makedirs(directory, exist_ok=True)
            path = os.path.join(directory, f"flight-{dump.sequence:04d}.jsonl")
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(dump.to_jsonl())
        except OSError as exc:
            # The recorder must never take the instrumented code down with
            # it; a full disk loses the file, not the interaction — and
            # the loss shows up on the obs.errors counter.
            self._count_error("obs.flight.write", exc)

    def _count_error(self, site: str, exc: BaseException) -> None:
        counter = self.error_counter
        if counter is not None:
            counter(site, exc)

    def reset(self) -> None:
        with self._lock:
            self._ring = [None] * self.capacity
            self._sequence = 0
        with self._dump_lock:
            self._dumps.clear()
            self._dump_sequence = 0
            self._last_auto_dump_ns = None
