"""Workload intelligence over the structured query log.

``python -m repro.obs.workload <paths...>`` reads query-log JSONL files
(or directories of them, as written under :envvar:`REPRO_QUERYLOG_DIR`)
and answers the questions a single trace cannot:

* **top-k slow plan digests** — which *plans* (not query strings) dominate
  latency, with per-digest count / p50 / p95 / max;
* **per-tenant resource attribution** — queries, latency, store lookups,
  scan rows, and solutions per tenant, the accounting ROADMAP's sharding
  work sizes itself from;
* **estimate drift** — the actual/estimated cardinality ratio
  distribution per digest and per ``(predicate, mask)``, measured from
  *leading* scans only (the ones whose actual row count is directly
  comparable to the planner's unconditioned estimate);
* **plan regressions** — digests whose recent latency shifted against
  their own earlier history (same plan, slower now);
* **learned corrections** (``--corrections``) — the drift condensed into
  the ``{"<predicate>|<mask>": factor}`` mapping
  :meth:`repro.sparql.optimizer.CorrectionTable.from_factors` consumes,
  closing the loop from observed misestimates back into join order.

The analyzer is intentionally dependency-free and offline: it only parses
JSONL, so it runs over logs scraped from a live server, captured in CI, or
replayed from an archive.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
from typing import Iterable, Sequence

from .querylog import QueryRecord

__all__ = [
    "WorkloadReport",
    "analyze",
    "build_corrections",
    "drift_observations",
    "load_records",
    "main",
]

# A drift factor is only worth learning when it is (a) measured often
# enough and (b) actually wrong by a margin no estimator noise explains.
DEFAULT_MIN_OBSERVATIONS = 3
DEFAULT_SIGNIFICANCE = 1.5

# A digest is flagged as regressed when the median latency of its later
# half exceeds threshold x the median of its earlier half.
DEFAULT_REGRESSION_THRESHOLD = 1.5
MIN_REGRESSION_SAMPLES = 6


def load_records(paths: Iterable[str]) -> list[QueryRecord]:
    """Parse query-log JSONL from files and/or directories of ``*.jsonl``.

    Records are returned in workload order (timestamp, then sequence).
    Unparseable lines are skipped — a live mirror's last line may be
    mid-write.
    """
    files: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            files.extend(
                os.path.join(path, name)
                for name in sorted(os.listdir(path))
                if name.endswith(".jsonl")
            )
        else:
            files.append(path)
    records: list[QueryRecord] = []
    for file_path in files:
        try:
            with open(file_path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        records.append(QueryRecord.from_dict(json.loads(line)))
                    except (ValueError, TypeError):
                        # repro: swallow(offline analyzer skips
                        # malformed JSONL lines by design)
                        continue
        except OSError:
            # repro: swallow(offline analyzer skips unreadable mirror
            # files; a live writer may still hold them)
            continue
    records.sort(key=lambda record: (record.ts, record.sequence))
    return records


def _percentile(ordered: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile over an already-sorted sample."""
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def drift_observations(
    records: Iterable[QueryRecord],
) -> dict[str, list[float]]:
    """Actual/estimated ratios per ``<predicate>|<mask>`` key.

    Only leading scans with a positive estimate contribute: inner scans
    run conditioned on outer rows, where the estimate measures a different
    quantity, and a zero estimate has no meaningful ratio.
    """
    ratios: dict[str, list[float]] = {}
    for record in records:
        if record.cache_hit:
            continue
        for scan in record.scans:
            if not scan.leading:
                continue
            estimated = scan.estimated
            if estimated is None or estimated <= 0:
                continue
            key = f"{scan.predicate or '*'}|{scan.mask}"
            ratios.setdefault(key, []).append(scan.actual / estimated)
    return ratios


def build_corrections(
    records: Iterable[QueryRecord],
    min_observations: int = DEFAULT_MIN_OBSERVATIONS,
    significance: float = DEFAULT_SIGNIFICANCE,
) -> dict[str, float]:
    """Condense observed drift into correction factors.

    The factor for a ``(predicate, mask)`` key is the *median* observed
    actual/estimated ratio — robust against the occasional outlier run —
    kept only when backed by at least ``min_observations`` leading-scan
    observations and deviating from 1.0 by the ``significance`` margin in
    either direction. The result is the JSON mapping
    :meth:`~repro.sparql.optimizer.CorrectionTable.from_factors` loads.
    """
    factors: dict[str, float] = {}
    for key, ratios in sorted(drift_observations(records).items()):
        if len(ratios) < min_observations:
            continue
        factor = statistics.median(ratios)
        if factor >= significance or factor <= 1.0 / significance:
            factors[key] = round(factor, 4)
    return factors


class WorkloadReport:
    """The analyzer's result: attribution, slow plans, drift, regressions."""

    def __init__(
        self,
        records: list[QueryRecord],
        top: int = 10,
        min_observations: int = DEFAULT_MIN_OBSERVATIONS,
        significance: float = DEFAULT_SIGNIFICANCE,
        regression_threshold: float = DEFAULT_REGRESSION_THRESHOLD,
    ) -> None:
        self.records = records
        self.top = top
        self.min_observations = min_observations
        self.significance = significance
        self.regression_threshold = regression_threshold

    # -- aggregations ------------------------------------------------------

    def by_tenant(self) -> dict[str, dict[str, float]]:
        """Resource attribution per tenant (``-`` = unattributed)."""
        out: dict[str, dict[str, float]] = {}
        for record in self.records:
            row = out.setdefault(record.tenant or "-", {
                "queries": 0, "cache_hits": 0, "approximate": 0,
                "latency_ms": 0.0,
                "store_lookups": 0, "scan_rows": 0, "solutions": 0,
            })
            row["queries"] += 1
            row["cache_hits"] += int(record.cache_hit)
            # answers served from the sketch tier (bounded-work mergeable
            # sketches), per tenant: how often each tenant's traffic rode
            # the degraded-mode contract
            row["approximate"] += int(record.strategy == "sketched")
            row["latency_ms"] += record.latency_ms
            row["store_lookups"] += record.store_lookups
            row["scan_rows"] += record.scan_rows
            row["solutions"] += record.solutions
        for row in out.values():
            row["latency_ms"] = round(row["latency_ms"], 3)
        return dict(sorted(
            out.items(), key=lambda item: -item[1]["latency_ms"]
        ))

    def slow_digests(self, k: int | None = None) -> list[dict[str, object]]:
        """Top-k plan digests by total latency, with their distribution."""
        groups: dict[str, list[QueryRecord]] = {}
        for record in self.records:
            groups.setdefault(record.digest or "-", []).append(record)
        rows = []
        for digest, group in groups.items():
            latencies = sorted(r.latency_ms for r in group)
            # Prefer an executed record for form/strategy: a hit only knows
            # it was served "cached", not how the plan runs.
            sample = next(
                (r for r in group if not r.cache_hit), group[-1]
            )
            rows.append({
                "digest": digest,
                "count": len(group),
                "total_ms": round(sum(latencies), 3),
                "p50_ms": round(_percentile(latencies, 0.50), 3),
                "p95_ms": round(_percentile(latencies, 0.95), 3),
                "max_ms": round(latencies[-1], 3),
                "form": sample.form,
                "strategy": sample.strategy,
                "cache_hits": sum(1 for r in group if r.cache_hit),
            })
        rows.sort(key=lambda row: -float(row["total_ms"]))
        return rows[: (self.top if k is None else k)]

    def drift(self) -> dict[str, dict[str, float]]:
        """Ratio distribution (actual/est) per ``<predicate>|<mask>``."""
        out: dict[str, dict[str, float]] = {}
        for key, ratios in sorted(drift_observations(self.records).items()):
            ordered = sorted(ratios)
            out[key] = {
                "observations": len(ordered),
                "median": round(statistics.median(ordered), 4),
                "p95": round(_percentile(ordered, 0.95), 4),
                "min": round(ordered[0], 4),
                "max": round(ordered[-1], 4),
            }
        return out

    def digest_drift(self) -> dict[str, dict[str, float]]:
        """Per-digest leading-scan ratio summary (which *plans* run on
        wrong estimates, complementing the per-predicate view)."""
        ratios: dict[str, list[float]] = {}
        for record in self.records:
            if record.cache_hit or record.digest is None:
                continue
            for scan in record.scans:
                if scan.leading and scan.estimated:
                    ratios.setdefault(record.digest, []).append(
                        scan.actual / scan.estimated
                    )
        return {
            digest: {
                "observations": len(values),
                "median": round(statistics.median(values), 4),
                "max": round(max(values), 4),
            }
            for digest, values in sorted(ratios.items())
        }

    def corrections(self) -> dict[str, float]:
        return build_corrections(
            self.records, self.min_observations, self.significance
        )

    def regressions(self) -> list[dict[str, object]]:
        """Digests whose recent latency shifted vs their own history.

        For each digest with enough samples the (chronological) series is
        split at its midpoint; a late-half median above ``threshold`` x the
        early-half median flags the digest. Cache hits are excluded — a
        cold cache would otherwise read as a regression.
        """
        series: dict[str, list[float]] = {}
        for record in self.records:  # records are in workload order
            if record.cache_hit or record.digest is None:
                continue
            series.setdefault(record.digest, []).append(record.latency_ms)
        flagged = []
        for digest, latencies in sorted(series.items()):
            if len(latencies) < MIN_REGRESSION_SAMPLES:
                continue
            half = len(latencies) // 2
            early = statistics.median(latencies[:half])
            late = statistics.median(latencies[half:])
            if early > 0 and late / early >= self.regression_threshold:
                flagged.append({
                    "digest": digest,
                    "samples": len(latencies),
                    "early_p50_ms": round(early, 3),
                    "late_p50_ms": round(late, 3),
                    "ratio": round(late / early, 3),
                })
        flagged.sort(key=lambda row: -float(row["ratio"]))
        return flagged

    # -- output ------------------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        return {
            "records": len(self.records),
            "trace_ids": sorted({
                record.trace_id for record in self.records
                if record.trace_id
            }),
            "by_tenant": self.by_tenant(),
            "slow_digests": self.slow_digests(),
            "drift": self.drift(),
            "digest_drift": self.digest_drift(),
            "corrections": self.corrections(),
            "regressions": self.regressions(),
        }

    def render(self) -> str:
        lines = [f"workload: {len(self.records)} records"]
        lines.append("\nper-tenant attribution")
        lines.append(
            f"  {'tenant':<16} {'queries':>8} {'hits':>6} {'approx':>7} "
            f"{'latency_ms':>12} {'lookups':>9} {'scan_rows':>10}"
        )
        for tenant, row in self.by_tenant().items():
            lines.append(
                f"  {tenant:<16} {row['queries']:>8} {row['cache_hits']:>6} "
                f"{row['approximate']:>7} "
                f"{row['latency_ms']:>12.2f} {row['store_lookups']:>9} "
                f"{row['scan_rows']:>10}"
            )
        lines.append("\nslowest plan digests (by total latency)")
        lines.append(
            f"  {'digest':<14} {'count':>6} {'p50_ms':>9} {'p95_ms':>9} "
            f"{'total_ms':>10}  strategy"
        )
        for row in self.slow_digests():
            digest = str(row["digest"])[:12]
            lines.append(
                f"  {digest:<14} {row['count']:>6} {row['p50_ms']:>9.2f} "
                f"{row['p95_ms']:>9.2f} {row['total_ms']:>10.2f}  "
                f"{row['strategy']}"
            )
        drift = self.drift()
        if drift:
            lines.append("\nestimate drift (actual/est, leading scans)")
            for key, row in drift.items():
                marker = (
                    "  <-- misestimated"
                    if row["median"] >= self.significance
                    or row["median"] <= 1.0 / self.significance
                    else ""
                )
                lines.append(
                    f"  {key}: median={row['median']} p95={row['p95']} "
                    f"n={row['observations']}{marker}"
                )
        corrections = self.corrections()
        if corrections:
            lines.append("\nlearned corrections (feed CorrectionTable"
                         ".from_factors)")
            for key, factor in corrections.items():
                lines.append(f"  {key}: x{factor}")
        regressions = self.regressions()
        if regressions:
            lines.append("\nplan regressions (same digest, slower now)")
            for row in regressions:
                lines.append(
                    f"  {str(row['digest'])[:12]}: "
                    f"{row['early_p50_ms']}ms -> {row['late_p50_ms']}ms "
                    f"({row['ratio']}x over {row['samples']} runs)"
                )
        return "\n".join(lines)


def analyze(
    records: list[QueryRecord],
    top: int = 10,
    min_observations: int = DEFAULT_MIN_OBSERVATIONS,
    significance: float = DEFAULT_SIGNIFICANCE,
    regression_threshold: float = DEFAULT_REGRESSION_THRESHOLD,
) -> WorkloadReport:
    return WorkloadReport(
        records,
        top=top,
        min_observations=min_observations,
        significance=significance,
        regression_threshold=regression_threshold,
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.workload",
        description="Analyze query-log JSONL: slow plans, tenant "
                    "attribution, estimate drift, regressions.",
    )
    parser.add_argument(
        "paths", nargs="+",
        help="query-log JSONL files or directories (REPRO_QUERYLOG_DIR)",
    )
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the full report as JSON")
    parser.add_argument("--corrections", action="store_true",
                        help="emit only the learned correction factors "
                             "(JSON, CorrectionTable.from_factors shape)")
    parser.add_argument("--top", type=int, default=10,
                        help="slow-digest rows to keep (default 10)")
    parser.add_argument("--tenant", default=None,
                        help="restrict the report to one tenant")
    parser.add_argument("--since", type=float, default=None,
                        help="drop records before this UNIX timestamp")
    parser.add_argument("--min-obs", type=int,
                        default=DEFAULT_MIN_OBSERVATIONS,
                        help="leading-scan observations required before a "
                             "correction is learned (default 3)")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_REGRESSION_THRESHOLD,
                        help="late/early latency ratio flagged as a "
                             "regression (default 1.5)")
    options = parser.parse_args(argv)

    records = load_records(options.paths)
    if options.tenant is not None:
        records = [r for r in records if r.tenant == options.tenant]
    if options.since is not None:
        records = [r for r in records if r.ts >= options.since]

    report = analyze(
        records,
        top=options.top,
        min_observations=options.min_obs,
        regression_threshold=options.threshold,
    )
    if options.corrections:
        print(json.dumps(report.corrections(), indent=2, sort_keys=True))
    elif options.as_json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 0 if records else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
