"""SELECT result representation.

A :class:`SelectResult` is an ordered table of solution rows — the object
every downstream layer consumes: the facet browser counts over it, the
recommendation engine profiles its columns, the LDVM pipeline binds it to
visual channels.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..rdf.terms import Literal, Term, Variable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .physical import EvalStats, ExplainNode

__all__ = ["SelectResult"]


class SelectResult:
    """An immutable table of SPARQL solutions.

    ``stats`` holds the per-query execution counters and ``plan`` the
    EXPLAIN ANALYZE tree of the run that produced this result (both
    ``None`` for results built by hand).
    """

    def __init__(
        self,
        variables: list[Variable],
        rows: list[dict[Variable, Term]],
        stats: "EvalStats | None" = None,
        plan: "ExplainNode | None" = None,
    ) -> None:
        self.variables: list[Variable] = list(variables)
        self.rows: list[dict[Variable, Term]] = rows
        self.stats = stats
        self.plan = plan

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[dict[Variable, Term]]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __getitem__(self, index: int) -> dict[Variable, Term]:
        return self.rows[index]

    def column(self, variable: str | Variable) -> list[Term | None]:
        """All values of one variable, ``None`` where unbound."""
        key = Variable(variable) if not isinstance(variable, Variable) else variable
        return [row.get(key) for row in self.rows]

    def values(self, variable: str | Variable) -> list[object]:
        """Native Python values of one variable (skips unbound rows)."""
        out: list[object] = []
        for term in self.column(variable):
            if term is None:
                continue
            out.append(term.value if isinstance(term, Literal) else term)
        return out

    def to_dicts(self) -> list[dict[str, object]]:
        """Rows as plain dicts with string keys and native values."""
        result = []
        for row in self.rows:
            entry: dict[str, object] = {}
            for variable in self.variables:
                term = row.get(variable)
                if term is None:
                    entry[str(variable)] = None
                elif isinstance(term, Literal):
                    entry[str(variable)] = term.value
                else:
                    entry[str(variable)] = str(term)
            result.append(entry)
        return result

    def to_table(self, max_rows: int | None = 20) -> str:
        """ASCII table rendering (the classic endpoint result view)."""
        headers = [f"?{v}" for v in self.variables]
        body_rows = self.rows if max_rows is None else self.rows[:max_rows]
        cells = [
            [_render(row.get(v)) for v in self.variables]
            for row in body_rows
        ]
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
            for i in range(len(headers))
        ]
        sep = "-+-".join("-" * w for w in widths)
        lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
        for row in cells:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        if max_rows is not None and len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SelectResult {len(self.rows)} rows x {len(self.variables)} vars>"


def _render(term: Term | None) -> str:
    if term is None:
        return ""
    if isinstance(term, Literal):
        return term.lexical
    return str(term)
