"""SELECT result representation and wire serializations.

A :class:`SelectResult` is an ordered table of solution rows — the object
every downstream layer consumes: the facet browser counts over it, the
recommendation engine profiles its columns, the LDVM pipeline binds it to
visual channels.

The module also implements the W3C interchange formats a SPARQL endpoint
negotiates (and a client parses back):

* SPARQL 1.1 Query Results JSON (``application/sparql-results+json``) —
  :func:`to_sparql_json` / :func:`parse_sparql_json`, with term-level
  :func:`term_to_json` / :func:`term_from_json`;
* SPARQL 1.1 Query Results CSV and TSV (``text/csv``,
  ``text/tab-separated-values``) — :func:`to_csv` / :func:`to_tsv`.

Each format has a streaming variant (``iter_*``) yielding string chunks so
the serving layer (:mod:`repro.server`) can deliver arbitrarily large
results with flat first-row latency over chunked transfer encoding.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterable, Iterator

from ..rdf.terms import BNode, IRI, Literal, Term, Variable, XSD_STRING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .physical import EvalStats, ExplainNode

__all__ = [
    "SelectResult",
    "term_to_json",
    "term_from_json",
    "binding_to_json",
    "to_sparql_json",
    "ask_to_sparql_json",
    "parse_sparql_json",
    "to_csv",
    "to_tsv",
    "iter_sparql_json",
    "iter_csv",
    "iter_tsv",
]


class SelectResult:
    """An immutable table of SPARQL solutions.

    ``stats`` holds the per-query execution counters and ``plan`` the
    EXPLAIN ANALYZE tree of the run that produced this result (both
    ``None`` for results built by hand). ``plan_digest`` is the stable
    digest of the optimized logical plan — the result-cache key the
    engine computed anyway, carried here so the serving layer and the
    query log never re-derive it from query text.
    """

    def __init__(
        self,
        variables: list[Variable],
        rows: list[dict[Variable, Term]],
        stats: "EvalStats | None" = None,
        plan: "ExplainNode | None" = None,
        plan_digest: str | None = None,
    ) -> None:
        self.variables: list[Variable] = list(variables)
        self.rows: list[dict[Variable, Term]] = rows
        self.stats = stats
        self.plan = plan
        self.plan_digest = plan_digest

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[dict[Variable, Term]]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __getitem__(self, index: int) -> dict[Variable, Term]:
        return self.rows[index]

    def column(self, variable: str | Variable) -> list[Term | None]:
        """All values of one variable, ``None`` where unbound."""
        key = Variable(variable) if not isinstance(variable, Variable) else variable
        return [row.get(key) for row in self.rows]

    def values(self, variable: str | Variable) -> list[object]:
        """Native Python values of one variable (skips unbound rows)."""
        out: list[object] = []
        for term in self.column(variable):
            if term is None:
                continue
            out.append(term.value if isinstance(term, Literal) else term)
        return out

    def to_dicts(self) -> list[dict[str, object]]:
        """Rows as plain dicts with string keys and native values."""
        result = []
        for row in self.rows:
            entry: dict[str, object] = {}
            for variable in self.variables:
                term = row.get(variable)
                if term is None:
                    entry[str(variable)] = None
                elif isinstance(term, Literal):
                    entry[str(variable)] = term.value
                else:
                    entry[str(variable)] = str(term)
            result.append(entry)
        return result

    def to_table(self, max_rows: int | None = 20) -> str:
        """ASCII table rendering (the classic endpoint result view)."""
        headers = [f"?{v}" for v in self.variables]
        body_rows = self.rows if max_rows is None else self.rows[:max_rows]
        cells = [
            [_render(row.get(v)) for v in self.variables]
            for row in body_rows
        ]
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
            for i in range(len(headers))
        ]
        sep = "-+-".join("-" * w for w in widths)
        lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
        for row in cells:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        if max_rows is not None and len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SelectResult {len(self.rows)} rows x {len(self.variables)} vars>"


def _render(term: Term | None) -> str:
    if term is None:
        return ""
    if isinstance(term, Literal):
        return term.lexical
    return str(term)


# --------------------------------------------------------------------------- #
# W3C SPARQL 1.1 Query Results JSON
# --------------------------------------------------------------------------- #


def term_to_json(term: Term) -> dict[str, str]:
    """One RDF term in the W3C results-JSON encoding.

    Plain ``xsd:string`` literals omit the datatype member, matching what
    every deployed endpoint emits.
    """
    if isinstance(term, IRI):
        return {"type": "uri", "value": str(term)}
    if isinstance(term, BNode):
        return {"type": "bnode", "value": str(term)}
    if isinstance(term, Literal):
        record: dict[str, str] = {"type": "literal", "value": term.lexical}
        if term.lang is not None:
            record["xml:lang"] = term.lang
        elif term.datatype and term.datatype != XSD_STRING:
            record["datatype"] = term.datatype
        return record
    raise TypeError(f"not an RDF term: {term!r}")


def term_from_json(record: dict[str, str]) -> Term:
    """Inverse of :func:`term_to_json` (accepts ``typed-literal`` legacy)."""
    kind = record.get("type")
    value = record.get("value", "")
    if kind == "uri":
        return IRI(value)
    if kind == "bnode":
        return BNode(value)
    if kind in ("literal", "typed-literal"):
        lang = record.get("xml:lang")
        if lang is not None:
            return Literal(value, lang=lang)
        return Literal(value, datatype=record.get("datatype"))
    raise ValueError(f"unknown term type in results JSON: {kind!r}")


def binding_to_json(
    variables: Iterable[Variable], row: dict[Variable, Term]
) -> dict[str, dict[str, str]]:
    """One solution row as a results-JSON binding object (unbound omitted)."""
    record: dict[str, dict[str, str]] = {}
    for variable in variables:
        term = row.get(variable)
        if term is not None:
            record[str(variable)] = term_to_json(term)
    return record


def iter_sparql_json(
    variables: list[Variable],
    rows: Iterable[dict[Variable, Term]],
    extra: dict[str, object] | None = None,
) -> Iterator[str]:
    """Stream a results-JSON document chunk by chunk.

    ``extra`` lands as an ``x-repro`` top-level member (the endpoint uses it
    for approximation metadata); the W3C grammar permits extension members.
    """
    head = {"vars": [str(v) for v in variables]}
    prefix = '{"head": ' + json.dumps(head)
    if extra:
        prefix += ', "x-repro": ' + json.dumps(extra, sort_keys=True)
    yield prefix + ', "results": {"bindings": ['
    first = True
    for row in rows:
        chunk = json.dumps(binding_to_json(variables, row))
        yield chunk if first else ", " + chunk
        first = False
    yield "]}}"


def to_sparql_json(
    result: SelectResult, extra: dict[str, object] | None = None
) -> str:
    """The whole :class:`SelectResult` as a results-JSON document."""
    return "".join(iter_sparql_json(result.variables, result.rows, extra))


def ask_to_sparql_json(value: bool) -> str:
    """An ASK answer as a results-JSON boolean document."""
    return json.dumps({"head": {}, "boolean": bool(value)})


def parse_sparql_json(text: str) -> SelectResult | bool:
    """Parse a results-JSON document: SELECT → :class:`SelectResult`,
    ASK → bool. The remote-endpoint client's read path."""
    document = json.loads(text)
    if "boolean" in document:
        return bool(document["boolean"])
    variables = [Variable(name) for name in document.get("head", {}).get("vars", [])]
    rows: list[dict[Variable, Term]] = []
    for binding in document.get("results", {}).get("bindings", []):
        rows.append(
            {Variable(name): term_from_json(record)
             for name, record in binding.items()}
        )
    return SelectResult(variables, rows)


# --------------------------------------------------------------------------- #
# W3C SPARQL 1.1 Query Results CSV and TSV
# --------------------------------------------------------------------------- #


def _csv_field(term: Term | None) -> str:
    """CSV value per the W3C mapping: lexical forms only, RFC 4180 quoting."""
    if term is None:
        return ""
    if isinstance(term, Literal):
        text = term.lexical
    elif isinstance(term, BNode):
        text = f"_:{term}"
    else:
        text = str(term)
    if any(ch in text for ch in (",", '"', "\n", "\r")):
        return '"' + text.replace('"', '""') + '"'
    return text


def iter_csv(
    variables: list[Variable], rows: Iterable[dict[Variable, Term]]
) -> Iterator[str]:
    """Stream the W3C CSV serialization (CRLF line endings, plain values)."""
    yield ",".join(str(v) for v in variables) + "\r\n"
    for row in rows:
        yield ",".join(_csv_field(row.get(v)) for v in variables) + "\r\n"


def to_csv(result: SelectResult) -> str:
    return "".join(iter_csv(result.variables, result.rows))


def iter_tsv(
    variables: list[Variable], rows: Iterable[dict[Variable, Term]]
) -> Iterator[str]:
    """Stream the W3C TSV serialization (terms in Turtle/N-Triples syntax)."""
    yield "\t".join(f"?{v}" for v in variables) + "\n"
    for row in rows:
        fields = []
        for variable in variables:
            term = row.get(variable)
            fields.append("" if term is None else term.n3())
        yield "\t".join(fields) + "\n"


def to_tsv(result: SelectResult) -> str:
    return "".join(iter_tsv(result.variables, result.rows))
