"""Tokenizer for the SPARQL subset."""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["Token", "tokenize", "SparqlSyntaxError"]


class SparqlSyntaxError(ValueError):
    """Raised on malformed SPARQL text, with line context."""


KEYWORDS = {
    "SELECT", "ASK", "CONSTRUCT", "DESCRIBE", "WHERE", "FILTER", "OPTIONAL",
    "UNION", "PREFIX", "BASE", "DISTINCT", "REDUCED", "ORDER", "BY", "ASC",
    "DESC", "LIMIT", "OFFSET", "GROUP", "HAVING", "AS", "BIND", "IN", "NOT",
    "A", "TRUE", "FALSE", "VALUES", "UNDEF", "SEPARATOR",
}

FUNCTIONS = {
    "REGEX", "STR", "LANG", "LANGMATCHES", "DATATYPE", "BOUND", "IRI", "URI",
    "ISIRI", "ISURI", "ISBLANK", "ISLITERAL", "ISNUMERIC", "STRSTARTS",
    "STRENDS", "CONTAINS", "STRLEN", "UCASE", "LCASE", "ABS", "CEIL", "FLOOR",
    "ROUND", "YEAR", "MONTH", "DAY", "COALESCE", "IF", "CONCAT", "SUBSTR",
    "REPLACE",
}

AGGREGATES = {"COUNT", "SUM", "AVG", "MIN", "MAX", "SAMPLE", "GROUP_CONCAT"}

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+|\#[^\n]*)
  | (?P<IRIREF><[^<>"{}|^`\\\s]*>)
  | (?P<VAR>[?$][A-Za-z_][A-Za-z0-9_]*)
  | (?P<STRING>"(?:[^"\\\n]|\\.)*"|'(?:[^'\\\n]|\\.)*')
  | (?P<DOUBLE>[+-]?(?:\d+\.\d*|\.\d+|\d+)[eE][+-]?\d+)
  | (?P<DECIMAL>[+-]?\d*\.\d+)
  | (?P<INTEGER>[+-]?\d+)
  | (?P<BNODE>_:[A-Za-z0-9][A-Za-z0-9_.-]*)
  | (?P<QNAME_OR_KEYWORD>[A-Za-z_][A-Za-z0-9_-]*(?::[A-Za-z0-9_][\w.-]*|:)?)
  | (?P<COLON_LOCAL>:[A-Za-z0-9_][\w.-]*)
  | (?P<DTYPE>\^\^)
  | (?P<LANGTAG>@[A-Za-z]+(?:-[A-Za-z0-9]+)*)
  | (?P<OP>&&|\|\||!=|<=|>=|[=<>!+\-*/])
  | (?P<PUNCT>[{}().,;]|\[|\])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r})"


def tokenize(text: str) -> list[Token]:
    """Tokenize SPARQL text; raises :class:`SparqlSyntaxError` on garbage.

    Keyword recognition is case-insensitive; prefixed names keep their case.
    Bare identifiers that are keywords/functions/aggregates are tagged
    ``KEYWORD``; identifiers containing ``:`` are ``QNAME``.
    """
    tokens: list[Token] = []
    pos = 0
    line = 1
    n = len(text)
    while pos < n:
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            raise SparqlSyntaxError(f"line {line}: unexpected character {text[pos]!r}")
        kind = match.lastgroup or ""
        value = match.group(0)
        if kind == "WS":
            line += value.count("\n")
            pos = match.end()
            continue
        if kind == "QNAME_OR_KEYWORD":
            upper = value.upper()
            if ":" in value:
                kind = "QNAME"
            elif upper in KEYWORDS or upper in FUNCTIONS or upper in AGGREGATES:
                kind = "KEYWORD"
                value = upper
            else:
                raise SparqlSyntaxError(
                    f"line {line}: unknown identifier {value!r} "
                    "(bare names must be keywords or prefixed names)"
                )
        elif kind == "COLON_LOCAL":
            kind = "QNAME"
        # '<' is ambiguous: IRIREF already matched '<...>'; a lone '<' is OP.
        tokens.append(Token(kind, value, line))
        line += value.count("\n")
        pos = match.end()
    tokens.append(Token("EOF", "", line))
    return tokens
