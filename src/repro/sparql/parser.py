"""Recursive-descent parser for the SPARQL subset.

Grammar notes (deviations from full SPARQL 1.1 are deliberate and raise
clear errors rather than misparse):

* property paths, named graphs, subqueries, VALUES, and federation are out
  of scope;
* comparison operators must be whitespace-separated from ``<``-starting
  IRIs (as in hand-written SPARQL).
"""

from __future__ import annotations

from ..rdf.terms import IRI, Literal, Variable
from ..rdf.vocab import DEFAULT_PREFIXES, RDF, XSD
from .lexer import AGGREGATES, FUNCTIONS, SparqlSyntaxError, Token, tokenize
from .nodes import (
    AggregateExpr,
    AskQuery,
    BinaryExpr,
    BindPattern,
    ConstructQuery,
    DescribeQuery,
    Expression,
    FilterPattern,
    FunctionCall,
    GroupGraphPattern,
    OptionalPattern,
    OrderCondition,
    Projection,
    Query,
    SelectQuery,
    TermExpr,
    TriplePatternNode,
    UnaryExpr,
    UnionPattern,
    VariableExpr,
)

__all__ = ["parse_query", "SparqlSyntaxError"]


def parse_query(text: str) -> Query:
    """Parse SPARQL text into a query AST."""
    return _Parser(tokenize(text), text).parse()


class _Parser:
    def __init__(self, tokens: list[Token], text: str) -> None:
        self._tokens = tokens
        self._i = 0
        self._text = text
        self._prefixes: dict[str, str] = dict(DEFAULT_PREFIXES)
        self._base = ""

    # -- token plumbing ---------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        return self._tokens[min(self._i + ahead, len(self._tokens) - 1)]

    def _next(self) -> Token:
        token = self._tokens[self._i]
        if token.kind != "EOF":
            self._i += 1
        return token

    def _accept(self, kind: str, value: str | None = None) -> Token | None:
        token = self._peek()
        if token.kind == kind and (value is None or token.value == value):
            return self._next()
        return None

    def _expect(self, kind: str, value: str | None = None) -> Token:
        token = self._next()
        if token.kind != kind or (value is not None and token.value != value):
            raise SparqlSyntaxError(
                f"line {token.line}: expected {value or kind}, got {token.value or 'EOF'!r}"
            )
        return token

    def _error(self, message: str) -> SparqlSyntaxError:
        token = self._peek()
        return SparqlSyntaxError(f"line {token.line}: {message} (at {token.value or 'EOF'!r})")

    # -- entry point --------------------------------------------------------

    def parse(self) -> Query:
        self._prologue()
        token = self._peek()
        if token.kind != "KEYWORD":
            raise self._error("expected SELECT, ASK, CONSTRUCT, or DESCRIBE")
        if token.value == "SELECT":
            query = self._select()
        elif token.value == "ASK":
            query = self._ask()
        elif token.value == "CONSTRUCT":
            query = self._construct()
        elif token.value == "DESCRIBE":
            query = self._describe()
        else:
            raise self._error("expected SELECT, ASK, CONSTRUCT, or DESCRIBE")
        if self._peek().kind != "EOF":
            raise self._error("unexpected trailing input")
        return query

    def _prologue(self) -> None:
        while True:
            if self._accept("KEYWORD", "PREFIX"):
                name = self._expect("QNAME")
                prefix = name.value.split(":", 1)[0]
                iri = self._expect("IRIREF")
                self._prefixes[prefix] = iri.value[1:-1]
            elif self._accept("KEYWORD", "BASE"):
                iri = self._expect("IRIREF")
                self._base = iri.value[1:-1]
            else:
                return

    # -- query forms ---------------------------------------------------------

    def _select(self) -> SelectQuery:
        self._expect("KEYWORD", "SELECT")
        distinct = bool(self._accept("KEYWORD", "DISTINCT")) or bool(
            self._accept("KEYWORD", "REDUCED")
        )
        projections: list[Projection] = []
        if not self._accept("OP", "*"):
            while True:
                token = self._peek()
                if token.kind == "VAR":
                    self._next()
                    projections.append(Projection(Variable(token.value[1:])))
                elif token.kind == "PUNCT" and token.value == "(":
                    self._next()
                    expression = self._expression()
                    self._expect("KEYWORD", "AS")
                    var = self._expect("VAR")
                    self._expect("PUNCT", ")")
                    projections.append(Projection(Variable(var.value[1:]), expression))
                else:
                    break
            if not projections:
                raise self._error("SELECT needs * or at least one variable")
        self._accept("KEYWORD", "WHERE")
        where = self._group_graph_pattern()
        group_by: tuple[Expression, ...] = ()
        having: Expression | None = None
        if self._accept("KEYWORD", "GROUP"):
            self._expect("KEYWORD", "BY")
            keys: list[Expression] = []
            while True:
                token = self._peek()
                if token.kind == "VAR":
                    self._next()
                    keys.append(VariableExpr(Variable(token.value[1:])))
                elif token.kind == "PUNCT" and token.value == "(":
                    self._next()
                    keys.append(self._expression())
                    self._expect("PUNCT", ")")
                else:
                    break
            if not keys:
                raise self._error("GROUP BY needs at least one key")
            group_by = tuple(keys)
        if self._accept("KEYWORD", "HAVING"):
            self._expect("PUNCT", "(")
            having = self._expression()
            self._expect("PUNCT", ")")
        order_by = self._order_clause()
        limit, offset = self._limit_offset()
        return SelectQuery(
            projections=tuple(projections),
            where=where,
            distinct=distinct,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            prefixes=dict(self._prefixes),
        )

    def _ask(self) -> AskQuery:
        self._expect("KEYWORD", "ASK")
        self._accept("KEYWORD", "WHERE")
        return AskQuery(where=self._group_graph_pattern(), prefixes=dict(self._prefixes))

    def _construct(self) -> ConstructQuery:
        self._expect("KEYWORD", "CONSTRUCT")
        self._expect("PUNCT", "{")
        template: list[TriplePatternNode] = []
        while not (self._peek().kind == "PUNCT" and self._peek().value == "}"):
            template.extend(self._triples_same_subject())
            if not self._accept("PUNCT", "."):
                break
        self._expect("PUNCT", "}")
        self._expect("KEYWORD", "WHERE")
        where = self._group_graph_pattern()
        limit, offset = self._limit_offset()
        return ConstructQuery(
            template=tuple(template),
            where=where,
            limit=limit,
            offset=offset,
            prefixes=dict(self._prefixes),
        )

    def _describe(self) -> DescribeQuery:
        self._expect("KEYWORD", "DESCRIBE")
        resources: list[IRI | Variable] = []
        while True:
            token = self._peek()
            if token.kind == "VAR":
                self._next()
                resources.append(Variable(token.value[1:]))
            elif token.kind in ("IRIREF", "QNAME"):
                resources.append(self._iri())
            else:
                break
        if not resources:
            raise self._error("DESCRIBE needs at least one resource or variable")
        where = None
        if self._peek().kind == "KEYWORD" and self._peek().value == "WHERE":
            self._next()
            where = self._group_graph_pattern()
        elif self._peek().kind == "PUNCT" and self._peek().value == "{":
            where = self._group_graph_pattern()
        return DescribeQuery(
            resources=tuple(resources), where=where, prefixes=dict(self._prefixes)
        )

    def _order_clause(self) -> tuple[OrderCondition, ...]:
        if not self._accept("KEYWORD", "ORDER"):
            return ()
        self._expect("KEYWORD", "BY")
        conditions: list[OrderCondition] = []
        while True:
            token = self._peek()
            if token.kind == "KEYWORD" and token.value in ("ASC", "DESC"):
                self._next()
                descending = token.value == "DESC"
                self._expect("PUNCT", "(")
                expression = self._expression()
                self._expect("PUNCT", ")")
                conditions.append(OrderCondition(expression, descending))
            elif token.kind == "VAR":
                self._next()
                conditions.append(OrderCondition(VariableExpr(Variable(token.value[1:]))))
            elif token.kind == "PUNCT" and token.value == "(":
                self._next()
                expression = self._expression()
                self._expect("PUNCT", ")")
                conditions.append(OrderCondition(expression))
            else:
                break
        if not conditions:
            raise self._error("ORDER BY needs at least one condition")
        return tuple(conditions)

    def _limit_offset(self) -> tuple[int | None, int]:
        limit: int | None = None
        offset = 0
        for _ in range(2):  # LIMIT/OFFSET may appear in either order
            if self._accept("KEYWORD", "LIMIT"):
                limit = int(self._expect("INTEGER").value)
            elif self._accept("KEYWORD", "OFFSET"):
                offset = int(self._expect("INTEGER").value)
        return limit, offset

    # -- graph patterns --------------------------------------------------------

    def _group_graph_pattern(self) -> GroupGraphPattern:
        self._expect("PUNCT", "{")
        elements: list = []
        while True:
            token = self._peek()
            if token.kind == "PUNCT" and token.value == "}":
                break
            if token.kind == "KEYWORD" and token.value == "FILTER":
                self._next()
                self._expect("PUNCT", "(")
                elements.append(FilterPattern(self._expression()))
                self._expect("PUNCT", ")")
                self._accept("PUNCT", ".")
                continue
            if token.kind == "KEYWORD" and token.value == "OPTIONAL":
                self._next()
                elements.append(OptionalPattern(self._group_graph_pattern()))
                self._accept("PUNCT", ".")
                continue
            if token.kind == "KEYWORD" and token.value == "VALUES":
                self._next()
                elements.append(self._values_pattern())
                self._accept("PUNCT", ".")
                continue
            if token.kind == "KEYWORD" and token.value == "BIND":
                self._next()
                self._expect("PUNCT", "(")
                expression = self._expression()
                self._expect("KEYWORD", "AS")
                var = self._expect("VAR")
                self._expect("PUNCT", ")")
                elements.append(BindPattern(expression, Variable(var.value[1:])))
                self._accept("PUNCT", ".")
                continue
            if token.kind == "PUNCT" and token.value == "{":
                group = self._group_graph_pattern()
                alternatives = [group]
                while self._peek().kind == "KEYWORD" and self._peek().value == "UNION":
                    self._next()
                    alternatives.append(self._group_graph_pattern())
                if len(alternatives) > 1:
                    elements.append(UnionPattern(tuple(alternatives)))
                else:
                    elements.append(group)
                self._accept("PUNCT", ".")
                continue
            elements.extend(self._triples_same_subject())
            # The '.' separator is optional before FILTER/OPTIONAL/BIND/'}'.
            self._accept("PUNCT", ".")
        self._expect("PUNCT", "}")
        return GroupGraphPattern(tuple(elements))

    def _values_pattern(self) -> "ValuesPattern":
        """``VALUES ?x { v ... }`` or ``VALUES (?x ?y) { (a b) ... }``."""
        from .nodes import ValuesPattern

        variables: list[Variable] = []
        if self._accept("PUNCT", "("):
            while self._peek().kind == "VAR":
                variables.append(Variable(self._next().value[1:]))
            self._expect("PUNCT", ")")
            parenthesized = True
        else:
            var = self._expect("VAR")
            variables.append(Variable(var.value[1:]))
            parenthesized = False
        if not variables:
            raise self._error("VALUES needs at least one variable")
        self._expect("PUNCT", "{")
        rows: list[tuple] = []
        while not (self._peek().kind == "PUNCT" and self._peek().value == "}"):
            if parenthesized:
                self._expect("PUNCT", "(")
                row = [self._values_term() for _ in variables]
                self._expect("PUNCT", ")")
            else:
                row = [self._values_term()]
            rows.append(tuple(row))
        self._expect("PUNCT", "}")
        return ValuesPattern(tuple(variables), tuple(rows))

    def _values_term(self):
        token = self._peek()
        if token.kind == "KEYWORD" and token.value == "UNDEF":
            self._next()
            return None
        if token.kind in ("IRIREF", "QNAME"):
            return self._iri()
        return self._literal()

    def _triples_same_subject(self) -> list[TriplePatternNode]:
        subject = self._term(position="subject")
        triples: list[TriplePatternNode] = []
        while True:
            predicate = self._term(position="predicate")
            while True:
                obj = self._term(position="object")
                triples.append(TriplePatternNode(subject, predicate, obj))
                if not self._accept("PUNCT", ","):
                    break
            if self._accept("PUNCT", ";"):
                nxt = self._peek()
                if nxt.kind == "PUNCT" and nxt.value in (".", "}"):
                    break
                continue
            break
        return triples

    def _term(self, position: str):
        token = self._peek()
        if token.kind == "VAR":
            self._next()
            return Variable(token.value[1:])
        if token.kind == "KEYWORD" and token.value == "A" and position == "predicate":
            self._next()
            return RDF.type
        if token.kind in ("IRIREF", "QNAME"):
            return self._iri()
        if position == "predicate":
            raise self._error("expected predicate (IRI, prefixed name, 'a', or variable)")
        if token.kind == "BNODE":
            self._next()
            from ..rdf.terms import BNode

            return BNode(token.value[2:])
        if token.kind in ("STRING", "INTEGER", "DECIMAL", "DOUBLE") or (
            token.kind == "KEYWORD" and token.value in ("TRUE", "FALSE")
        ):
            return self._literal()
        raise self._error(f"expected {position} term")

    def _iri(self) -> IRI:
        token = self._next()
        if token.kind == "IRIREF":
            iri = token.value[1:-1]
            if self._base and not _is_absolute(iri):
                iri = self._base + iri
            return IRI(iri)
        if token.kind == "QNAME":
            prefix, _, local = token.value.partition(":")
            try:
                return IRI(self._prefixes[prefix] + local)
            except KeyError:
                raise SparqlSyntaxError(
                    f"line {token.line}: unbound prefix {prefix!r}"
                ) from None
        raise SparqlSyntaxError(f"line {token.line}: expected IRI, got {token.value!r}")

    def _literal(self) -> Literal:
        token = self._next()
        if token.kind == "STRING":
            lexical = _unescape_string(token.value[1:-1])
            nxt = self._peek()
            if nxt.kind == "LANGTAG":
                self._next()
                return Literal(lexical, lang=nxt.value[1:])
            if nxt.kind == "DTYPE":
                self._next()
                return Literal(lexical, datatype=str(self._iri()))
            return Literal(lexical)
        if token.kind == "INTEGER":
            return Literal(token.value, datatype=str(XSD.integer))
        if token.kind == "DECIMAL":
            return Literal(token.value, datatype=str(XSD.decimal))
        if token.kind == "DOUBLE":
            return Literal(token.value, datatype=str(XSD.double))
        if token.kind == "KEYWORD" and token.value in ("TRUE", "FALSE"):
            return Literal(token.value.lower(), datatype=str(XSD.boolean))
        raise SparqlSyntaxError(f"line {token.line}: expected literal, got {token.value!r}")

    # -- expressions -------------------------------------------------------------

    def _expression(self) -> Expression:
        return self._or_expression()

    def _or_expression(self) -> Expression:
        left = self._and_expression()
        while self._accept("OP", "||"):
            left = BinaryExpr("||", left, self._and_expression())
        return left

    def _and_expression(self) -> Expression:
        left = self._relational_expression()
        while self._accept("OP", "&&"):
            left = BinaryExpr("&&", left, self._relational_expression())
        return left

    def _relational_expression(self) -> Expression:
        left = self._additive_expression()
        token = self._peek()
        if token.kind == "OP" and token.value in ("=", "!=", "<", "<=", ">", ">="):
            self._next()
            return BinaryExpr(token.value, left, self._additive_expression())
        if token.kind == "KEYWORD" and token.value == "IN":
            self._next()
            return BinaryExpr("IN", left, self._expression_list())
        if token.kind == "KEYWORD" and token.value == "NOT":
            self._next()
            self._expect("KEYWORD", "IN")
            return UnaryExpr("!", BinaryExpr("IN", left, self._expression_list()))
        return left

    def _expression_list(self) -> Expression:
        self._expect("PUNCT", "(")
        items: list[Expression] = [self._expression()]
        while self._accept("PUNCT", ","):
            items.append(self._expression())
        self._expect("PUNCT", ")")
        return FunctionCall("_LIST", tuple(items))

    def _additive_expression(self) -> Expression:
        left = self._multiplicative_expression()
        while True:
            token = self._peek()
            if token.kind == "OP" and token.value in ("+", "-"):
                self._next()
                left = BinaryExpr(token.value, left, self._multiplicative_expression())
            else:
                return left

    def _multiplicative_expression(self) -> Expression:
        left = self._unary_expression()
        while True:
            token = self._peek()
            if token.kind == "OP" and token.value in ("*", "/"):
                self._next()
                left = BinaryExpr(token.value, left, self._unary_expression())
            else:
                return left

    def _unary_expression(self) -> Expression:
        token = self._peek()
        if token.kind == "OP" and token.value in ("!", "-", "+"):
            self._next()
            return UnaryExpr(token.value, self._unary_expression())
        return self._primary_expression()

    def _primary_expression(self) -> Expression:
        token = self._peek()
        if token.kind == "PUNCT" and token.value == "(":
            self._next()
            expression = self._expression()
            self._expect("PUNCT", ")")
            return expression
        if token.kind == "VAR":
            self._next()
            return VariableExpr(Variable(token.value[1:]))
        if token.kind == "KEYWORD" and token.value in AGGREGATES:
            return self._aggregate()
        if token.kind == "KEYWORD" and token.value in FUNCTIONS:
            self._next()
            name = token.value
            self._expect("PUNCT", "(")
            args: list[Expression] = []
            if not (self._peek().kind == "PUNCT" and self._peek().value == ")"):
                args.append(self._expression())
                while self._accept("PUNCT", ","):
                    args.append(self._expression())
            self._expect("PUNCT", ")")
            return FunctionCall(name, tuple(args))
        if token.kind in ("STRING", "INTEGER", "DECIMAL", "DOUBLE") or (
            token.kind == "KEYWORD" and token.value in ("TRUE", "FALSE")
        ):
            return TermExpr(self._literal())
        if token.kind in ("IRIREF", "QNAME"):
            return TermExpr(self._iri())
        raise self._error("expected expression")

    def _aggregate(self) -> AggregateExpr:
        name = self._next().value
        self._expect("PUNCT", "(")
        distinct = bool(self._accept("KEYWORD", "DISTINCT"))
        if name == "COUNT" and self._accept("OP", "*"):
            self._expect("PUNCT", ")")
            return AggregateExpr("COUNT", None, distinct)
        argument = self._expression()
        separator = " "
        if name == "GROUP_CONCAT" and self._accept("PUNCT", ";"):
            # GROUP_CONCAT(?x; SEPARATOR=", ")  — SEPARATOR arrives as QNAME-ish
            sep_token = self._next()
            if sep_token.value.upper() != "SEPARATOR":
                raise SparqlSyntaxError(
                    f"line {sep_token.line}: expected SEPARATOR, got {sep_token.value!r}"
                )
            self._expect("OP", "=")
            separator = _unescape_string(self._expect("STRING").value[1:-1])
        self._expect("PUNCT", ")")
        return AggregateExpr(name, argument, distinct, separator)


def _is_absolute(iri: str) -> bool:
    import re as _re

    return bool(_re.match(r"^[A-Za-z][A-Za-z0-9+.-]*:", iri))


def _unescape_string(text: str) -> str:
    from ..rdf.ntriples import _unescape

    return _unescape(text)
