"""Logical query plans and rewrite rules.

First stage of the query pipeline (survey §2/§4: efficiency through real
query optimization, not tree-walking interpretation)::

    parse → algebra → **logical plan** → cost-based ordering → physical plan

The logical plan is a small relational tree lowered from the SPARQL algebra
(:mod:`repro.sparql.algebra`) plus the solution modifiers of the query form.
Rewrites applied here are *cost-independent* (they never consult the store):

* **constant folding** — variable-free subexpressions of filters, BINDs and
  projections collapse to literals at plan time;
* **filter pushdown** — conjunctive filter clauses sink to the deepest
  subtree whose *certainly bound* variables cover them, down into the BGP
  itself (where the physical layer applies them mid-join);
* **LIMIT/OFFSET pushdown** — a ``Slice`` slides below the 1:1 ``Project``
  when no ORDER BY / DISTINCT blocks it, so streaming execution stops
  pulling solutions as soon as the window is full;
* **projection pruning** — a ``Prune`` trims solution width to the
  variables the upper pipeline can observe.

Cost-*dependent* ordering (greedy join ordering from store statistics)
happens in :func:`order_bgp_patterns` using a
:class:`~repro.sparql.optimizer.CardinalityEstimator`.

Every optimized plan has a stable :func:`plan_digest`, which the cached
engine uses as its key — syntactically different but plan-equivalent
queries share one cache entry.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..rdf.terms import Literal, Variable
from .algebra import (
    BGP,
    AlgebraNode,
    Extend,
    Filter,
    Join,
    LeftJoin,
    Union,
    Values,
    translate_group,
)
from .expr import (
    ExprError,
    contains_aggregate,
    ebv,
    evaluate,
    expression_variables,
    to_term,
)
from .nodes import (
    AskQuery,
    BinaryExpr,
    ConstructQuery,
    DescribeQuery,
    Expression,
    FunctionCall,
    OrderCondition,
    Projection,
    Query,
    SelectQuery,
    TermExpr,
    TriplePatternNode,
    UnaryExpr,
    ValuesPattern,
    VariableExpr,
)

__all__ = [
    "LogicalNode",
    "LogicalBGP",
    "LogicalJoin",
    "LogicalLeftJoin",
    "LogicalUnion",
    "LogicalFilter",
    "LogicalExtend",
    "LogicalValues",
    "LogicalProject",
    "LogicalPrune",
    "LogicalAggregate",
    "LogicalDistinct",
    "LogicalSort",
    "LogicalSlice",
    "build_select_plan",
    "build_pattern_plan",
    "optimize_plan",
    "certain_variables",
    "possible_variables",
    "fold_expression",
    "plan_digest",
    "query_digest",
]


class LogicalNode:
    """Marker base class for logical plan operators."""

    __slots__ = ()


@dataclass(frozen=True)
class LogicalBGP(LogicalNode):
    """A basic graph pattern plus the filter clauses pushed into it."""

    patterns: tuple[TriplePatternNode, ...]
    filters: tuple[Expression, ...] = ()


@dataclass(frozen=True)
class LogicalJoin(LogicalNode):
    left: LogicalNode
    right: LogicalNode


@dataclass(frozen=True)
class LogicalLeftJoin(LogicalNode):
    left: LogicalNode
    right: LogicalNode


@dataclass(frozen=True)
class LogicalUnion(LogicalNode):
    branches: tuple[LogicalNode, ...]


@dataclass(frozen=True)
class LogicalFilter(LogicalNode):
    expression: Expression
    input: LogicalNode


@dataclass(frozen=True)
class LogicalExtend(LogicalNode):
    input: LogicalNode
    variable: Variable
    expression: Expression


@dataclass(frozen=True)
class LogicalValues(LogicalNode):
    pattern: ValuesPattern


@dataclass(frozen=True)
class LogicalProject(LogicalNode):
    input: LogicalNode
    projections: tuple[Projection, ...]
    select_all: bool


@dataclass(frozen=True)
class LogicalPrune(LogicalNode):
    """Projection pruning: trim rows to the variables still observable."""

    input: LogicalNode
    variables: frozenset[Variable]


@dataclass(frozen=True)
class LogicalAggregate(LogicalNode):
    input: LogicalNode
    projections: tuple[Projection, ...]
    group_by: tuple[Expression, ...]
    having: Expression | None


@dataclass(frozen=True)
class LogicalDistinct(LogicalNode):
    input: LogicalNode


@dataclass(frozen=True)
class LogicalSort(LogicalNode):
    input: LogicalNode
    conditions: tuple[OrderCondition, ...]


@dataclass(frozen=True)
class LogicalSlice(LogicalNode):
    input: LogicalNode
    limit: int | None
    offset: int


# --------------------------------------------------------------------------- #
# Lowering: algebra / query forms → logical plan
# --------------------------------------------------------------------------- #


def _lower(node: AlgebraNode) -> LogicalNode:
    if isinstance(node, BGP):
        return LogicalBGP(node.patterns)
    if isinstance(node, Join):
        return LogicalJoin(_lower(node.left), _lower(node.right))
    if isinstance(node, LeftJoin):
        return LogicalLeftJoin(_lower(node.left), _lower(node.right))
    if isinstance(node, Union):
        return LogicalUnion(tuple(_lower(b) for b in node.branches))
    if isinstance(node, Filter):
        return LogicalFilter(node.expression, _lower(node.input))
    if isinstance(node, Extend):
        return LogicalExtend(_lower(node.input), node.variable, node.expression)
    if isinstance(node, Values):
        return LogicalValues(node.pattern)
    raise TypeError(f"unknown algebra node: {node!r}")


def build_pattern_plan(group) -> LogicalNode:
    """Logical plan for a bare WHERE group (ASK / CONSTRUCT / DESCRIBE)."""
    return _lower(translate_group(group))


def build_select_plan(q: SelectQuery) -> LogicalNode:
    """Full logical pipeline for a SELECT, mirroring evaluation order:

    pattern tree → Aggregate|Project → Sort → Distinct → Slice.
    """
    node: LogicalNode = build_pattern_plan(q.where)
    has_aggregates = bool(q.group_by) or any(
        p.expression is not None and contains_aggregate(p.expression)
        for p in q.projections
    )
    if has_aggregates:
        node = LogicalAggregate(node, q.projections, q.group_by, q.having)
    else:
        node = LogicalProject(node, q.projections, q.select_all)
    if q.order_by:
        node = LogicalSort(node, q.order_by)
    if q.distinct:
        node = LogicalDistinct(node)
    if q.limit is not None or q.offset:
        node = LogicalSlice(node, q.limit, q.offset)
    return node


# --------------------------------------------------------------------------- #
# Variable analysis
# --------------------------------------------------------------------------- #


def certain_variables(node: LogicalNode) -> frozenset[Variable]:
    """Variables bound in *every* solution the subtree can produce."""
    if isinstance(node, LogicalBGP):
        result: set[Variable] = set()
        for pattern in node.patterns:
            result |= pattern.variables()
        return frozenset(result)
    if isinstance(node, LogicalJoin):
        return certain_variables(node.left) | certain_variables(node.right)
    if isinstance(node, LogicalLeftJoin):
        return certain_variables(node.left)
    if isinstance(node, LogicalUnion):
        certain = [certain_variables(b) for b in node.branches]
        return frozenset.intersection(*certain) if certain else frozenset()
    if isinstance(node, LogicalFilter):
        return certain_variables(node.input)
    if isinstance(node, LogicalExtend):
        # BIND can fail to bind (expression error) — its variable is not certain.
        return certain_variables(node.input)
    if isinstance(node, LogicalValues):
        certain_positions = [
            v
            for index, v in enumerate(node.pattern.variables)
            if all(row[index] is not None for row in node.pattern.rows)
        ]
        return frozenset(certain_positions) if node.pattern.rows else frozenset()
    if isinstance(node, LogicalPrune):
        return certain_variables(node.input) & node.variables
    return frozenset()


def possible_variables(node: LogicalNode) -> frozenset[Variable]:
    """Variables that *may* appear in a solution of the subtree."""
    if isinstance(node, LogicalBGP):
        result: set[Variable] = set()
        for pattern in node.patterns:
            result |= pattern.variables()
        return frozenset(result)
    if isinstance(node, (LogicalJoin, LogicalLeftJoin)):
        return possible_variables(node.left) | possible_variables(node.right)
    if isinstance(node, LogicalUnion):
        result = frozenset()
        for branch in node.branches:
            result |= possible_variables(branch)
        return result
    if isinstance(node, LogicalFilter):
        return possible_variables(node.input)
    if isinstance(node, LogicalExtend):
        return possible_variables(node.input) | {node.variable}
    if isinstance(node, LogicalValues):
        return frozenset(node.pattern.variables)
    if isinstance(node, LogicalPrune):
        return possible_variables(node.input) & node.variables
    return frozenset()


# --------------------------------------------------------------------------- #
# Rewrite: constant folding
# --------------------------------------------------------------------------- #


def fold_expression(expression: Expression) -> Expression:
    """Collapse variable-free subexpressions into constant terms.

    Folding is semantics-preserving: subtrees whose evaluation errors (e.g.
    division by zero) are left intact so the runtime error behaviour —
    dropping the solution from a FILTER, skipping a BIND — is unchanged.
    """
    if isinstance(expression, UnaryExpr):
        folded: Expression = UnaryExpr(expression.operator, fold_expression(expression.operand))
    elif isinstance(expression, BinaryExpr):
        left = fold_expression(expression.left)
        right = fold_expression(expression.right)
        # Short-circuit folds that match the evaluator's laziness exactly:
        # a constant-false && never evaluates its right side, a
        # constant-true || never evaluates its right side.
        if isinstance(left, TermExpr):
            try:
                left_truth = ebv(left.term)
                if expression.operator == "&&" and not left_truth:
                    return TermExpr(Literal(False))
                if expression.operator == "||" and left_truth:
                    return TermExpr(Literal(True))
            except ExprError:
                # repro: swallow(a non-boolean constant just means no
                # short-circuit fold; the expr stays unfolded)
                pass
        folded = BinaryExpr(expression.operator, left, right)
    elif isinstance(expression, FunctionCall):
        folded = FunctionCall(expression.name, tuple(fold_expression(a) for a in expression.args))
    else:
        return expression

    if expression_variables(folded) or contains_aggregate(folded):
        return folded
    try:
        return TermExpr(to_term(evaluate(folded, {})))
    except ExprError:
        return folded  # runtime-error semantics preserved


def _is_constant_true(expression: Expression) -> bool:
    """A folded clause that is always effectively true filters nothing."""
    if not isinstance(expression, TermExpr):
        return False
    try:
        return ebv(expression.term)
    except ExprError:
        return False


def _fold_node(node: LogicalNode) -> LogicalNode:
    if isinstance(node, LogicalFilter):
        folded = fold_expression(node.expression)
        if _is_constant_true(folded):
            return _fold_node(node.input)
        return LogicalFilter(folded, _fold_node(node.input))
    if isinstance(node, LogicalExtend):
        return LogicalExtend(_fold_node(node.input), node.variable, fold_expression(node.expression))
    if isinstance(node, LogicalBGP):
        return LogicalBGP(node.patterns, tuple(fold_expression(f) for f in node.filters))
    if isinstance(node, LogicalJoin):
        return LogicalJoin(_fold_node(node.left), _fold_node(node.right))
    if isinstance(node, LogicalLeftJoin):
        return LogicalLeftJoin(_fold_node(node.left), _fold_node(node.right))
    if isinstance(node, LogicalUnion):
        return LogicalUnion(tuple(_fold_node(b) for b in node.branches))
    if isinstance(node, LogicalProject):
        return LogicalProject(
            _fold_node(node.input),
            tuple(
                Projection(p.variable, fold_expression(p.expression) if p.expression else None)
                for p in node.projections
            ),
            node.select_all,
        )
    if isinstance(node, LogicalAggregate):
        return LogicalAggregate(
            _fold_node(node.input), node.projections, node.group_by, node.having
        )
    if isinstance(node, LogicalSort):
        return LogicalSort(_fold_node(node.input), node.conditions)
    if isinstance(node, LogicalDistinct):
        return LogicalDistinct(_fold_node(node.input))
    if isinstance(node, LogicalSlice):
        return LogicalSlice(_fold_node(node.input), node.limit, node.offset)
    if isinstance(node, LogicalPrune):
        return LogicalPrune(_fold_node(node.input), node.variables)
    return node


# --------------------------------------------------------------------------- #
# Rewrite: filter pushdown
# --------------------------------------------------------------------------- #


def _split_conjunction(expression: Expression) -> list[Expression]:
    if isinstance(expression, BinaryExpr) and expression.operator == "&&":
        return _split_conjunction(expression.left) + _split_conjunction(expression.right)
    return [expression]


def _push_clause(node: LogicalNode, clause: Expression) -> LogicalNode:
    """Sink one filter clause as deep as certain-variable coverage allows."""
    needed = expression_variables(clause)
    if isinstance(node, LogicalBGP) and needed <= certain_variables(node):
        return LogicalBGP(node.patterns, node.filters + (clause,))
    if isinstance(node, LogicalJoin):
        if needed <= certain_variables(node.left):
            return LogicalJoin(_push_clause(node.left, clause), node.right)
        if needed <= certain_variables(node.right):
            return LogicalJoin(node.left, _push_clause(node.right, clause))
    if isinstance(node, LogicalLeftJoin):
        # Only the left side is safe: the right side of an OPTIONAL changes
        # which solutions get extended, not which survive.
        if needed <= certain_variables(node.left):
            return LogicalLeftJoin(_push_clause(node.left, clause), node.right)
    if isinstance(node, LogicalUnion) and all(
        needed <= certain_variables(b) for b in node.branches
    ):
        return LogicalUnion(tuple(_push_clause(b, clause) for b in node.branches))
    if isinstance(node, LogicalFilter):
        return LogicalFilter(node.expression, _push_clause(node.input, clause))
    if isinstance(node, LogicalExtend):
        if node.variable not in needed and needed <= certain_variables(node.input):
            return LogicalExtend(
                _push_clause(node.input, clause), node.variable, node.expression
            )
    return LogicalFilter(clause, node)


def _push_filters(node: LogicalNode) -> LogicalNode:
    if isinstance(node, LogicalFilter):
        child = _push_filters(node.input)
        for clause in _split_conjunction(node.expression):
            if _is_constant_true(clause):
                continue  # split may expose constant-true conjuncts
            child = _push_clause(child, clause)
        return child
    if isinstance(node, LogicalJoin):
        return LogicalJoin(_push_filters(node.left), _push_filters(node.right))
    if isinstance(node, LogicalLeftJoin):
        return LogicalLeftJoin(_push_filters(node.left), _push_filters(node.right))
    if isinstance(node, LogicalUnion):
        return LogicalUnion(tuple(_push_filters(b) for b in node.branches))
    if isinstance(node, LogicalExtend):
        return LogicalExtend(_push_filters(node.input), node.variable, node.expression)
    if isinstance(node, LogicalProject):
        return LogicalProject(_push_filters(node.input), node.projections, node.select_all)
    if isinstance(node, LogicalAggregate):
        return LogicalAggregate(
            _push_filters(node.input), node.projections, node.group_by, node.having
        )
    if isinstance(node, LogicalSort):
        return LogicalSort(_push_filters(node.input), node.conditions)
    if isinstance(node, LogicalDistinct):
        return LogicalDistinct(_push_filters(node.input))
    if isinstance(node, LogicalSlice):
        return LogicalSlice(_push_filters(node.input), node.limit, node.offset)
    if isinstance(node, LogicalPrune):
        return LogicalPrune(_push_filters(node.input), node.variables)
    return node


# --------------------------------------------------------------------------- #
# Rewrite: LIMIT/OFFSET pushdown + projection pruning
# --------------------------------------------------------------------------- #


def _push_slice(node: LogicalNode) -> LogicalNode:
    """``Slice(Project(X)) → Project(Slice(X))`` — Project is 1:1, so the
    window can be applied before projection. Sort and Distinct block the
    move (they need the full input)."""
    if isinstance(node, LogicalSlice) and isinstance(node.input, LogicalProject):
        project = node.input
        return LogicalProject(
            LogicalSlice(project.input, node.limit, node.offset),
            project.projections,
            project.select_all,
        )
    return node


def _projection_needs(projections: tuple[Projection, ...]) -> set[Variable]:
    needed: set[Variable] = set()
    for projection in projections:
        if projection.expression is None:
            needed.add(projection.variable)
        else:
            needed |= expression_variables(projection.expression)
    return needed


def _prune_projection(node: LogicalNode) -> LogicalNode:
    """Insert a width-trimming Prune below Project/Aggregate when the
    pattern tree binds variables the upper pipeline can never observe."""

    def wrap(input_node: LogicalNode, needed: set[Variable]) -> LogicalNode:
        if possible_variables(input_node) - needed:
            return LogicalPrune(input_node, frozenset(needed))
        return input_node

    if isinstance(node, LogicalProject) and not node.select_all:
        return LogicalProject(
            wrap(node.input, _projection_needs(node.projections)),
            node.projections,
            node.select_all,
        )
    if isinstance(node, LogicalAggregate):
        needed = _projection_needs(node.projections)
        for expr in node.group_by:
            needed |= expression_variables(expr)
        if node.having is not None:
            needed |= expression_variables(node.having)
        return LogicalAggregate(
            wrap(node.input, needed), node.projections, node.group_by, node.having
        )
    if isinstance(node, (LogicalSort, LogicalDistinct, LogicalSlice)):
        rebuilt = _prune_projection(node.input)
        if isinstance(node, LogicalSort):
            return LogicalSort(rebuilt, node.conditions)
        if isinstance(node, LogicalDistinct):
            return LogicalDistinct(rebuilt)
        return LogicalSlice(rebuilt, node.limit, node.offset)
    return node


def optimize_plan(node: LogicalNode) -> LogicalNode:
    """Apply the cost-independent rewrites in order."""
    node = _fold_node(node)
    node = _push_filters(node)
    node = _prune_projection(node)
    node = _push_slice(node)
    return node


# --------------------------------------------------------------------------- #
# Plan digests (result-cache keys)
# --------------------------------------------------------------------------- #


def _canonical_expression(expression: Expression) -> str:
    if isinstance(expression, VariableExpr):
        return f"?{expression.variable}"
    if isinstance(expression, TermExpr):
        return expression.term.n3()
    if isinstance(expression, UnaryExpr):
        return f"({expression.operator} {_canonical_expression(expression.operand)})"
    if isinstance(expression, BinaryExpr):
        return (
            f"({_canonical_expression(expression.left)} {expression.operator} "
            f"{_canonical_expression(expression.right)})"
        )
    if isinstance(expression, FunctionCall):
        args = " ".join(_canonical_expression(a) for a in expression.args)
        return f"{expression.name}({args})"
    from .nodes import AggregateExpr

    if isinstance(expression, AggregateExpr):
        arg = _canonical_expression(expression.argument) if expression.argument else "*"
        distinct = "DISTINCT " if expression.distinct else ""
        return f"{expression.name}({distinct}{arg};{expression.separator!r})"
    return repr(expression)


def _canonical_pattern(pattern: TriplePatternNode) -> str:
    return " ".join(
        term.n3() if hasattr(term, "n3") else repr(term)
        for term in (pattern.subject, pattern.predicate, pattern.object)
    )


def _canonical(node: LogicalNode) -> str:
    if isinstance(node, LogicalBGP):
        patterns = "; ".join(_canonical_pattern(p) for p in node.patterns)
        filters = " & ".join(_canonical_expression(f) for f in node.filters)
        return f"BGP[{patterns}|{filters}]"
    if isinstance(node, LogicalJoin):
        return f"Join[{_canonical(node.left)},{_canonical(node.right)}]"
    if isinstance(node, LogicalLeftJoin):
        return f"LeftJoin[{_canonical(node.left)},{_canonical(node.right)}]"
    if isinstance(node, LogicalUnion):
        return f"Union[{','.join(_canonical(b) for b in node.branches)}]"
    if isinstance(node, LogicalFilter):
        return f"Filter[{_canonical_expression(node.expression)}]({_canonical(node.input)})"
    if isinstance(node, LogicalExtend):
        return (
            f"Extend[?{node.variable}={_canonical_expression(node.expression)}]"
            f"({_canonical(node.input)})"
        )
    if isinstance(node, LogicalValues):
        rows = ";".join(
            ",".join(term.n3() if term is not None else "UNDEF" for term in row)
            for row in node.pattern.rows
        )
        variables = ",".join(f"?{v}" for v in node.pattern.variables)
        return f"Values[{variables}|{rows}]"
    if isinstance(node, LogicalProject):
        if node.select_all:
            items = "*"
        else:
            items = ",".join(
                f"?{p.variable}"
                if p.expression is None
                else f"({_canonical_expression(p.expression)} AS ?{p.variable})"
                for p in node.projections
            )
        return f"Project[{items}]({_canonical(node.input)})"
    if isinstance(node, LogicalPrune):
        variables = ",".join(sorted(f"?{v}" for v in node.variables))
        return f"Prune[{variables}]({_canonical(node.input)})"
    if isinstance(node, LogicalAggregate):
        items = ",".join(
            f"?{p.variable}"
            if p.expression is None
            else f"({_canonical_expression(p.expression)} AS ?{p.variable})"
            for p in node.projections
        )
        group = ",".join(_canonical_expression(e) for e in node.group_by)
        having = _canonical_expression(node.having) if node.having is not None else ""
        return f"Aggregate[{items}|{group}|{having}]({_canonical(node.input)})"
    if isinstance(node, LogicalDistinct):
        return f"Distinct({_canonical(node.input)})"
    if isinstance(node, LogicalSort):
        keys = ",".join(
            ("DESC " if c.descending else "ASC ") + _canonical_expression(c.expression)
            for c in node.conditions
        )
        return f"Sort[{keys}]({_canonical(node.input)})"
    if isinstance(node, LogicalSlice):
        return f"Slice[{node.limit},{node.offset}]({_canonical(node.input)})"
    return repr(node)


def plan_digest(node: LogicalNode, form: str = "SELECT", extra: str = "") -> str:
    """Stable hex digest of an (optimized) logical plan."""
    payload = f"{form}\x1f{_canonical(node)}\x1f{extra}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def query_digest(parsed: Query, optimize: bool = True) -> str:
    """Digest for any query form, keyed on its optimized logical plan."""
    if isinstance(parsed, SelectQuery):
        node = build_select_plan(parsed)
        form, extra = "SELECT", ""
    elif isinstance(parsed, AskQuery):
        node = build_pattern_plan(parsed.where)
        form, extra = "ASK", ""
    elif isinstance(parsed, ConstructQuery):
        node = build_pattern_plan(parsed.where)
        form = "CONSTRUCT"
        extra = (
            "; ".join(_canonical_pattern(t) for t in parsed.template)
            + f"|{parsed.limit}|{parsed.offset}"
        )
    elif isinstance(parsed, DescribeQuery):
        node = (
            build_pattern_plan(parsed.where)
            if parsed.where is not None
            else LogicalBGP(())
        )
        form = "DESCRIBE"
        extra = ",".join(
            r.n3() if hasattr(r, "n3") else repr(r) for r in parsed.resources
        )
    else:
        raise TypeError(f"unsupported query type: {type(parsed).__name__}")
    if optimize:
        node = optimize_plan(node)
    return plan_digest(node, form, extra)
