"""SPARQL query engine: orchestration over the plan pipeline.

Evaluation is a three-stage pipeline (survey §2/§4: efficient evaluation is
a precondition for interactive exploration)::

    parse → logical plan (:mod:`repro.sparql.plan`, cost-independent
    rewrites) → cost-based ordering (:mod:`repro.sparql.optimizer`,
    statistics-backed) → streaming physical operators
    (:mod:`repro.sparql.physical`)

:class:`QueryEngine` only dispatches on the query form, builds the operator
tree, and shapes results; all value semantics live in
:mod:`repro.sparql.expr` and all execution in the operators. Stores that
publish a :class:`~repro.store.base.StatisticsSnapshot` are planned without
a single index access; :meth:`QueryEngine.explain` exposes the chosen plan
with estimated and actual cardinalities per operator.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..obs import OBS
from ..rdf.graph import Graph
from ..rdf.terms import BNode, IRI, Term, Variable
from ..store.base import TripleSource
from .expr import instantiate
from .nodes import (
    AskQuery,
    ConstructQuery,
    DescribeQuery,
    Query,
    SelectQuery,
)
from .optimizer import CardinalityEstimator, CorrectionTable
from .parser import parse_query
from .physical import (
    EvalStats,
    ExplainNode,
    PhysicalOperator,
    build_plan,
    execution_strategy,
    operator_span,
    scan_observations,
)
from .plan import (
    LogicalNode,
    LogicalSlice,
    build_pattern_plan,
    build_select_plan,
    optimize_plan,
    query_digest,
)
from .results import SelectResult

__all__ = [
    "EvalStats",
    "ExplainNode",
    "QueryEngine",
    "StreamingSelect",
    "query",
]


@dataclass
class StreamingSelect:
    """A lazily-evaluated SELECT: rows are produced on demand.

    ``variables`` is the projection header (empty for ``SELECT *``, whose
    variables are only known once rows exist); ``root`` is the executing
    physical operator tree, exposing the planner's ``estimated_rows`` before
    a single row has been pulled — the serving layer's work estimate.
    """

    variables: list[Variable]
    rows: "object"  # Iterator[dict[Variable, Term]]
    root: PhysicalOperator

    @property
    def estimated_rows(self) -> float | None:
        return self.root.estimated_rows


@dataclass
class QueryEngine:
    """Evaluates parsed queries against a triple source.

    ``optimize=False`` disables every plan rewrite and evaluates BGPs in
    textual order — the baseline the C10 benchmark compares against.

    ``stats`` accumulates across queries until :meth:`EvalStats.reset` is
    called on it; each :class:`SelectResult` additionally carries the
    per-query counters of the run that produced it.

    ``exec_mode`` picks the BGP operator family: ``"iterator"``,
    ``"vectorized"``, or ``"auto"`` (vectorized when the store implements
    :class:`~repro.store.base.IdScanSource`, iterator otherwise). ``None``
    defers to the ``REPRO_EXEC`` environment variable, read per query so
    tests can flip engines without rebuilding the engine.

    ``corrections`` optionally rescales the planner's uniformity-based
    cardinality guesses with a :class:`CorrectionTable` learned from the
    query log's estimate-drift observations (``repro.obs.workload``), so
    repeated misestimates on skewed data feed back into join order.
    """

    store: TripleSource
    optimize: bool = True
    stats: EvalStats = field(default_factory=EvalStats)
    exec_mode: str | None = None
    corrections: CorrectionTable | None = None

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def query(self, text: str | Query, digest: str | None = None):
        """Parse (if needed) and evaluate; the result type follows the form:

        SELECT → :class:`SelectResult`, ASK → bool,
        CONSTRUCT/DESCRIBE → :class:`~repro.rdf.graph.Graph`.

        When global tracing (:mod:`repro.obs`) is enabled, the run is
        wrapped in a ``sparql.query`` span with one child span per
        physical operator, timed inclusively and suspension-aware. When
        the query log (``OBS.querylog``) is enabled, the run additionally
        emits one structured workload record.

        ``digest`` is the plan digest when the caller already computed it
        (:class:`~repro.sparql.cached.CachedQueryEngine` keys its cache on
        it); otherwise it is derived here only when the query log needs it.
        """
        parsed = parse_query(text) if isinstance(text, str) else text
        per_query = EvalStats()
        # _build_root refreshes this per dispatch; cleared up front so a
        # plan-less form (DESCRIBE without WHERE) cannot report the
        # previous query's operator tree.
        self._last_root = None
        log = OBS.querylog
        logging = log.enabled
        started = time.perf_counter_ns() if logging else 0
        if logging and digest is None:
            digest = query_digest(parsed, optimize=self.optimize)
        trace_id = None
        if not OBS.enabled:
            result = self._dispatch(parsed, per_query)
        else:
            per_query.tracer = OBS.tracer
            with OBS.tracer.span(
                "sparql.query", form=type(parsed).__name__
            ) as span:
                result = self._dispatch(parsed, per_query)
                span.set_attribute("store_lookups", per_query.store_lookups)
                span.set_attribute("solutions", per_query.solutions)
                if per_query.scan_batches:
                    # Only the vectorized engine pulls id batches, so these
                    # attributes double as the engine marker on the span.
                    span.set_attribute("scan_batches", per_query.scan_batches)
                    span.set_attribute("scan_rows", per_query.scan_rows)
                root = self._last_root
                if root is not None:
                    span.add_child(operator_span(root))
            trace_id = getattr(span, "trace_id", None)
        self.stats.merge(per_query)
        if logging:
            root = self._last_root
            log.emit(
                digest=digest,
                form=_form_name(parsed),
                strategy=execution_strategy(root),
                latency_ms=(time.perf_counter_ns() - started) / 1e6,
                counters=per_query,
                scans=scan_observations(root),
                trace_id=trace_id,
            )
        if digest is not None and isinstance(result, SelectResult):
            result.plan_digest = digest
        return result

    def _dispatch(self, parsed: Query, per_query: EvalStats):
        if isinstance(parsed, SelectQuery):
            return self._eval_select(parsed, per_query)
        if isinstance(parsed, AskQuery):
            return self._eval_ask(parsed, per_query)
        if isinstance(parsed, ConstructQuery):
            return self._eval_construct(parsed, per_query)
        if isinstance(parsed, DescribeQuery):
            return self._eval_describe(parsed, per_query)
        raise TypeError(f"unsupported query type: {type(parsed).__name__}")

    def explain(self, text: str | Query, analyze: bool = True) -> ExplainNode:
        """The physical plan as an :class:`ExplainNode` tree.

        With ``analyze=True`` (the default) the plan is executed first, so
        every node reports its actual row count and inclusive wall-clock
        time (``time=…ms``, sourced from the operator span timers) next to
        the planner's estimate; with ``analyze=False`` only estimates are
        filled in and the store is not touched.
        """
        parsed = parse_query(text) if isinstance(text, str) else text
        per_query = EvalStats()
        if analyze:
            # EXPLAIN ANALYZE always times operators — measuring is the
            # point — independent of the global tracing switch.
            per_query.tracer = OBS.tracer
        root = self._build_root(parsed, per_query)
        if root is None:  # DESCRIBE without a WHERE clause has no plan
            detail = ", ".join(r.n3() for r in parsed.resources)
            return ExplainNode("Describe", detail, None, None, ())
        if analyze:
            if OBS.enabled:
                with OBS.tracer.span(
                    "sparql.explain", form=type(parsed).__name__
                ) as span:
                    for _ in root.execute({}):
                        pass
                    span.add_child(operator_span(root))
            else:
                for _ in root.execute({}):
                    pass
            self.stats.merge(per_query)
        return root.explain()

    def stream_select(
        self, text: str | Query, digest: str | None = None
    ) -> StreamingSelect:
        """Evaluate a SELECT without materializing its rows.

        The returned iterator drives the streaming physical operators
        directly, so the first row costs first-row work, not full-result
        work — the property the serving layer's chunked delivery relies on.
        Per-query stats merge into :attr:`stats` when the iterator is
        exhausted (an abandoned iterator contributes nothing). The query
        log, by contrast, records *every* started stream when it closes —
        abandoned ones (e.g. the serving layer's bounded-work approximate
        tier) carry ``complete=false`` and whatever partial counters the
        consumed prefix accumulated.
        """
        parsed = parse_query(text) if isinstance(text, str) else text
        if not isinstance(parsed, SelectQuery):
            raise TypeError("stream_select requires a SELECT query")
        per_query = EvalStats()
        if OBS.enabled:
            per_query.tracer = OBS.tracer
        log = OBS.querylog
        logging = log.enabled
        if logging and digest is None:
            digest = query_digest(parsed, optimize=self.optimize)
        root = self._build_root(parsed, per_query)
        variables = (
            [] if parsed.select_all
            else [p.variable for p in parsed.projections]
        )
        started = time.perf_counter_ns() if logging else 0
        # The ambient trace is captured at stream creation: an abandoned
        # generator is closed by GC, possibly after the serving span ended.
        trace_id = None
        if logging and log.trace_provider is not None:
            trace_id = getattr(log.trace_provider(), "trace_id", None)

        def generate():
            finished = False
            try:
                for row in root.execute({}):
                    per_query.solutions += 1
                    yield row
                finished = True
                self.stats.merge(per_query)
            finally:
                if logging:
                    log.emit(
                        digest=digest,
                        form="SELECT",
                        strategy=execution_strategy(root),
                        latency_ms=(
                            time.perf_counter_ns() - started
                        ) / 1e6,
                        counters=per_query,
                        scans=scan_observations(root),
                        trace_id=trace_id,
                        complete=finished,
                    )

        return StreamingSelect(variables, generate(), root)

    def plan_digest(self, text: str | Query) -> str:
        """Stable digest of the optimized logical plan (result-cache key)."""
        parsed = parse_query(text) if isinstance(text, str) else text
        return query_digest(parsed, optimize=self.optimize)

    # ------------------------------------------------------------------ #
    # Pipeline assembly
    # ------------------------------------------------------------------ #

    def _estimator(self) -> CardinalityEstimator | None:
        # The unoptimized baseline plans nothing, so it also estimates
        # nothing — zero store access beyond execution itself.
        if not self.optimize:
            return None
        return CardinalityEstimator.for_store(
            self.store, corrections=self.corrections
        )

    def _logical(self, parsed: Query) -> LogicalNode | None:
        if isinstance(parsed, SelectQuery):
            node: LogicalNode = build_select_plan(parsed)
        elif isinstance(parsed, AskQuery):
            node = build_pattern_plan(parsed.where)
        elif isinstance(parsed, ConstructQuery):
            node = build_pattern_plan(parsed.where)
            if parsed.limit is not None or parsed.offset:
                node = LogicalSlice(node, parsed.limit, parsed.offset)
        elif isinstance(parsed, DescribeQuery):
            if parsed.where is None:
                return None
            node = build_pattern_plan(parsed.where)
        else:
            raise TypeError(f"unsupported query type: {type(parsed).__name__}")
        if self.optimize:
            node = optimize_plan(node)
        return node

    def _build_root(
        self, parsed: Query, per_query: EvalStats
    ) -> PhysicalOperator | None:
        logical = self._logical(parsed)
        if logical is None:
            return None
        root = build_plan(
            logical,
            self.store,
            per_query,
            self._estimator(),
            optimize=self.optimize,
            exec_mode=self.exec_mode,
        )
        # Remembered so the tracing wrapper in :meth:`query` can attach the
        # executed operator tree's spans after dispatch returns.
        self._last_root = root
        return root

    # ------------------------------------------------------------------ #
    # Query forms
    # ------------------------------------------------------------------ #

    def _eval_select(self, q: SelectQuery, per_query: EvalStats) -> SelectResult:
        root = self._build_root(q, per_query)
        rows = list(root.execute({}))
        if q.select_all:
            variables = sorted({v for row in rows for v in row}, key=str)
        else:
            variables = [p.variable for p in q.projections]
        per_query.solutions += len(rows)
        return SelectResult(variables, rows, stats=per_query, plan=root.explain())

    def _eval_ask(self, q: AskQuery, per_query: EvalStats) -> bool:
        root = self._build_root(q, per_query)
        for _ in root.execute({}):
            return True
        return False

    def _eval_construct(self, q: ConstructQuery, per_query: EvalStats) -> Graph:
        root = self._build_root(q, per_query)
        graph = Graph()
        for binding in root.execute({}):
            for template in q.template:
                triple = instantiate(template, binding)
                if triple is not None:
                    graph.add(triple)
        return graph

    def _eval_describe(self, q: DescribeQuery, per_query: EvalStats) -> Graph:
        graph = Graph()
        resources: set[Term] = set()
        bindings: list | None = None
        for resource in q.resources:
            if isinstance(resource, Variable):
                if q.where is None:
                    raise ValueError("DESCRIBE with variables needs a WHERE clause")
                if bindings is None:
                    root = self._build_root(q, per_query)
                    bindings = list(root.execute({}))
                for binding in bindings:
                    if resource in binding:
                        resources.add(binding[resource])
            else:
                resources.add(resource)
        for resource in resources:
            if isinstance(resource, (IRI, BNode)):
                for triple in self.store.triples((resource, None, None)):
                    graph.add(triple)
            for triple in self.store.triples((None, None, resource)):
                graph.add(triple)
        return graph


def _form_name(parsed: Query) -> str:
    """The query-log ``form`` label of a parsed query."""
    if isinstance(parsed, SelectQuery):
        return "SELECT"
    if isinstance(parsed, AskQuery):
        return "ASK"
    if isinstance(parsed, ConstructQuery):
        return "CONSTRUCT"
    return "DESCRIBE"


def query(store: TripleSource, text: str, optimize: bool = True):
    """One-shot convenience wrapper around :class:`QueryEngine`."""
    return QueryEngine(store, optimize=optimize).query(text)
