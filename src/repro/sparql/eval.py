"""SPARQL evaluation over any :class:`~repro.store.base.TripleSource`.

The evaluator is pull-based (generators all the way down): solutions stream
out of index lookups one at a time, so LIMIT-ed exploratory queries — the
dominant shape in the survey's interactive setting — touch only as much of
the store as they need.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Iterator

from ..rdf.graph import Graph
from ..rdf.terms import BNode, IRI, Literal, Term, Triple, Variable, term_sort_key
from ..store.base import TripleSource
from .algebra import (
    BGP,
    AlgebraNode,
    Extend,
    Filter,
    Join,
    LeftJoin,
    Union,
    Values,
    translate_group,
)
from .nodes import (
    AggregateExpr,
    AskQuery,
    BinaryExpr,
    ConstructQuery,
    DescribeQuery,
    Expression,
    FunctionCall,
    Projection,
    Query,
    SelectQuery,
    TermExpr,
    TriplePatternNode,
    UnaryExpr,
    VariableExpr,
)
from .optimizer import order_patterns
from .parser import parse_query
from .results import SelectResult

__all__ = ["QueryEngine", "EvalStats", "query"]

Binding = dict[Variable, Term]


class _ExprError(Exception):
    """SPARQL expression error (type error, unbound variable, ...)."""


@dataclass
class EvalStats:
    """Counters used by the C10 optimizer benchmark."""

    store_lookups: int = 0
    intermediate_bindings: int = 0
    solutions: int = 0

    def reset(self) -> None:
        self.store_lookups = 0
        self.intermediate_bindings = 0
        self.solutions = 0


@dataclass
class QueryEngine:
    """Evaluates parsed queries against a triple source.

    ``optimize=False`` disables join reordering (evaluates BGPs in textual
    order) — the baseline the C10 benchmark compares against.
    """

    store: TripleSource
    optimize: bool = True
    stats: EvalStats = field(default_factory=EvalStats)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def query(self, text: str | Query):
        """Parse (if needed) and evaluate; the result type follows the form:

        SELECT → :class:`SelectResult`, ASK → bool,
        CONSTRUCT/DESCRIBE → :class:`~repro.rdf.graph.Graph`.
        """
        parsed = parse_query(text) if isinstance(text, str) else text
        if isinstance(parsed, SelectQuery):
            return self._eval_select(parsed)
        if isinstance(parsed, AskQuery):
            return self._eval_ask(parsed)
        if isinstance(parsed, ConstructQuery):
            return self._eval_construct(parsed)
        if isinstance(parsed, DescribeQuery):
            return self._eval_describe(parsed)
        raise TypeError(f"unsupported query type: {type(parsed).__name__}")

    # ------------------------------------------------------------------ #
    # Query forms
    # ------------------------------------------------------------------ #

    def _eval_select(self, q: SelectQuery) -> SelectResult:
        solutions = list(self._eval_node(translate_group(q.where), {}))
        has_aggregates = bool(q.group_by) or any(
            p.expression is not None and _contains_aggregate(p.expression)
            for p in q.projections
        )
        if has_aggregates:
            rows = self._aggregate_rows(q, solutions)
        else:
            rows = []
            for binding in solutions:
                row: Binding = {}
                if q.select_all:
                    row = dict(binding)
                else:
                    for projection in q.projections:
                        value = self._project_value(projection, binding)
                        if value is not None:
                            row[projection.variable] = value
                rows.append(row)

        if q.order_by:
            rows = self._order_rows(rows, q)
        if q.distinct:
            rows = _distinct_rows(rows)
        if q.offset:
            rows = rows[q.offset :]
        if q.limit is not None:
            rows = rows[: q.limit]

        if q.select_all:
            variables = sorted({v for row in rows for v in row}, key=str)
        else:
            variables = [p.variable for p in q.projections]
        self.stats.solutions += len(rows)
        return SelectResult(variables, rows)

    def _eval_ask(self, q: AskQuery) -> bool:
        for _ in self._eval_node(translate_group(q.where), {}):
            return True
        return False

    def _eval_construct(self, q: ConstructQuery) -> Graph:
        graph = Graph()
        produced = 0
        skipped = q.offset
        for binding in self._eval_node(translate_group(q.where), {}):
            if skipped:
                skipped -= 1
                continue
            for template in q.template:
                triple = _instantiate(template, binding)
                if triple is not None:
                    graph.add(triple)
            produced += 1
            if q.limit is not None and produced >= q.limit:
                break
        return graph

    def _eval_describe(self, q: DescribeQuery) -> Graph:
        graph = Graph()
        resources: set[Term] = set()
        for resource in q.resources:
            if isinstance(resource, Variable):
                if q.where is None:
                    raise ValueError("DESCRIBE with variables needs a WHERE clause")
                for binding in self._eval_node(translate_group(q.where), {}):
                    if resource in binding:
                        resources.add(binding[resource])
            else:
                resources.add(resource)
        for resource in resources:
            if isinstance(resource, (IRI, BNode)):
                for triple in self.store.triples((resource, None, None)):
                    graph.add(triple)
            for triple in self.store.triples((None, None, resource)):
                graph.add(triple)
        return graph

    # ------------------------------------------------------------------ #
    # Algebra evaluation
    # ------------------------------------------------------------------ #

    def _eval_node(self, node: AlgebraNode, binding: Binding) -> Iterator[Binding]:
        if isinstance(node, BGP):
            yield from self._eval_bgp(node.patterns, binding)
        elif isinstance(node, Join):
            for left in self._eval_node(node.left, binding):
                yield from self._eval_node(node.right, left)
        elif isinstance(node, LeftJoin):
            for left in self._eval_node(node.left, binding):
                matched = False
                for joined in self._eval_node(node.right, left):
                    matched = True
                    yield joined
                if not matched:
                    yield left
        elif isinstance(node, Union):
            for branch in node.branches:
                yield from self._eval_node(branch, binding)
        elif isinstance(node, Values):
            for row in node.pattern.rows:
                extended = dict(binding)
                compatible = True
                for variable, term in zip(node.pattern.variables, row):
                    if term is None:  # UNDEF constrains nothing
                        continue
                    bound = extended.get(variable)
                    if bound is None:
                        extended[variable] = term
                    elif bound != term:
                        compatible = False
                        break
                if compatible:
                    yield extended
        elif isinstance(node, Filter):
            for solution in self._eval_node(node.input, binding):
                try:
                    if _ebv(self._eval_expr(node.expression, solution)):
                        yield solution
                except _ExprError:
                    continue
        elif isinstance(node, Extend):
            for solution in self._eval_node(node.input, binding):
                try:
                    value = _to_term(self._eval_expr(node.expression, solution))
                except _ExprError:
                    yield solution
                    continue
                if node.variable in solution:
                    continue  # BIND on a bound variable: no solution
                extended = dict(solution)
                extended[node.variable] = value
                yield extended
        else:  # pragma: no cover
            raise TypeError(f"unknown algebra node: {node!r}")

    def _eval_bgp(
        self, patterns: tuple[TriplePatternNode, ...], binding: Binding
    ) -> Iterator[Binding]:
        if not patterns:
            yield dict(binding)
            return
        ordered = (
            order_patterns(self.store, patterns) if self.optimize else list(patterns)
        )

        def recurse(index: int, current: Binding) -> Iterator[Binding]:
            if index == len(ordered):
                yield current
                return
            pattern = ordered[index]
            lookup = tuple(
                _resolve(term, current) for term in (
                    pattern.subject, pattern.predicate, pattern.object
                )
            )
            store_pattern = tuple(
                None if isinstance(t, Variable) else t for t in lookup
            )
            self.stats.store_lookups += 1
            for triple in self.store.triples(store_pattern):
                extended = _unify(lookup, triple, current)
                if extended is not None:
                    self.stats.intermediate_bindings += 1
                    yield from recurse(index + 1, extended)

        yield from recurse(0, dict(binding))

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #

    def _aggregate_rows(self, q: SelectQuery, solutions: list[Binding]) -> list[Binding]:
        groups: dict[tuple, list[Binding]] = {}
        if q.group_by:
            for solution in solutions:
                key = tuple(
                    _group_key(self._try_expr(expr, solution)) for expr in q.group_by
                )
                groups.setdefault(key, []).append(solution)
        else:
            groups[()] = solutions  # implicit single group (may be empty)

        rows: list[Binding] = []
        for _, members in sorted(groups.items(), key=lambda kv: str(kv[0])):
            representative = members[0] if members else {}
            row: Binding = {}
            ok = True
            for projection in q.projections:
                if projection.expression is None:
                    value = representative.get(projection.variable)
                else:
                    try:
                        value = _to_term(
                            self._eval_group_expr(projection.expression, members, representative)
                        )
                    except _ExprError:
                        value = None
                if value is not None:
                    row[projection.variable] = value
            if q.having is not None:
                try:
                    ok = _ebv(self._eval_group_expr(q.having, members, representative))
                except _ExprError:
                    ok = False
            if ok:
                rows.append(row)
        return rows

    def _eval_group_expr(
        self, expression: Expression, members: list[Binding], representative: Binding
    ):
        if isinstance(expression, AggregateExpr):
            return self._eval_aggregate(expression, members)
        if isinstance(expression, BinaryExpr):
            return _apply_binary(
                expression.operator,
                lambda: self._eval_group_expr(expression.left, members, representative),
                lambda: self._eval_group_expr(expression.right, members, representative),
            )
        if isinstance(expression, UnaryExpr):
            return _apply_unary(
                expression.operator,
                self._eval_group_expr(expression.operand, members, representative),
            )
        if isinstance(expression, FunctionCall):
            args = [
                self._eval_group_expr(arg, members, representative)
                for arg in expression.args
            ]
            return _apply_function(expression.name, args, expression, representative)
        return self._eval_expr(expression, representative)

    def _eval_aggregate(self, agg: AggregateExpr, members: list[Binding]):
        if agg.name == "COUNT" and agg.argument is None:
            return len(members)
        values = []
        for member in members:
            value = self._try_expr(agg.argument, member)
            if value is not None:
                values.append(value)
        if agg.distinct:
            seen = set()
            unique = []
            for value in values:
                key = _group_key(value)
                if key not in seen:
                    seen.add(key)
                    unique.append(value)
            values = unique
        if agg.name == "COUNT":
            return len(values)
        if agg.name == "SAMPLE":
            if not values:
                raise _ExprError("SAMPLE over empty group")
            return values[0]
        if agg.name == "GROUP_CONCAT":
            return agg.separator.join(_string_value(v) for v in values)
        numbers = [_numeric(v) for v in values]
        if not numbers:
            if agg.name == "SUM":
                return 0
            raise _ExprError(f"{agg.name} over empty group")
        if agg.name == "SUM":
            return sum(numbers)
        if agg.name == "AVG":
            return sum(numbers) / len(numbers)
        if agg.name == "MIN":
            return min(numbers)
        if agg.name == "MAX":
            return max(numbers)
        raise _ExprError(f"unknown aggregate {agg.name}")

    # ------------------------------------------------------------------ #
    # Expression helpers
    # ------------------------------------------------------------------ #

    def _project_value(self, projection: Projection, binding: Binding) -> Term | None:
        if projection.expression is None:
            return binding.get(projection.variable)
        try:
            return _to_term(self._eval_expr(projection.expression, binding))
        except _ExprError:
            return None

    def _try_expr(self, expression: Expression | None, binding: Binding):
        if expression is None:
            return None
        try:
            return self._eval_expr(expression, binding)
        except _ExprError:
            return None

    def _eval_expr(self, expression: Expression, binding: Binding):
        if isinstance(expression, VariableExpr):
            value = binding.get(expression.variable)
            if value is None:
                raise _ExprError(f"unbound variable ?{expression.variable}")
            return value
        if isinstance(expression, TermExpr):
            return expression.term
        if isinstance(expression, UnaryExpr):
            if expression.operator == "!":
                # '!' needs EBV, not a raw value
                return not _ebv(self._eval_expr(expression.operand, binding))
            return _apply_unary(
                expression.operator, self._eval_expr(expression.operand, binding)
            )
        if isinstance(expression, BinaryExpr):
            return _apply_binary(
                expression.operator,
                lambda: self._eval_expr(expression.left, binding),
                lambda: self._eval_expr(expression.right, binding),
            )
        if isinstance(expression, FunctionCall):
            if expression.name == "BOUND":
                arg = expression.args[0]
                if not isinstance(arg, VariableExpr):
                    raise _ExprError("BOUND needs a variable")
                return arg.variable in binding
            if expression.name == "COALESCE":
                for arg in expression.args:
                    try:
                        return self._eval_expr(arg, binding)
                    except _ExprError:
                        continue
                raise _ExprError("COALESCE: all arguments errored")
            if expression.name == "IF":
                condition = _ebv(self._eval_expr(expression.args[0], binding))
                chosen = expression.args[1] if condition else expression.args[2]
                return self._eval_expr(chosen, binding)
            args = [self._eval_expr(arg, binding) for arg in expression.args]
            return _apply_function(expression.name, args, expression, binding)
        if isinstance(expression, AggregateExpr):
            raise _ExprError("aggregate outside GROUP BY context")
        raise _ExprError(f"unknown expression {expression!r}")

    def _order_rows(self, rows: list[Binding], q: SelectQuery) -> list[Binding]:
        def key(row: Binding):
            parts = []
            for condition in q.order_by:
                try:
                    value = self._eval_expr(condition.expression, row)
                except _ExprError:
                    parts.append((0,))  # unbound sorts first
                    continue
                term = _to_term(value)
                sort_key = term_sort_key(term)
                if condition.descending:
                    parts.append(_Reversed(sort_key))
                else:
                    parts.append(sort_key)
            return tuple(parts)

        return sorted(rows, key=key)


class _Reversed:
    """Inverts comparison for DESC sort keys."""

    __slots__ = ("key",)

    def __init__(self, key: object) -> None:
        self.key = key

    def __lt__(self, other: "_Reversed") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and self.key == other.key


# --------------------------------------------------------------------------- #
# Pure helpers
# --------------------------------------------------------------------------- #


def _resolve(term, binding: Binding):
    if isinstance(term, Variable):
        return binding.get(term, term)
    return term


def _unify(lookup: tuple, triple: Triple, binding: Binding) -> Binding | None:
    """Bind the variables of ``lookup`` against a concrete triple."""
    result = binding
    copied = False
    for pattern_term, value in zip(lookup, triple):
        if isinstance(pattern_term, Variable):
            bound = result.get(pattern_term)
            if bound is None:
                if not copied:
                    result = dict(result)
                    copied = True
                result[pattern_term] = value
            elif bound != value:
                return None
    return result if copied else dict(result)


def _instantiate(template: TriplePatternNode, binding: Binding) -> Triple | None:
    s = _resolve(template.subject, binding)
    p = _resolve(template.predicate, binding)
    o = _resolve(template.object, binding)
    if isinstance(s, Variable) or isinstance(p, Variable) or isinstance(o, Variable):
        return None
    if not isinstance(s, (IRI, BNode)) or not isinstance(p, IRI):
        return None
    if not isinstance(o, (IRI, BNode, Literal)):
        return None
    return Triple(s, p, o)


def _contains_aggregate(expression: Expression) -> bool:
    if isinstance(expression, AggregateExpr):
        return True
    if isinstance(expression, UnaryExpr):
        return _contains_aggregate(expression.operand)
    if isinstance(expression, BinaryExpr):
        return _contains_aggregate(expression.left) or _contains_aggregate(expression.right)
    if isinstance(expression, FunctionCall):
        return any(_contains_aggregate(arg) for arg in expression.args)
    return False


def _ebv(value) -> bool:
    """SPARQL effective boolean value."""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0 and not (isinstance(value, float) and math.isnan(value))
    if isinstance(value, str) and not isinstance(value, (IRI, BNode)):
        return len(value) > 0
    if isinstance(value, Literal):
        native = value.value
        if isinstance(native, bool):
            return native
        if isinstance(native, (int, float)):
            return _ebv(native)
        return len(value.lexical) > 0
    raise _ExprError(f"no effective boolean value for {value!r}")


def _numeric(value) -> float | int:
    if isinstance(value, bool):
        raise _ExprError("boolean is not numeric")
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, Literal):
        native = value.value
        if isinstance(native, (int, float)) and not isinstance(native, bool):
            return native
    raise _ExprError(f"not a number: {value!r}")


def _string_value(value) -> str:
    if isinstance(value, Literal):
        return value.lexical
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return str(value)
    return str(value)


def _to_term(value) -> Term:
    if isinstance(value, (IRI, BNode, Literal)):
        return value
    if isinstance(value, bool):
        return Literal(value)
    if isinstance(value, int):
        return Literal(value)
    if isinstance(value, float):
        return Literal(value)
    if isinstance(value, str):
        return Literal(value)
    raise _ExprError(f"cannot convert {value!r} to an RDF term")


def _group_key(value):
    if isinstance(value, Literal):
        return ("lit", value.lexical, value.datatype, value.lang)
    if isinstance(value, (IRI, BNode)):
        return (type(value).__name__, str(value))
    return ("py", value)


def _values_equal(a, b) -> bool:
    try:
        return _numeric(a) == _numeric(b)
    except _ExprError:
        pass
    if isinstance(a, Literal) and isinstance(b, Literal):
        return a == b
    if isinstance(a, Literal) or isinstance(b, Literal):
        lit, other = (a, b) if isinstance(a, Literal) else (b, a)
        if isinstance(other, (IRI, BNode)):
            return False
        if isinstance(other, bool):
            return lit.value is other
        if isinstance(other, str):
            return lit.lang is None and lit.lexical == other
        return False
    # IRI and BNode subclass str, so require matching kinds before comparing.
    if isinstance(a, (IRI, BNode)) or isinstance(b, (IRI, BNode)):
        return type(a) is type(b) and str(a) == str(b)
    return a == b


def _compare(op: str, a, b) -> bool:
    if op == "=":
        return _values_equal(a, b)
    if op == "!=":
        return not _values_equal(a, b)
    try:
        left, right = _numeric(a), _numeric(b)
    except _ExprError:
        left, right = _string_value(a), _string_value(b)
        if isinstance(a, (IRI, BNode)) != isinstance(b, (IRI, BNode)):
            raise _ExprError(f"incomparable values {a!r} and {b!r}") from None
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise _ExprError(f"unknown comparison {op}")


def _apply_unary(op: str, value):
    if op == "!":
        return not _ebv(value)
    if op == "-":
        return -_numeric(value)
    if op == "+":
        return _numeric(value)
    raise _ExprError(f"unknown unary operator {op}")


def _apply_binary(op: str, left_thunk, right_thunk):
    if op == "&&":
        return _ebv(left_thunk()) and _ebv(right_thunk())
    if op == "||":
        try:
            if _ebv(left_thunk()):
                return True
        except _ExprError:
            return _ebv(right_thunk()) or _raise(_ExprError("|| left errored, right false"))
        return _ebv(right_thunk())
    left = left_thunk()
    right = right_thunk()
    if op in ("=", "!=", "<", "<=", ">", ">="):
        return _compare(op, left, right)
    if op == "IN":
        if not (isinstance(right, tuple)):
            raise _ExprError("IN needs a list")
        return any(_values_equal(left, item) for item in right)
    a, b = _numeric(left), _numeric(right)
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        if b == 0:
            raise _ExprError("division by zero")
        return a / b
    raise _ExprError(f"unknown operator {op}")


def _raise(exc: Exception):
    raise exc


_DATE_RE = re.compile(r"^(-?\d{4,})-(\d{2})-(\d{2})")


def _apply_function(name: str, args: list, expression: FunctionCall, binding: Binding):
    if name == "_LIST":
        return tuple(args)
    if name == "STR":
        return _string_value(args[0]) if not isinstance(args[0], IRI) else str(args[0])
    if name in ("IRI", "URI"):
        return IRI(_string_value(args[0]))
    if name == "LANG":
        if isinstance(args[0], Literal):
            return args[0].lang or ""
        raise _ExprError("LANG needs a literal")
    if name == "LANGMATCHES":
        tag = _string_value(args[0]).lower()
        pattern = _string_value(args[1]).lower()
        if pattern == "*":
            return bool(tag)
        return tag == pattern or tag.startswith(pattern + "-")
    if name == "DATATYPE":
        if isinstance(args[0], Literal):
            return IRI(args[0].datatype)
        raise _ExprError("DATATYPE needs a literal")
    if name in ("ISIRI", "ISURI"):
        return isinstance(args[0], IRI)
    if name == "ISBLANK":
        return isinstance(args[0], BNode)
    if name == "ISLITERAL":
        return isinstance(args[0], Literal)
    if name == "ISNUMERIC":
        try:
            _numeric(args[0])
            return True
        except _ExprError:
            return False
    if name == "REGEX":
        flags = re.IGNORECASE if len(args) > 2 and "i" in _string_value(args[2]) else 0
        return re.search(_string_value(args[1]), _string_value(args[0]), flags) is not None
    if name == "STRSTARTS":
        return _string_value(args[0]).startswith(_string_value(args[1]))
    if name == "STRENDS":
        return _string_value(args[0]).endswith(_string_value(args[1]))
    if name == "CONTAINS":
        return _string_value(args[1]) in _string_value(args[0])
    if name == "STRLEN":
        return len(_string_value(args[0]))
    if name == "UCASE":
        return _string_value(args[0]).upper()
    if name == "LCASE":
        return _string_value(args[0]).lower()
    if name == "CONCAT":
        return "".join(_string_value(a) for a in args)
    if name == "SUBSTR":
        text = _string_value(args[0])
        start = int(_numeric(args[1])) - 1  # SPARQL is 1-based
        if len(args) > 2:
            return text[start : start + int(_numeric(args[2]))]
        return text[start:]
    if name == "REPLACE":
        return re.sub(_string_value(args[1]), _string_value(args[2]), _string_value(args[0]))
    if name == "ABS":
        return abs(_numeric(args[0]))
    if name == "CEIL":
        return math.ceil(_numeric(args[0]))
    if name == "FLOOR":
        return math.floor(_numeric(args[0]))
    if name == "ROUND":
        return round(_numeric(args[0]))
    if name in ("YEAR", "MONTH", "DAY"):
        lexical = _string_value(args[0])
        match = _DATE_RE.match(lexical)
        if match is None:
            if name == "YEAR" and re.match(r"^-?\d{4,}$", lexical):
                return int(lexical)
            raise _ExprError(f"{name}: not a date literal: {lexical!r}")
        index = {"YEAR": 1, "MONTH": 2, "DAY": 3}[name]
        return int(match.group(index))
    raise _ExprError(f"unknown function {name}")


def _distinct_rows(rows: list[Binding]) -> list[Binding]:
    seen: set[tuple] = set()
    unique: list[Binding] = []
    for row in rows:
        key = tuple(sorted((str(k), _group_key(v)) for k, v in row.items()))
        if key not in seen:
            seen.add(key)
            unique.append(row)
    return unique


def query(store: TripleSource, text: str, optimize: bool = True):
    """One-shot convenience wrapper around :class:`QueryEngine`."""
    return QueryEngine(store, optimize=optimize).query(text)
