"""SPARQL-subset query engine.

The WoD's query endpoint language (survey Section 2): parse with
:func:`parse_query`, evaluate with :class:`QueryEngine` or the one-shot
:func:`query` helper against any triple source.

>>> from repro.rdf import Graph, parse_turtle
>>> from repro.sparql import query
>>> g = Graph(parse_turtle('''
...     @prefix foaf: <http://xmlns.com/foaf/0.1/> .
...     <http://ex.org/a> foaf:name "Alice" ; foaf:age 30 .
... '''))
>>> result = query(g, 'SELECT ?name WHERE { ?s foaf:name ?name }')
>>> result.values("name")
['Alice']
"""

from .cached import CachedQueryEngine
from .eval import EvalStats, ExplainNode, QueryEngine, query
from .lexer import SparqlSyntaxError, tokenize
from .nodes import (
    AskQuery,
    ConstructQuery,
    DescribeQuery,
    Query,
    SelectQuery,
)
from .optimizer import (
    CardinalityEstimator,
    choose_bgp_strategy,
    estimate_cardinality,
    order_patterns,
)
from .parser import parse_query
from .plan import optimize_plan, plan_digest, query_digest
from .vectorized import VectorizedBGP, resolve_exec_mode
from .results import (
    SelectResult,
    ask_to_sparql_json,
    parse_sparql_json,
    term_from_json,
    term_to_json,
    to_csv,
    to_sparql_json,
    to_tsv,
)

__all__ = [
    "AskQuery",
    "CachedQueryEngine",
    "CardinalityEstimator",
    "ConstructQuery",
    "DescribeQuery",
    "EvalStats",
    "ExplainNode",
    "Query",
    "QueryEngine",
    "SelectQuery",
    "SelectResult",
    "SparqlSyntaxError",
    "VectorizedBGP",
    "ask_to_sparql_json",
    "choose_bgp_strategy",
    "estimate_cardinality",
    "optimize_plan",
    "order_patterns",
    "parse_query",
    "parse_sparql_json",
    "plan_digest",
    "query",
    "query_digest",
    "resolve_exec_mode",
    "term_from_json",
    "term_to_json",
    "to_csv",
    "to_sparql_json",
    "to_tsv",
    "tokenize",
]
