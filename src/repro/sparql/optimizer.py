"""Selectivity-based join ordering for basic graph patterns.

Section 2 of the survey demands *efficient* evaluation over large datasets
during exploration. For BGPs the dominant cost factor is the order in which
triple patterns are joined: starting from the most selective pattern and
always picking a pattern connected to the variables already bound keeps
intermediate results small (the classic greedy heuristic used by practical
RDF engines).

Cardinalities are estimated by asking the store to count the pattern with
every variable wildcarded — exact for 0/1 bound positions on the indexed
stores, and a good upper bound otherwise.
"""

from __future__ import annotations

from typing import Iterable

from ..rdf.terms import Variable
from ..store.base import TripleSource
from .nodes import TriplePatternNode

__all__ = ["estimate_cardinality", "order_patterns"]


def _to_store_pattern(pattern: TriplePatternNode) -> tuple:
    """Replace variables with wildcards for a store-side count."""
    return tuple(None if isinstance(t, Variable) else t for t in (
        pattern.subject, pattern.predicate, pattern.object
    ))


def estimate_cardinality(store: TripleSource, pattern: TriplePatternNode) -> int:
    """Estimated number of matches for ``pattern`` in ``store``."""
    s, p, o = _to_store_pattern(pattern)
    bound = sum(term is not None for term in (s, p, o))
    if bound == 0:
        return len(store)
    if bound == 3:
        return 1
    return store.count((s, p, o))


def order_patterns(
    store: TripleSource, patterns: Iterable[TriplePatternNode]
) -> list[TriplePatternNode]:
    """Greedy selectivity ordering.

    Pick the cheapest pattern first; thereafter prefer patterns that share a
    variable with the set already chosen (so every join is an index lookup,
    not a cartesian product), breaking ties by estimated cardinality.
    """
    remaining = list(patterns)
    if len(remaining) <= 1:
        return remaining
    costs = {id(p): estimate_cardinality(store, p) for p in remaining}
    ordered: list[TriplePatternNode] = []
    bound_vars: set[Variable] = set()

    while remaining:
        connected = [p for p in remaining if ordered and (p.variables() & bound_vars)]
        candidates = connected or remaining
        best = min(candidates, key=lambda p: (costs[id(p)], _pattern_key(p)))
        ordered.append(best)
        remaining.remove(best)
        bound_vars |= best.variables()
    return ordered


def _pattern_key(pattern: TriplePatternNode) -> str:
    """Deterministic tie-break so plans are stable across runs."""
    return f"{pattern.subject}|{pattern.predicate}|{pattern.object}"
