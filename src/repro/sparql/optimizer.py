"""Cost-based join ordering for basic graph patterns.

Section 2 of the survey demands *efficient* evaluation over large datasets
during exploration. For BGPs the dominant cost factor is the order in which
triple patterns are joined: starting from the most selective pattern and
always picking a pattern connected to the variables already bound keeps
intermediate results small (the classic greedy heuristic used by practical
RDF engines).

:class:`CardinalityEstimator` is the planner's costing oracle. When the
store publishes a :class:`~repro.store.base.StatisticsSnapshot` (triple
count, distinct S/P/O, per-predicate cardinalities) every estimate is
answered from that cached summary — planning touches no index and issues
no store calls. Stores without statistics fall back to live
``store.count`` probes, the pre-statistics behaviour.
"""

from __future__ import annotations

from typing import Iterable

from ..rdf.terms import Variable
from ..store.base import StatisticsSnapshot, StoreStatistics, TripleSource
from .nodes import TriplePatternNode

__all__ = [
    "CardinalityEstimator",
    "CorrectionTable",
    "choose_bgp_strategy",
    "estimate_cardinality",
    "order_patterns",
]


def _to_store_pattern(pattern: TriplePatternNode) -> tuple:
    """Replace variables with wildcards for a store-side count."""
    return tuple(None if isinstance(t, Variable) else t for t in (
        pattern.subject, pattern.predicate, pattern.object
    ))


def estimate_cardinality(store: TripleSource, pattern: TriplePatternNode) -> int:
    """Estimated number of matches for ``pattern`` in ``store`` (live counts).

    Exact for 0 or 3 bound positions — a fully bound pattern matches the
    one triple it names or nothing at all, so the estimate is ``store.count``
    (0 or 1), never a blanket 1.
    """
    s, p, o = _to_store_pattern(pattern)
    bound = sum(term is not None for term in (s, p, o))
    if bound == 0:
        return len(store)
    return store.count((s, p, o))


class CorrectionTable:
    """Learned multipliers for the snapshot's *uniformity* estimates.

    The statistics snapshot answers partially-bound patterns with
    uniformity assumptions (``predicate_total / distinct_objects`` and
    friends), which skewed data breaks by orders of magnitude. The
    workload analyzer (:mod:`repro.obs.workload`) measures that drift from
    the query log's leading-scan observations and condenses it into
    factors keyed by ``(predicate, mask)`` — the predicate's N-Triples
    form (or ``"*"`` for variable predicates) and the pattern's
    bound-position signature (``"vbb"`` = variable subject, bound
    predicate, bound object). The estimator multiplies its uniformity
    guesses by the matching factor; exact answers (0 or 3 bound
    positions, predicate-only) are never corrected — they are not
    estimates.

    Factors are clamped to ``[0.01, 10000]``: a correction should bend a
    bad guess toward observed reality, not replace estimation outright.
    """

    __slots__ = ("_factors",)

    MIN_FACTOR = 0.01
    MAX_FACTOR = 10_000.0
    ANY_PREDICATE = "*"

    def __init__(
        self, factors: dict[tuple[str, str], float] | None = None
    ) -> None:
        self._factors: dict[tuple[str, str], float] = {}
        for key, factor in (factors or {}).items():
            self.set(key[0], key[1], factor)

    @classmethod
    def from_factors(cls, mapping: dict[str, float]) -> "CorrectionTable":
        """Build from the JSON form: ``{"<predicate>|<mask>": factor}`` —
        the shape ``repro.obs.workload`` emits."""
        table = cls()
        for key, factor in mapping.items():
            predicate, _, mask = key.rpartition("|")
            table.set(predicate or cls.ANY_PREDICATE, mask, factor)
        return table

    def set(self, predicate: str | None, mask: str, factor: float) -> None:
        clamped = min(self.MAX_FACTOR, max(self.MIN_FACTOR, float(factor)))
        self._factors[(predicate or self.ANY_PREDICATE, mask)] = clamped

    def factor(self, predicate: str | None, mask: str) -> float:
        """Multiplier for an estimate of ``pattern`` (1.0 = uncorrected).

        A predicate-specific entry wins over the ``"*"`` wildcard.
        """
        specific = self._factors.get((predicate or self.ANY_PREDICATE, mask))
        if specific is not None:
            return specific
        if predicate is not None:
            return self._factors.get((self.ANY_PREDICATE, mask), 1.0)
        return 1.0

    def to_json(self) -> dict[str, float]:
        return {
            f"{predicate}|{mask}": factor
            for (predicate, mask), factor in sorted(self._factors.items())
        }

    def __len__(self) -> int:
        return len(self._factors)

    def __bool__(self) -> bool:
        return bool(self._factors)


def _pattern_mask_of(s: object, p: object, o: object) -> str:
    return "".join("v" if term is None else "b" for term in (s, p, o))


class CardinalityEstimator:
    """Plan-time cardinality estimates for triple patterns.

    Built from a :class:`StatisticsSnapshot` when available (zero store
    access at plan time) or from a live store handle otherwise. Use
    :meth:`for_store` to pick automatically. An optional
    :class:`CorrectionTable` rescales the snapshot's uniformity-based
    guesses with factors learned from observed workload drift.
    """

    __slots__ = ("snapshot", "store", "corrections", "snapshot_estimates",
                 "live_estimates")

    def __init__(
        self,
        snapshot: StatisticsSnapshot | None = None,
        store: TripleSource | None = None,
        corrections: CorrectionTable | None = None,
    ) -> None:
        if snapshot is None and store is None:
            raise ValueError("need a statistics snapshot or a store")
        self.snapshot = snapshot
        self.store = store
        self.corrections = corrections
        # Cache-effectiveness counters: estimates answered from the cached
        # statistics snapshot vs. live store.count probes.
        self.snapshot_estimates = 0
        self.live_estimates = 0

    @classmethod
    def for_store(
        cls,
        store: TripleSource,
        corrections: CorrectionTable | None = None,
    ) -> "CardinalityEstimator":
        if isinstance(store, StoreStatistics):
            return cls(snapshot=store.statistics(), corrections=corrections)
        return cls(store=store, corrections=corrections)

    @property
    def uses_statistics(self) -> bool:
        return self.snapshot is not None

    def total_triples(self) -> float:
        if self.snapshot is not None:
            return float(self.snapshot.triple_count)
        return float(len(self.store))

    @property
    def snapshot_hit_rate(self) -> float:
        """Fraction of estimates served from the statistics snapshot."""
        total = self.snapshot_estimates + self.live_estimates
        return self.snapshot_estimates / total if total else 0.0

    def pattern_cardinality(self, pattern: TriplePatternNode) -> float:
        """Estimated matches for one triple pattern."""
        if self.snapshot is None:
            self.live_estimates += 1
            return float(estimate_cardinality(self.store, pattern))
        self.snapshot_estimates += 1
        s, p, o = _to_store_pattern(pattern)
        stats = self.snapshot
        n = float(stats.triple_count)
        if s is None and p is None and o is None:
            return n
        if s is not None and p is not None and o is not None:
            return 1.0 if n else 0.0
        if p is not None:
            predicate_total = float(stats.predicate_count(p))
            if predicate_total == 0.0:
                return 0.0  # exact: the per-predicate histogram is complete
            if s is None and o is None:
                return predicate_total  # exact too: the histogram value
            # Uniformity guesses — the branches corrections apply to.
            if s is not None:
                estimate = max(
                    1.0, predicate_total / max(stats.distinct_subjects, 1)
                )
            else:
                estimate = max(
                    1.0, predicate_total / max(stats.distinct_objects, 1)
                )
            return self._corrected(estimate, p.n3(), s, p, o)
        if s is not None and o is not None:
            denominator = max(stats.distinct_subjects * stats.distinct_objects, 1)
            return self._corrected(max(1.0, n / denominator), None, s, p, o)
        if s is not None:
            return self._corrected(stats.avg_subject_degree, None, s, p, o)
        return self._corrected(stats.avg_object_degree, None, s, p, o)

    def _corrected(
        self, estimate: float, predicate: str | None,
        s: object, p: object, o: object,
    ) -> float:
        if self.corrections is None:
            return estimate
        factor = self.corrections.factor(predicate, _pattern_mask_of(s, p, o))
        if factor == 1.0:
            return estimate
        return max(1.0, estimate * factor)

    def order(self, patterns: Iterable[TriplePatternNode]) -> list[TriplePatternNode]:
        """Greedy selectivity ordering.

        Pick the cheapest pattern first; thereafter prefer patterns that
        share a variable with the set already chosen (so every join is an
        index lookup, not a cartesian product), breaking ties by estimated
        cardinality, then by a stable textual key.
        """
        remaining = list(patterns)
        if len(remaining) <= 1:
            return remaining
        costs = {id(p): self.pattern_cardinality(p) for p in remaining}
        ordered: list[TriplePatternNode] = []
        bound_vars: set[Variable] = set()

        while remaining:
            connected = [p for p in remaining if ordered and (p.variables() & bound_vars)]
            candidates = connected or remaining
            best = min(candidates, key=lambda p: (costs[id(p)], _pattern_key(p)))
            ordered.append(best)
            remaining.remove(best)
            bound_vars |= best.variables()
        return ordered


def order_patterns(
    store: TripleSource, patterns: Iterable[TriplePatternNode]
) -> list[TriplePatternNode]:
    """Greedy selectivity ordering against a store (statistics preferred)."""
    return CardinalityEstimator.for_store(store).order(patterns)


def _pattern_key(pattern: TriplePatternNode) -> str:
    """Deterministic tie-break so plans are stable across runs."""
    return f"{pattern.subject}|{pattern.predicate}|{pattern.object}"


def _has_cycle(var_sets: list[set[Variable]]) -> bool:
    """Does the variable co-occurrence graph contain a cycle?

    Union-find over variables; an edge whose endpoints are already in the
    same component closes a cycle (triangles and larger cyclic BGPs).
    Parallel edges from duplicate patterns are deduplicated first — a
    repeated pattern is not a cycle.
    """
    edges: set[tuple[Variable, Variable]] = set()
    for variables in var_sets:
        ordered = sorted(variables)
        for left, right in zip(ordered, ordered[1:]):
            edges.add((left, right))
    parent: dict[Variable, Variable] = {}

    def find(node: Variable) -> Variable:
        root = node
        while parent.setdefault(root, root) != root:
            root = parent[root]
        while parent[node] != root:  # path compression
            parent[node], node = root, parent[node]
        return root

    for left, right in sorted(edges):
        root_left, root_right = find(left), find(right)
        if root_left == root_right:
            return True
        parent[root_left] = root_right
    return False


def choose_bgp_strategy(
    patterns: Iterable[TriplePatternNode],
    snapshot: StatisticsSnapshot | None = None,
) -> tuple[str, Variable | None, str]:
    """Pick the vectorized join strategy for one BGP component.

    Returns ``(strategy, center, reason)`` where strategy is one of
    ``"binary"`` (batched index-probe pipeline), ``"wcoj-star"`` (leapfrog
    intersection around a shared center variable) or ``"wcoj-generic"``
    (generic-join recursion for cyclic shapes). The reason string is
    surfaced verbatim in EXPLAIN so plan decisions stay inspectable.

    The star rule: a variable shared by *every* pattern, with at least two
    patterns fully constrained apart from it (those become pure sorted-run
    constraints, so intersection bounds the intermediate result by the
    smallest run — the worst-case-optimal property). When statistics are
    available the smallest constraining predicate's selectivity is recorded
    in the reason, the shape signal EXPLAIN readers care about.
    """
    patterns = list(patterns)
    if len(patterns) <= 1:
        return "binary", None, "single-pattern" if patterns else "empty"
    var_sets = [p.variables() for p in patterns]
    if all(var_sets):
        shared = set.intersection(*var_sets)
        if shared and len(patterns) >= 3:
            center = min(shared)
            constraining = sum(
                1 for variables in var_sets if variables == {center}
            )
            if constraining >= 2:
                reason = f"star center=?{center} constraints={constraining}"
                if snapshot is not None and snapshot.triple_count:
                    cards = [
                        snapshot.predicate_count(p.predicate)
                        for p, variables in zip(patterns, var_sets)
                        if variables == {center}
                        and not isinstance(p.predicate, Variable)
                    ]
                    if cards:
                        selectivity = min(cards) / snapshot.triple_count
                        reason += f" sel={selectivity:.3f}"
                return "wcoj-star", center, reason
    if _has_cycle(var_sets):
        return "wcoj-generic", None, "cyclic"
    return "binary", None, "acyclic"
