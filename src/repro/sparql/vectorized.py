"""Vectorized batch execution of BGPs over dictionary-encoded ids.

The physical layer's second operator family (ROADMAP item 2; "Efficiently
Charting RDF" is the shape: a specialized index + join strategy over
encoded ids is what makes scan+join-heavy exploration queries interactive).
Where the iterator family (:mod:`repro.sparql.physical`) pulls decoded
solution rows one at a time, the operators here execute a whole basic graph
pattern as a pipeline of **id batches** — ``(n,)`` int64 numpy columns per
variable — against any store implementing the
:class:`~repro.store.base.IdScanSource` capability, and decode terms only
at batch boundaries, only for the variables the rest of the plan can
observe (*late materialization*).

Three join strategies, chosen per BGP by
:func:`repro.sparql.optimizer.choose_bgp_strategy` and recorded in EXPLAIN:

* ``binary`` — a batched index-probe pipeline in optimizer order: each
  batch groups rows by the shared variables' ids (``np.unique``), probes
  the store once per distinct key, and expands matches with a ragged
  gather. Chains and acyclic shapes.
* ``wcoj-star`` — leapfrog-style worst-case-optimal join for star BGPs:
  every pattern contributes its *sorted* run of center-variable candidates
  (``distinct_ids``), the runs are intersected smallest-first
  (``np.intersect1d`` over sorted unique arrays — the leapfrog), and only
  the surviving candidates are expanded. Intermediate results never exceed
  the smallest constraint run.
* ``wcoj-generic`` — generic-join recursion for cyclic BGPs (triangles):
  variables are eliminated one at a time, each level intersecting the
  sorted candidate runs of every pattern containing that variable.

Crucially, the streaming pull interface is preserved: a
:class:`VectorizedBGP` *is* a :class:`~repro.sparql.physical
.PhysicalOperator` whose ``execute`` yields decoded ``Binding`` rows, so
LIMIT pushdown, budgets, tracing, prefix sampling, and chunked HTTP
delivery compose unchanged — a ``LIMIT k`` consumer stops pulling and the
scan stops after a bounded number of batches.

``REPRO_EXEC=iterator|vectorized|auto`` (default ``auto``) selects the
engine; ``auto`` uses the vectorized family whenever the store supports id
scans and falls back to iterators otherwise (federation, remote endpoints,
plain graphs).
"""

from __future__ import annotations

from typing import Iterable, Iterator, NamedTuple

import numpy as np

from ..env import read_str
from ..rdf.terms import Variable
from ..store.base import DEFAULT_BATCH_SIZE, IdScanSource
from .expr import Binding, ExprError, ebv, evaluate
from .nodes import Expression, TriplePatternNode
from .physical import EvalStats, PhysicalOperator

__all__ = [
    "EXEC_ENV",
    "EXEC_MODES",
    "VectorScan",
    "VectorizedBGP",
    "resolve_exec_mode",
]

EXEC_ENV = "REPRO_EXEC"
EXEC_MODES = ("iterator", "vectorized", "auto")

_EMPTY_IDS = np.empty(0, dtype=np.int64)
# Existence-probe match stubs: one row / zero rows, no free-variable columns.
_EXISTS = np.empty((1, 0), dtype=np.int64)
_ABSENT = np.empty((0, 0), dtype=np.int64)


def resolve_exec_mode(explicit: str | None = None) -> str:
    """The execution-engine selector, validated.

    ``explicit`` (an engine constructor argument) wins over the
    ``REPRO_EXEC`` environment variable; unset means ``auto``.
    """
    mode = explicit if explicit is not None else read_str(EXEC_ENV)
    mode = mode.strip().lower() or "auto"
    if mode not in EXEC_MODES:
        raise ValueError(
            f"{EXEC_ENV} must be one of {EXEC_MODES}, got {mode!r}"
        )
    return mode


class _Batch(NamedTuple):
    """One unit of columnar intermediate state: aligned id columns."""

    columns: dict[Variable, np.ndarray]
    count: int


class _Resolved(NamedTuple):
    """A triple pattern with the ambient binding substituted in.

    ``ids`` holds a dictionary id per position (``None`` = free);
    ``var_slots`` maps each *distinct* free variable to its first position;
    ``dup_slots`` lists position pairs that must be equal (a variable
    repeated inside one pattern).
    """

    ids: tuple[int | None, int | None, int | None]
    var_slots: tuple[tuple[int, Variable], ...]
    dup_slots: tuple[tuple[int, int], ...]


def _resolve_pattern(
    pattern: TriplePatternNode, binding: Binding, source: IdScanSource
) -> _Resolved | None:
    """Substitute binding + dictionary ids; ``None`` = provably empty."""
    dictionary = source.dictionary
    ids: list[int | None] = []
    var_slots: list[tuple[int, Variable]] = []
    dup_slots: list[tuple[int, int]] = []
    first_seen: dict[Variable, int] = {}
    for position, term in enumerate(
        (pattern.subject, pattern.predicate, pattern.object)
    ):
        if isinstance(term, Variable):
            bound = binding.get(term)
            if bound is not None:
                term_id = dictionary.lookup(bound)
                if term_id is None:
                    return None
                ids.append(term_id)
            elif term in first_seen:
                ids.append(None)
                dup_slots.append((first_seen[term], position))
            else:
                ids.append(None)
                var_slots.append((position, term))
                first_seen[term] = position
        else:
            term_id = dictionary.lookup(term)
            if term_id is None:
                return None
            ids.append(term_id)
    return _Resolved(
        (ids[0], ids[1], ids[2]), tuple(var_slots), tuple(dup_slots)
    )


def _ragged_gather(
    counts: np.ndarray, inverse: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Expand per-key match lists onto per-row output positions.

    Given ``counts[k]`` matches for key ``k`` and ``inverse[i]`` = key of
    input row ``i``, returns ``(row_index, match_index)``: for every output
    row, which input row it extends and which slot of the concatenated
    match arrays it takes. Pure integer arithmetic — no Python loop.
    """
    counts_per_row = counts[inverse]
    total = int(counts_per_row.sum())
    row_index = np.repeat(np.arange(len(inverse)), counts_per_row)
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    starts = np.repeat(offsets[inverse], counts_per_row)
    bases = np.cumsum(counts_per_row) - counts_per_row
    match_index = starts + np.arange(total) - np.repeat(bases, counts_per_row)
    return row_index, match_index


class VectorScan(PhysicalOperator):
    """EXPLAIN/span surface for one id-batch pattern scan.

    Never executed directly: the owning :class:`VectorizedBGP` drives the
    store and accounts rows/batches into this node so EXPLAIN ANALYZE and
    the operator span tree keep one entry per pattern, same as the
    iterator family's ``IndexScan``.
    """

    name = "IdScan"

    def __init__(
        self,
        pattern: TriplePatternNode,
        stats: EvalStats,
        estimate: float | None,
    ) -> None:
        super().__init__(stats, estimate)
        self.pattern = pattern
        self.batches = 0

    def detail(self) -> str:
        rendered = " ".join(
            t.n3()
            for t in (self.pattern.subject, self.pattern.predicate, self.pattern.object)
        )
        if self.batches:
            rendered += f" [{self.batches} batches]"
        return rendered

    def _run(self, binding: Binding) -> Iterator[Binding]:  # pragma: no cover
        raise AssertionError("VectorScan only executes inside a VectorizedBGP")


class VectorizedBGP(PhysicalOperator):
    """One BGP component executed as batched columnar operators over ids.

    Pull-streaming from the outside (``execute`` yields decoded ``Binding``
    rows), columnar on the inside. ``decode_variables`` (when not ``None``)
    is the late-materialization contract: only those variables are decoded
    and kept in output rows — the builder passes the projection-pruned set
    plus whatever the BGP's own filters need, and the output is then
    exactly what ``Prune(BGP)`` would have produced.
    """

    name = "VectorizedBGP"

    def __init__(
        self,
        source: IdScanSource,
        patterns: tuple[TriplePatternNode, ...],
        filters: tuple[Expression, ...],
        decode_variables: frozenset[Variable] | None,
        stats: EvalStats,
        estimate: float | None,
        pattern_estimates: Iterable[float | None],
        strategy: str,
        center: Variable | None,
        reason: str,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        scans = tuple(
            VectorScan(pattern, stats, pattern_estimate)
            for pattern, pattern_estimate in zip(patterns, pattern_estimates)
        )
        super().__init__(stats, estimate, scans)
        self.source = source
        self.patterns = patterns
        self.filters = filters
        self.decode_variables = decode_variables
        self.strategy = strategy
        self.center = center
        self.reason = reason
        self.batch_size = batch_size

    def detail(self) -> str:
        rendered = f"{self.strategy}[{self.reason}]"
        if self.decode_variables is not None:
            decoded = ",".join(sorted(f"?{v}" for v in self.decode_variables))
            rendered += f" decode={decoded or '∅'}"
        return rendered

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #

    def _account_scan(self, scan: VectorScan, rows: int) -> None:
        scan.actual_rows += rows
        scan.batches += 1
        self.stats.record_rows(scan.name, rows)
        self.stats.scan_batches += 1
        self.stats.scan_rows += rows
        self.stats.intermediate_bindings += rows

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def _run(self, binding: Binding) -> Iterator[Binding]:
        resolved: list[_Resolved] = []
        for pattern in self.patterns:
            one = _resolve_pattern(pattern, binding, self.source)
            if one is None:  # a bound term missing from the dictionary
                return
            resolved.append(one)

        strategy = self.strategy
        if strategy == "wcoj-star" and not self._center_free(resolved):
            # The ambient binding ground the center variable out from under
            # the star plan — the probe pipeline handles it naturally.
            strategy = "binary"
        if strategy == "wcoj-star":
            batches = self._star_join(resolved)
        elif strategy == "wcoj-generic":
            batches = self._generic_join(resolved)
        else:
            batches = self._pipeline(resolved)
        yield from self._emit(batches, binding)

    def _center_free(self, resolved: list[_Resolved]) -> bool:
        if self.center is None:
            return False
        return all(
            any(variable == self.center for _, variable in one.var_slots)
            for one in resolved
        )

    # -- scan + probe pipeline (binary strategy) ----------------------------

    def _pipeline(self, resolved: list[_Resolved]) -> Iterator[_Batch]:
        batches = self._scan(0, resolved[0])
        for index in range(1, len(resolved)):
            batches = self._probe(batches, index, resolved[index])
        return batches

    def _scan(self, scan_index: int, one: _Resolved) -> Iterator[_Batch]:
        scan: VectorScan = self.children[scan_index]  # type: ignore[assignment]
        scan.executions += 1
        self.stats.store_lookups += 1
        s, p, o = one.ids
        for raw in self.source.match_id_batches(s, p, o, self.batch_size):
            if one.dup_slots:
                mask = np.ones(len(raw), dtype=bool)
                for left, right in one.dup_slots:
                    mask &= raw[:, left] == raw[:, right]
                raw = raw[mask]
            self._account_scan(scan, len(raw))
            if not len(raw):
                continue
            columns = {
                variable: raw[:, position] for position, variable in one.var_slots
            }
            yield _Batch(columns, len(raw))

    def _probe_matches(
        self,
        probe: list[int | None],
        free: tuple[tuple[int, Variable], ...],
        dup_slots: tuple[tuple[int, int], ...],
    ) -> np.ndarray:
        """Match array for one concrete probe: shape (matches, len(free))."""
        self.stats.store_lookups += 1
        s, p, o = probe
        if not free:
            for raw in self.source.match_id_batches(s, p, o, batch_size=1):
                if len(raw):
                    return _EXISTS
            return _ABSENT
        if len(free) == 1 and not dup_slots:
            run = self.source.distinct_ids(s, p, o, free[0][0])
            return run[:, None]
        rows = [raw for raw in self.source.match_id_batches(s, p, o, self.batch_size)]
        if not rows:
            return np.empty((0, len(free)), dtype=np.int64)
        raw = np.concatenate(rows) if len(rows) > 1 else rows[0]
        if dup_slots:
            mask = np.ones(len(raw), dtype=bool)
            for left, right in dup_slots:
                mask &= raw[:, left] == raw[:, right]
            raw = raw[mask]
        return raw[:, [position for position, _ in free]]

    def _probe(
        self, batches: Iterator[_Batch], scan_index: int, one: _Resolved
    ) -> Iterator[_Batch]:
        """Index-probe join: extend each batch by one pattern's matches."""
        scan: VectorScan = self.children[scan_index]  # type: ignore[assignment]
        shared = tuple(
            (position, variable)
            for position, variable in one.var_slots
            if variable is not None
        )
        for batch in batches:
            scan.executions += 1
            shared_here = [
                (position, variable)
                for position, variable in shared
                if variable in batch.columns
            ]
            free = tuple(
                (position, variable)
                for position, variable in one.var_slots
                if variable not in batch.columns
            )
            if shared_here:
                key_columns = [batch.columns[v] for _, v in shared_here]
                if len(key_columns) == 1:
                    unique_keys, inverse = np.unique(
                        key_columns[0], return_inverse=True
                    )
                    key_rows = unique_keys[:, None]
                else:
                    stacked = np.stack(key_columns, axis=1)
                    key_rows, inverse = np.unique(
                        stacked, axis=0, return_inverse=True
                    )
            else:  # no shared variable: one probe serves the whole batch
                key_rows = np.empty((1, 0), dtype=np.int64)
                inverse = np.zeros(batch.count, dtype=np.int64)

            # Batched-probe fast path: a single shared key and single free
            # variable (the star-expansion shape) can be answered in one
            # store call when the source exposes ``probe_ids``, skipping
            # the per-key Python round trips below.
            if (
                len(shared_here) == 1
                and len(free) == 1
                and not one.dup_slots
                and hasattr(self.source, "probe_ids")
            ):
                s, p, o = one.ids
                try:
                    counts, values = self.source.probe_ids(
                        s, p, o, shared_here[0][0], key_rows[:, 0], free[0][0]
                    )
                except LookupError:
                    # repro: swallow(source lacks probe_ids support;
                    # the generic scan path below handles the probe)
                    pass
                else:
                    self.stats.store_lookups += 1
                    row_index, match_index = _ragged_gather(counts, inverse)
                    total = len(row_index)
                    self._account_scan(scan, total)
                    if not total:
                        continue
                    columns = {
                        variable: column[row_index]
                        for variable, column in batch.columns.items()
                    }
                    columns[free[0][1]] = values[match_index]
                    yield _Batch(columns, total)
                    continue

            match_lists: list[np.ndarray] = []
            for key in key_rows:
                probe = list(one.ids)
                for (position, _), value in zip(shared_here, key):
                    probe[position] = int(value)
                # A repeated variable whose first occurrence just got bound
                # pins its other positions to the same id.
                for left, right in one.dup_slots:
                    if probe[left] is not None and probe[right] is None:
                        probe[right] = probe[left]
                    elif probe[right] is not None and probe[left] is None:
                        probe[left] = probe[right]
                match_lists.append(
                    self._probe_matches(probe, free, one.dup_slots)
                )
            counts = np.array([len(m) for m in match_lists], dtype=np.int64)
            row_index, match_index = _ragged_gather(counts, inverse)
            total = len(row_index)
            self._account_scan(scan, total)
            if not total:
                continue
            columns = {
                variable: column[row_index]
                for variable, column in batch.columns.items()
            }
            if free:
                concatenated = (
                    np.concatenate(match_lists)
                    if len(match_lists) > 1
                    else match_lists[0]
                )
                for slot, (_, variable) in enumerate(free):
                    columns[variable] = concatenated[match_index, slot]
            yield _Batch(columns, total)

    # -- worst-case-optimal joins -------------------------------------------

    def _pattern_run(
        self, one: _Resolved, variable: Variable, bound: dict[Variable, int]
    ) -> np.ndarray:
        """Sorted candidate run for ``variable`` from one pattern.

        The leapfrog primitive: distinct ids at the variable's position
        given every already-eliminated variable substituted; variables not
        yet eliminated act as wildcards.
        """
        probe = list(one.ids)
        target = -1
        for position, slot_variable in one.var_slots:
            if slot_variable == variable:
                target = position
            elif slot_variable in bound:
                probe[position] = bound[slot_variable]
        if target < 0:  # pattern doesn't constrain this variable
            return _EMPTY_IDS
        self.stats.store_lookups += 1
        if one.dup_slots:
            rows = [
                raw
                for raw in self.source.match_id_batches(
                    probe[0], probe[1], probe[2], self.batch_size
                )
            ]
            if not rows:
                return _EMPTY_IDS
            raw = np.concatenate(rows) if len(rows) > 1 else rows[0]
            mask = np.ones(len(raw), dtype=bool)
            for left, right in one.dup_slots:
                mask &= raw[:, left] == raw[:, right]
            return np.unique(raw[mask][:, target])
        return self.source.distinct_ids(probe[0], probe[1], probe[2], target)

    def _star_join(self, resolved: list[_Resolved]) -> Iterator[_Batch]:
        """Intersect constraint-only center runs, then expand survivors.

        Only patterns whose variables are *all* the center contribute runs
        to the intersection: their entire selectivity lives in the run, and
        they never need expanding.  Patterns with extra free variables are
        enforced during expansion anyway (``_probe`` drops candidates with
        zero matches), so including their whole-predicate runs here would
        pay a full distinct-subjects materialization for no extra pruning.
        """
        center = self.center
        assert center is not None
        constrainers = [
            (index, one)
            for index, one in enumerate(resolved)
            if all(variable == center for _, variable in one.var_slots)
        ]
        expanders = [
            (index, one)
            for index, one in enumerate(resolved)
            if any(variable != center for _, variable in one.var_slots)
        ]
        if not constrainers:
            # Runtime demotion paths can strip every constraint-only
            # pattern; the probe pipeline is always safe.
            yield from self._pipeline(resolved)
            return
        runs: list[np.ndarray] = []
        for index, one in constrainers:
            run = self._pattern_run(one, center, {})
            scan: VectorScan = self.children[index]  # type: ignore[assignment]
            scan.executions += 1
            self._account_scan(scan, len(run))
            runs.append(run)
        runs.sort(key=len)
        candidates = runs[0]
        for run in runs[1:]:
            if not len(candidates):
                return
            candidates = np.intersect1d(candidates, run, assume_unique=True)
        if not len(candidates):
            return

        def seed() -> Iterator[_Batch]:
            for start in range(0, len(candidates), self.batch_size):
                chunk = candidates[start : start + self.batch_size]
                yield _Batch({center: chunk}, len(chunk))

        batches: Iterator[_Batch] = seed()
        for index, one in expanders:
            batches = self._probe(batches, index, one)
        return (yield from batches)

    def _generic_join(self, resolved: list[_Resolved]) -> Iterator[_Batch]:
        """Generic-join recursion: eliminate one variable per level."""
        frequency: dict[Variable, int] = {}
        for one in resolved:
            for _, variable in one.var_slots:
                frequency[variable] = frequency.get(variable, 0) + 1
        order = sorted(frequency, key=lambda v: (-frequency[v], str(v)))
        if not order:  # fully ground BGP: every pattern is an existence test
            for index, one in enumerate(resolved):
                if not len(self._probe_matches(list(one.ids), (), one.dup_slots)):
                    return
            yield _Batch({}, 1)
            return

        buffers: dict[Variable, list[int]] = {variable: [] for variable in order}
        buffered = 0

        def flush() -> _Batch:
            batch = _Batch(
                {
                    variable: np.array(values, dtype=np.int64)
                    for variable, values in buffers.items()
                },
                buffered,
            )
            for values in buffers.values():
                values.clear()
            return batch

        def descend(depth: int, bound: dict[Variable, int]) -> Iterator[_Batch]:
            nonlocal buffered
            variable = order[depth]
            runs = sorted(
                (
                    self._pattern_run(one, variable, bound)
                    for one in resolved
                    if any(v == variable for _, v in one.var_slots)
                ),
                key=len,
            )
            candidates = runs[0]
            for run in runs[1:]:
                if not len(candidates):
                    return
                candidates = np.intersect1d(candidates, run, assume_unique=True)
            if depth + 1 == len(order):
                for value in candidates.tolist():
                    for inner, values in buffers.items():
                        values.append(bound[inner] if inner in bound else value)
                    buffered += 1
                    if buffered >= self.batch_size:
                        batch = flush()
                        buffered = 0
                        yield batch
                return
            for value in candidates.tolist():
                bound[variable] = value
                yield from descend(depth + 1, bound)
            bound.pop(variable, None)

        yield from descend(0, {})
        if buffered:
            batch = flush()
            buffered = 0
            self._account_generic(batch.count)
            yield batch

    def _account_generic(self, rows: int) -> None:
        # Generic-join rows don't belong to a single scan; account them on
        # the first child so EXPLAIN still shows produced work.
        if self.children:
            self._account_scan(self.children[0], rows)  # type: ignore[arg-type]

    # -- decode boundary -----------------------------------------------------

    def _emit(
        self, batches: Iterator[_Batch], binding: Binding
    ) -> Iterator[Binding]:
        """Decode id batches into solution rows (the streaming boundary)."""
        dictionary = self.source.dictionary
        keep = self.decode_variables
        for batch in batches:
            decoded: list[tuple[Variable, list, np.ndarray]] = []
            for variable, column in batch.columns.items():
                if keep is not None and variable not in keep:
                    continue
                unique_ids, inverse = np.unique(column, return_inverse=True)
                terms = dictionary.decode_batch(unique_ids)
                decoded.append((variable, terms, inverse))
            for row_no in range(batch.count):
                row: Binding = dict(binding)
                for variable, terms, inverse in decoded:
                    row[variable] = terms[inverse[row_no]]
                ok = True
                for expression in self.filters:
                    try:
                        if not ebv(evaluate(expression, row)):
                            ok = False
                            break
                    except ExprError:
                        # repro: swallow(a FILTER error excludes the
                        # row, per the SPARQL spec)
                        ok = False
                        break
                if not ok:
                    continue
                if keep is not None:
                    row = {
                        variable: term
                        for variable, term in row.items()
                        if variable in keep
                    }
                yield row
