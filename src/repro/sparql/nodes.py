"""Abstract syntax tree for the SPARQL subset.

The survey's Section 2 makes "query or API endpoints for online access" the
defining trait of the modern WoD setting; SPARQL is that endpoint language.
The subset modelled here covers what the surveyed exploration systems
actually issue: SELECT / ASK / CONSTRUCT / DESCRIBE over basic graph
patterns with FILTER, OPTIONAL, UNION, BIND, grouping with the standard
aggregates, DISTINCT, ORDER BY, and LIMIT/OFFSET.

Nodes are plain frozen dataclasses; the parser builds them, the algebra
translator (:mod:`repro.sparql.algebra`) consumes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from ..rdf.terms import IRI, Literal, Variable

__all__ = [
    "TermOrVar",
    "TriplePatternNode",
    "GroupGraphPattern",
    "OptionalPattern",
    "UnionPattern",
    "FilterPattern",
    "BindPattern",
    "ValuesPattern",
    "Expression",
    "VariableExpr",
    "TermExpr",
    "UnaryExpr",
    "BinaryExpr",
    "FunctionCall",
    "AggregateExpr",
    "Projection",
    "OrderCondition",
    "SelectQuery",
    "AskQuery",
    "ConstructQuery",
    "DescribeQuery",
    "Query",
]

TermOrVar = Union[IRI, Literal, Variable, str]  # str covers BNode labels


# --------------------------------------------------------------------------- #
# Expressions
# --------------------------------------------------------------------------- #


class Expression:
    """Marker base class for filter/bind expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class VariableExpr(Expression):
    """A variable reference inside an expression."""

    variable: Variable


@dataclass(frozen=True)
class TermExpr(Expression):
    """A constant RDF term inside an expression."""

    term: IRI | Literal


@dataclass(frozen=True)
class UnaryExpr(Expression):
    """``!expr`` or ``-expr`` or ``+expr``."""

    operator: str
    operand: Expression


@dataclass(frozen=True)
class BinaryExpr(Expression):
    """Binary operator: ``&& || = != < <= > >= + - * /  IN``."""

    operator: str
    left: Expression
    right: Expression


@dataclass(frozen=True)
class FunctionCall(Expression):
    """Built-in call: REGEX, STR, LANG, DATATYPE, BOUND, CONTAINS, ..."""

    name: str
    args: tuple[Expression, ...]


@dataclass(frozen=True)
class AggregateExpr(Expression):
    """COUNT/SUM/AVG/MIN/MAX/SAMPLE/GROUP_CONCAT, optionally DISTINCT.

    ``argument`` is ``None`` for ``COUNT(*)``.
    """

    name: str
    argument: Expression | None
    distinct: bool = False
    separator: str = " "


# --------------------------------------------------------------------------- #
# Graph patterns
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class TriplePatternNode:
    """A triple pattern whose positions may be variables."""

    subject: TermOrVar
    predicate: TermOrVar
    object: TermOrVar

    def variables(self) -> set[Variable]:
        return {t for t in (self.subject, self.predicate, self.object) if isinstance(t, Variable)}


@dataclass(frozen=True)
class OptionalPattern:
    """``OPTIONAL { ... }``"""

    pattern: "GroupGraphPattern"


@dataclass(frozen=True)
class UnionPattern:
    """``{ A } UNION { B } (UNION { C } ...)``"""

    alternatives: tuple["GroupGraphPattern", ...]


@dataclass(frozen=True)
class FilterPattern:
    """``FILTER ( expr )``"""

    expression: Expression


@dataclass(frozen=True)
class BindPattern:
    """``BIND ( expr AS ?var )``"""

    expression: Expression
    variable: Variable


@dataclass(frozen=True)
class ValuesPattern:
    """``VALUES ?x { ... }`` / ``VALUES (?x ?y) { (a b) ... }``.

    ``rows`` holds one term tuple per row; ``None`` marks ``UNDEF``.
    """

    variables: tuple[Variable, ...]
    rows: tuple[tuple[IRI | Literal | None, ...], ...]


GroupElement = Union[
    TriplePatternNode, OptionalPattern, UnionPattern, FilterPattern, BindPattern,
    ValuesPattern, "GroupGraphPattern",
]


@dataclass(frozen=True)
class GroupGraphPattern:
    """``{ ... }`` — an ordered list of pattern elements."""

    elements: tuple[GroupElement, ...] = ()

    def variables(self) -> set[Variable]:
        result: set[Variable] = set()
        for element in self.elements:
            if isinstance(element, TriplePatternNode):
                result |= element.variables()
            elif isinstance(element, OptionalPattern):
                result |= element.pattern.variables()
            elif isinstance(element, UnionPattern):
                for alternative in element.alternatives:
                    result |= alternative.variables()
            elif isinstance(element, BindPattern):
                result.add(element.variable)
            elif isinstance(element, ValuesPattern):
                result |= set(element.variables)
            elif isinstance(element, GroupGraphPattern):
                result |= element.variables()
        return result


# --------------------------------------------------------------------------- #
# Query forms
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Projection:
    """One SELECT item: a plain variable or ``(expr AS ?alias)``."""

    variable: Variable
    expression: Expression | None = None  # None = project the variable itself


@dataclass(frozen=True)
class OrderCondition:
    """One ORDER BY key."""

    expression: Expression
    descending: bool = False


@dataclass(frozen=True)
class SelectQuery:
    projections: tuple[Projection, ...]  # empty tuple = SELECT *
    where: GroupGraphPattern
    distinct: bool = False
    group_by: tuple[Expression, ...] = ()
    having: Expression | None = None
    order_by: tuple[OrderCondition, ...] = ()
    limit: int | None = None
    offset: int = 0
    prefixes: dict[str, str] = field(default_factory=dict, compare=False)

    @property
    def select_all(self) -> bool:
        return not self.projections


@dataclass(frozen=True)
class AskQuery:
    where: GroupGraphPattern
    prefixes: dict[str, str] = field(default_factory=dict, compare=False)


@dataclass(frozen=True)
class ConstructQuery:
    template: tuple[TriplePatternNode, ...]
    where: GroupGraphPattern
    limit: int | None = None
    offset: int = 0
    prefixes: dict[str, str] = field(default_factory=dict, compare=False)


@dataclass(frozen=True)
class DescribeQuery:
    resources: tuple[IRI | Variable, ...]
    where: GroupGraphPattern | None = None
    prefixes: dict[str, str] = field(default_factory=dict, compare=False)


Query = Union[SelectQuery, AskQuery, ConstructQuery, DescribeQuery]
