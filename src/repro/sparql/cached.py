"""Query-result caching (survey §4: "caching ... may be exploited").

Exploration sessions re-issue queries constantly — every back-navigation,
facet deselection, or dashboard refresh repeats earlier work.
:class:`CachedQueryEngine` wraps :class:`~repro.sparql.eval.QueryEngine`
with a bounded :class:`~repro.cache.result_cache.ResultCache` keyed on the
digest of the *optimized logical plan*, with explicit invalidation for when
the store changes. Plan-keying means syntactically different but
plan-equivalent queries (whitespace, prefix renaming, reordered constant
filters) share one cache entry.

A hit returns the cached rows under a *tagged* EXPLAIN tree: the plan's
``cached`` flag is set so its actual cardinalities are recognizably from
the prior (computing) run, not from a fresh execution. Hit/miss traffic is
mirrored into the ``cache.requests`` telemetry counters (:mod:`repro.obs`).
"""

from __future__ import annotations

from dataclasses import replace

from ..cache.result_cache import ResultCache
from ..obs import OBS
from ..store.base import TripleSource
from .eval import QueryEngine
from .results import SelectResult

__all__ = ["CachedQueryEngine"]


class CachedQueryEngine:
    """A QueryEngine with memoized results.

    Only string-form queries are cached (parsed Query objects are assumed
    to be programmatic one-offs). SELECT results are cached as-is — they
    are immutable by convention; callers must not mutate ``rows``.
    """

    def __init__(
        self,
        store: TripleSource,
        capacity: int = 128,
        policy: str = "lru",
        optimize: bool = True,
    ) -> None:
        self.engine = QueryEngine(store, optimize=optimize)
        self.cache = ResultCache(capacity, policy=policy, name="sparql.result")

    def query(self, text: str):
        if not isinstance(text, str):
            return self.engine.query(text)
        key = self.engine.plan_digest(text)
        hit = key in self.cache  # membership check leaves stats untouched
        result = self.cache.get_or_compute(key, lambda: self.engine.query(text))
        if hit:
            result = _tag_cached(result)
        return result

    def invalidate(self) -> None:
        """Drop all cached results (call after mutating the store)."""
        self.cache.clear()
        if OBS.enabled:
            OBS.metrics.counter("cache.invalidations", cache="sparql.result").inc()

    @property
    def hit_rate(self) -> float:
        return self.cache.stats.hit_rate

    @property
    def stats(self):
        return self.cache.stats


def _tag_cached(result):
    """Mark a cache-served result's EXPLAIN tree as coming from a prior run.

    Only the root node is tagged (``render`` annotates the whole tree from
    it). The cached result object itself is left untouched — the caller of
    the run that *computed* the entry must keep seeing an untagged plan —
    so a hit returns a shallow re-wrap sharing rows and stats.
    """
    if not isinstance(result, SelectResult) or result.plan is None:
        return result
    if result.plan.cached:
        return result
    return SelectResult(
        result.variables,
        result.rows,
        stats=result.stats,
        plan=replace(result.plan, cached=True),
    )
