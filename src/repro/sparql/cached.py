"""Query-result caching (survey §4: "caching ... may be exploited").

Exploration sessions re-issue queries constantly — every back-navigation,
facet deselection, or dashboard refresh repeats earlier work.
:class:`CachedQueryEngine` wraps :class:`~repro.sparql.eval.QueryEngine`
with a bounded :class:`~repro.cache.result_cache.ResultCache` keyed on the
digest of the *optimized logical plan*, with explicit invalidation for when
the store changes. Plan-keying means syntactically different but
plan-equivalent queries (whitespace, prefix renaming, reordered constant
filters) share one cache entry.

A hit returns the cached rows under a *tagged* EXPLAIN tree: the plan's
``cached`` flag is set so its actual cardinalities are recognizably from
the prior (computing) run, not from a fresh execution. Hit/miss traffic is
mirrored into the ``cache.requests`` telemetry counters (:mod:`repro.obs`).
"""

from __future__ import annotations

import time
from dataclasses import replace

from ..cache.result_cache import ResultCache
from ..obs import OBS
from ..rdf.graph import Graph
from ..store.base import TripleSource
from .eval import QueryEngine
from .optimizer import CorrectionTable
from .results import SelectResult

__all__ = ["CachedQueryEngine"]


class CachedQueryEngine:
    """A QueryEngine with memoized results.

    Only string-form queries are cached (parsed Query objects are assumed
    to be programmatic one-offs). SELECT results are cached as-is — they
    are immutable by convention; callers must not mutate ``rows``.
    """

    def __init__(
        self,
        store: TripleSource,
        capacity: int = 128,
        policy: str = "lru",
        optimize: bool = True,
        corrections: CorrectionTable | None = None,
    ) -> None:
        self.engine = QueryEngine(
            store, optimize=optimize, corrections=corrections
        )
        self.cache = ResultCache(capacity, policy=policy, name="sparql.result")

    def query(self, text: str):
        if not isinstance(text, str):
            return self.engine.query(text)
        started = time.perf_counter_ns()
        key = self.engine.plan_digest(text)
        hit = key in self.cache  # membership check leaves stats untouched
        result = self.cache.get_or_compute(
            key, lambda: self.engine.query(text, digest=key)
        )
        if hit:
            result = _tag_cached(result)
            # A cache-served query must stay visible to the workload
            # analyzer: log it with cache_hit=true and zeroed scan
            # counters — no store work happened on its behalf.
            log = OBS.querylog
            if log.enabled:
                log.emit_cache_hit(
                    digest=key,
                    form=_cached_form(result),
                    latency_ms=(time.perf_counter_ns() - started) / 1e6,
                    solutions=_cached_solutions(result),
                )
        return result

    def invalidate(self) -> None:
        """Drop all cached results (call after mutating the store)."""
        self.cache.clear()
        if OBS.enabled:
            OBS.metrics.counter("cache.invalidations", cache="sparql.result").inc()

    @property
    def hit_rate(self) -> float:
        return self.cache.stats.hit_rate

    @property
    def stats(self):
        return self.cache.stats


def _tag_cached(result):
    """Mark a cache-served result's EXPLAIN tree as coming from a prior run.

    Only the root node is tagged (``render`` annotates the whole tree from
    it). The cached result object itself is left untouched — the caller of
    the run that *computed* the entry must keep seeing an untagged plan —
    so a hit returns a shallow re-wrap sharing rows and stats.
    """
    if not isinstance(result, SelectResult) or result.plan is None:
        return result
    if result.plan.cached:
        return result
    return SelectResult(
        result.variables,
        result.rows,
        stats=result.stats,
        plan=replace(result.plan, cached=True),
        plan_digest=result.plan_digest,
    )


def _cached_form(result) -> str:
    """Query-log form label of a cache-served result (the result type is
    all a hit has; the query text was never re-parsed)."""
    if isinstance(result, SelectResult):
        return "SELECT"
    if isinstance(result, bool):
        return "ASK"
    if isinstance(result, Graph):
        return "GRAPH"  # CONSTRUCT and DESCRIBE are indistinguishable here
    return "UNKNOWN"


def _cached_solutions(result) -> int:
    if isinstance(result, (SelectResult, Graph)):
        return len(result)
    return int(bool(result)) if isinstance(result, bool) else 0
