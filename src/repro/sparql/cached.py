"""Query-result caching (survey §4: "caching ... may be exploited").

Exploration sessions re-issue queries constantly — every back-navigation,
facet deselection, or dashboard refresh repeats earlier work.
:class:`CachedQueryEngine` wraps :class:`~repro.sparql.eval.QueryEngine`
with a bounded :class:`~repro.cache.result_cache.ResultCache` keyed on the
digest of the *optimized logical plan*, with explicit invalidation for when
the store changes. Plan-keying means syntactically different but
plan-equivalent queries (whitespace, prefix renaming, reordered constant
filters) share one cache entry.
"""

from __future__ import annotations

from ..cache.result_cache import ResultCache
from ..store.base import TripleSource
from .eval import QueryEngine

__all__ = ["CachedQueryEngine"]


class CachedQueryEngine:
    """A QueryEngine with memoized results.

    Only string-form queries are cached (parsed Query objects are assumed
    to be programmatic one-offs). SELECT results are cached as-is — they
    are immutable by convention; callers must not mutate ``rows``.
    """

    def __init__(
        self,
        store: TripleSource,
        capacity: int = 128,
        policy: str = "lru",
        optimize: bool = True,
    ) -> None:
        self.engine = QueryEngine(store, optimize=optimize)
        self.cache = ResultCache(capacity, policy=policy)

    def query(self, text: str):
        if not isinstance(text, str):
            return self.engine.query(text)
        key = self.engine.plan_digest(text)
        return self.cache.get_or_compute(key, lambda: self.engine.query(text))

    def invalidate(self) -> None:
        """Drop all cached results (call after mutating the store)."""
        self.cache.clear()

    @property
    def hit_rate(self) -> float:
        return self.cache.stats.hit_rate

    @property
    def stats(self):
        return self.cache.stats
