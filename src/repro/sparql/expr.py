"""SPARQL expression evaluation (shared by planner and physical operators).

This module holds the value-level semantics of the SPARQL subset: effective
boolean values, numeric coercion, the operator tables, the built-in function
library, and aggregate evaluation. It is deliberately free of any plan or
store dependency so that the logical planner (:mod:`repro.sparql.plan`) can
constant-fold expressions and the physical operators
(:mod:`repro.sparql.physical`) can evaluate them without importing the
engine.
"""

from __future__ import annotations

import math
import re

from ..rdf.terms import BNode, IRI, Literal, Term, Triple, Variable
from .nodes import (
    AggregateExpr,
    BinaryExpr,
    Expression,
    FunctionCall,
    TermExpr,
    TriplePatternNode,
    UnaryExpr,
    VariableExpr,
)

__all__ = [
    "Binding",
    "ExprError",
    "ReversedKey",
    "apply_binary",
    "apply_function",
    "apply_unary",
    "contains_aggregate",
    "ebv",
    "eval_aggregate",
    "eval_group_expr",
    "evaluate",
    "expression_variables",
    "group_key",
    "instantiate",
    "numeric",
    "resolve",
    "string_value",
    "to_term",
    "try_evaluate",
    "unify",
    "values_equal",
]

Binding = dict[Variable, Term]


class ExprError(Exception):
    """SPARQL expression error (type error, unbound variable, ...)."""


class ReversedKey:
    """Inverts comparison for DESC sort keys."""

    __slots__ = ("key",)

    def __init__(self, key: object) -> None:
        self.key = key

    def __lt__(self, other: "ReversedKey") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ReversedKey) and self.key == other.key


# --------------------------------------------------------------------------- #
# Scalar expression evaluation
# --------------------------------------------------------------------------- #


def evaluate(expression: Expression, binding: Binding):
    """Evaluate ``expression`` under ``binding``; raises :class:`ExprError`."""
    if isinstance(expression, VariableExpr):
        value = binding.get(expression.variable)
        if value is None:
            raise ExprError(f"unbound variable ?{expression.variable}")
        return value
    if isinstance(expression, TermExpr):
        return expression.term
    if isinstance(expression, UnaryExpr):
        if expression.operator == "!":
            # '!' needs EBV, not a raw value
            return not ebv(evaluate(expression.operand, binding))
        return apply_unary(expression.operator, evaluate(expression.operand, binding))
    if isinstance(expression, BinaryExpr):
        return apply_binary(
            expression.operator,
            lambda: evaluate(expression.left, binding),
            lambda: evaluate(expression.right, binding),
        )
    if isinstance(expression, FunctionCall):
        if expression.name == "BOUND":
            arg = expression.args[0]
            if not isinstance(arg, VariableExpr):
                raise ExprError("BOUND needs a variable")
            return arg.variable in binding
        if expression.name == "COALESCE":
            for arg in expression.args:
                try:
                    return evaluate(arg, binding)
                except ExprError:
                    # repro: swallow(COALESCE tries the next arg on
                    # error, per the SPARQL spec)
                    continue
            raise ExprError("COALESCE: all arguments errored")
        if expression.name == "IF":
            condition = ebv(evaluate(expression.args[0], binding))
            chosen = expression.args[1] if condition else expression.args[2]
            return evaluate(chosen, binding)
        args = [evaluate(arg, binding) for arg in expression.args]
        return apply_function(expression.name, args)
    if isinstance(expression, AggregateExpr):
        raise ExprError("aggregate outside GROUP BY context")
    raise ExprError(f"unknown expression {expression!r}")


def try_evaluate(expression: Expression | None, binding: Binding):
    """Like :func:`evaluate` but returns ``None`` on error or ``None`` input."""
    if expression is None:
        return None
    try:
        return evaluate(expression, binding)
    except ExprError:
        return None


# --------------------------------------------------------------------------- #
# Grouped (aggregate) evaluation
# --------------------------------------------------------------------------- #


def eval_group_expr(expression: Expression, members: list[Binding], representative: Binding):
    """Evaluate an expression in GROUP BY context (aggregates see the group)."""
    if isinstance(expression, AggregateExpr):
        return eval_aggregate(expression, members)
    if isinstance(expression, BinaryExpr):
        return apply_binary(
            expression.operator,
            lambda: eval_group_expr(expression.left, members, representative),
            lambda: eval_group_expr(expression.right, members, representative),
        )
    if isinstance(expression, UnaryExpr):
        return apply_unary(
            expression.operator,
            eval_group_expr(expression.operand, members, representative),
        )
    if isinstance(expression, FunctionCall):
        args = [eval_group_expr(arg, members, representative) for arg in expression.args]
        return apply_function(expression.name, args)
    return evaluate(expression, representative)


def eval_aggregate(agg: AggregateExpr, members: list[Binding]):
    if agg.name == "COUNT" and agg.argument is None:
        return len(members)
    values = []
    for member in members:
        value = try_evaluate(agg.argument, member)
        if value is not None:
            values.append(value)
    if agg.distinct:
        seen = set()
        unique = []
        for value in values:
            key = group_key(value)
            if key not in seen:
                seen.add(key)
                unique.append(value)
        values = unique
    if agg.name == "COUNT":
        return len(values)
    if agg.name == "SAMPLE":
        if not values:
            raise ExprError("SAMPLE over empty group")
        return values[0]
    if agg.name == "GROUP_CONCAT":
        return agg.separator.join(string_value(v) for v in values)
    numbers = [numeric(v) for v in values]
    if not numbers:
        if agg.name == "SUM":
            return 0
        raise ExprError(f"{agg.name} over empty group")
    if agg.name == "SUM":
        return sum(numbers)
    if agg.name == "AVG":
        return sum(numbers) / len(numbers)
    if agg.name == "MIN":
        return min(numbers)
    if agg.name == "MAX":
        return max(numbers)
    raise ExprError(f"unknown aggregate {agg.name}")


# --------------------------------------------------------------------------- #
# Pattern/binding helpers
# --------------------------------------------------------------------------- #


def resolve(term, binding: Binding):
    if isinstance(term, Variable):
        return binding.get(term, term)
    return term


def unify(lookup: tuple, triple: Triple, binding: Binding) -> Binding | None:
    """Bind the variables of ``lookup`` against a concrete triple."""
    result = binding
    copied = False
    for pattern_term, value in zip(lookup, triple):
        if isinstance(pattern_term, Variable):
            bound = result.get(pattern_term)
            if bound is None:
                if not copied:
                    result = dict(result)
                    copied = True
                result[pattern_term] = value
            elif bound != value:
                return None
    return result if copied else dict(result)


def instantiate(template: TriplePatternNode, binding: Binding) -> Triple | None:
    """Ground a CONSTRUCT template triple, or ``None`` if it stays open."""
    s = resolve(template.subject, binding)
    p = resolve(template.predicate, binding)
    o = resolve(template.object, binding)
    if isinstance(s, Variable) or isinstance(p, Variable) or isinstance(o, Variable):
        return None
    if not isinstance(s, (IRI, BNode)) or not isinstance(p, IRI):
        return None
    if not isinstance(o, (IRI, BNode, Literal)):
        return None
    return Triple(s, p, o)


# --------------------------------------------------------------------------- #
# Expression structure queries (used by the logical planner)
# --------------------------------------------------------------------------- #


def contains_aggregate(expression: Expression) -> bool:
    if isinstance(expression, AggregateExpr):
        return True
    if isinstance(expression, UnaryExpr):
        return contains_aggregate(expression.operand)
    if isinstance(expression, BinaryExpr):
        return contains_aggregate(expression.left) or contains_aggregate(expression.right)
    if isinstance(expression, FunctionCall):
        return any(contains_aggregate(arg) for arg in expression.args)
    return False


def expression_variables(expression: Expression) -> set[Variable]:
    """Every variable mentioned anywhere in ``expression`` (BOUND included)."""
    if isinstance(expression, VariableExpr):
        return {expression.variable}
    if isinstance(expression, UnaryExpr):
        return expression_variables(expression.operand)
    if isinstance(expression, BinaryExpr):
        return expression_variables(expression.left) | expression_variables(expression.right)
    if isinstance(expression, FunctionCall):
        result: set[Variable] = set()
        for arg in expression.args:
            result |= expression_variables(arg)
        return result
    if isinstance(expression, AggregateExpr):
        return expression_variables(expression.argument) if expression.argument else set()
    return set()


# --------------------------------------------------------------------------- #
# Value semantics
# --------------------------------------------------------------------------- #


def ebv(value) -> bool:
    """SPARQL effective boolean value."""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0 and not (isinstance(value, float) and math.isnan(value))
    if isinstance(value, str) and not isinstance(value, (IRI, BNode)):
        return len(value) > 0
    if isinstance(value, Literal):
        native = value.value
        if isinstance(native, bool):
            return native
        if isinstance(native, (int, float)):
            return ebv(native)
        return len(value.lexical) > 0
    raise ExprError(f"no effective boolean value for {value!r}")


def numeric(value) -> float | int:
    if isinstance(value, bool):
        raise ExprError("boolean is not numeric")
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, Literal):
        native = value.value
        if isinstance(native, (int, float)) and not isinstance(native, bool):
            return native
    raise ExprError(f"not a number: {value!r}")


def string_value(value) -> str:
    if isinstance(value, Literal):
        return value.lexical
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return str(value)
    return str(value)


def to_term(value) -> Term:
    if isinstance(value, (IRI, BNode, Literal)):
        return value
    if isinstance(value, bool):
        return Literal(value)
    if isinstance(value, int):
        return Literal(value)
    if isinstance(value, float):
        return Literal(value)
    if isinstance(value, str):
        return Literal(value)
    raise ExprError(f"cannot convert {value!r} to an RDF term")


def group_key(value):
    if isinstance(value, Literal):
        return ("lit", value.lexical, value.datatype, value.lang)
    if isinstance(value, (IRI, BNode)):
        return (type(value).__name__, str(value))
    return ("py", value)


def values_equal(a, b) -> bool:
    try:
        return numeric(a) == numeric(b)
    except ExprError:
        # repro: swallow(non-numeric operands fall through to the
        # term-equality rules below)
        pass
    if isinstance(a, Literal) and isinstance(b, Literal):
        return a == b
    if isinstance(a, Literal) or isinstance(b, Literal):
        lit, other = (a, b) if isinstance(a, Literal) else (b, a)
        if isinstance(other, (IRI, BNode)):
            return False
        if isinstance(other, bool):
            return lit.value is other
        if isinstance(other, str):
            return lit.lang is None and lit.lexical == other
        return False
    # IRI and BNode subclass str, so require matching kinds before comparing.
    if isinstance(a, (IRI, BNode)) or isinstance(b, (IRI, BNode)):
        return type(a) is type(b) and str(a) == str(b)
    return a == b


def compare(op: str, a, b) -> bool:
    if op == "=":
        return values_equal(a, b)
    if op == "!=":
        return not values_equal(a, b)
    try:
        left, right = numeric(a), numeric(b)
    except ExprError:
        left, right = string_value(a), string_value(b)
        if isinstance(a, (IRI, BNode)) != isinstance(b, (IRI, BNode)):
            raise ExprError(f"incomparable values {a!r} and {b!r}") from None
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ExprError(f"unknown comparison {op}")


def apply_unary(op: str, value):
    if op == "!":
        return not ebv(value)
    if op == "-":
        return -numeric(value)
    if op == "+":
        return numeric(value)
    raise ExprError(f"unknown unary operator {op}")


def apply_binary(op: str, left_thunk, right_thunk):
    if op == "&&":
        return ebv(left_thunk()) and ebv(right_thunk())
    if op == "||":
        try:
            if ebv(left_thunk()):
                return True
        except ExprError:
            return ebv(right_thunk()) or _raise(ExprError("|| left errored, right false"))
        return ebv(right_thunk())
    left = left_thunk()
    right = right_thunk()
    if op in ("=", "!=", "<", "<=", ">", ">="):
        return compare(op, left, right)
    if op == "IN":
        if not (isinstance(right, tuple)):
            raise ExprError("IN needs a list")
        return any(values_equal(left, item) for item in right)
    a, b = numeric(left), numeric(right)
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        if b == 0:
            raise ExprError("division by zero")
        return a / b
    raise ExprError(f"unknown operator {op}")


def _raise(exc: Exception):
    raise exc


_DATE_RE = re.compile(r"^(-?\d{4,})-(\d{2})-(\d{2})")


def apply_function(name: str, args: list):
    if name == "_LIST":
        return tuple(args)
    if name == "STR":
        return string_value(args[0]) if not isinstance(args[0], IRI) else str(args[0])
    if name in ("IRI", "URI"):
        return IRI(string_value(args[0]))
    if name == "LANG":
        if isinstance(args[0], Literal):
            return args[0].lang or ""
        raise ExprError("LANG needs a literal")
    if name == "LANGMATCHES":
        tag = string_value(args[0]).lower()
        pattern = string_value(args[1]).lower()
        if pattern == "*":
            return bool(tag)
        return tag == pattern or tag.startswith(pattern + "-")
    if name == "DATATYPE":
        if isinstance(args[0], Literal):
            return IRI(args[0].datatype)
        raise ExprError("DATATYPE needs a literal")
    if name in ("ISIRI", "ISURI"):
        return isinstance(args[0], IRI)
    if name == "ISBLANK":
        return isinstance(args[0], BNode)
    if name == "ISLITERAL":
        return isinstance(args[0], Literal)
    if name == "ISNUMERIC":
        try:
            numeric(args[0])
            return True
        except ExprError:
            return False
    if name == "REGEX":
        flags = re.IGNORECASE if len(args) > 2 and "i" in string_value(args[2]) else 0
        return re.search(string_value(args[1]), string_value(args[0]), flags) is not None
    if name == "STRSTARTS":
        return string_value(args[0]).startswith(string_value(args[1]))
    if name == "STRENDS":
        return string_value(args[0]).endswith(string_value(args[1]))
    if name == "CONTAINS":
        return string_value(args[1]) in string_value(args[0])
    if name == "STRLEN":
        return len(string_value(args[0]))
    if name == "UCASE":
        return string_value(args[0]).upper()
    if name == "LCASE":
        return string_value(args[0]).lower()
    if name == "CONCAT":
        return "".join(string_value(a) for a in args)
    if name == "SUBSTR":
        text = string_value(args[0])
        start = int(numeric(args[1])) - 1  # SPARQL is 1-based
        if len(args) > 2:
            return text[start : start + int(numeric(args[2]))]
        return text[start:]
    if name == "REPLACE":
        return re.sub(string_value(args[1]), string_value(args[2]), string_value(args[0]))
    if name == "ABS":
        return abs(numeric(args[0]))
    if name == "CEIL":
        return math.ceil(numeric(args[0]))
    if name == "FLOOR":
        return math.floor(numeric(args[0]))
    if name == "ROUND":
        return round(numeric(args[0]))
    if name in ("YEAR", "MONTH", "DAY"):
        lexical = string_value(args[0])
        match = _DATE_RE.match(lexical)
        if match is None:
            if name == "YEAR" and re.match(r"^-?\d{4,}$", lexical):
                return int(lexical)
            raise ExprError(f"{name}: not a date literal: {lexical!r}")
        index = {"YEAR": 1, "MONTH": 2, "DAY": 3}[name]
        return int(match.group(index))
    raise ExprError(f"unknown function {name}")


def distinct_rows(rows: list[Binding]) -> list[Binding]:
    seen: set[tuple] = set()
    unique: list[Binding] = []
    for row in rows:
        key = tuple(sorted((str(k), group_key(v)) for k, v in row.items()))
        if key not in seen:
            seen.add(key)
            unique.append(row)
    return unique
