"""Streaming physical operators: the execution stage of the query pipeline.

Every operator is pull-based — ``execute(binding)`` yields solution rows one
at a time, so LIMIT-ed exploratory queries (the dominant shape in the
survey's interactive setting) touch only as much of the store as they need.
Each operator carries its planner *estimate* and counts the rows it
*actually* produced; :meth:`PhysicalOperator.explain` exposes both as an
:class:`ExplainNode` tree, the EXPLAIN/EXPLAIN ANALYZE surface.

Join strategy:

* :class:`NestedLoopJoin` — correlated: the right side re-executes once per
  left row with that row as the ambient binding, so every shared variable
  becomes a bound index lookup.
* :class:`HashJoin` — for variable-disjoint subplans (cartesian components
  of a BGP): the right side is materialized once per distinct ambient
  context instead of once per left row.

:func:`build_plan` lowers a logical plan (:mod:`repro.sparql.plan`) into an
operator tree, ordering BGP patterns with a
:class:`~repro.sparql.optimizer.CardinalityEstimator` and applying
pushed-down filters at the earliest point their variables are covered.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator

from ..obs import Span
from ..rdf.terms import Term, Variable, term_sort_key
from ..store.base import TripleSource, as_id_scan_source
from .expr import (
    Binding,
    ExprError,
    ReversedKey,
    ebv,
    eval_group_expr,
    evaluate,
    expression_variables,
    group_key,
    resolve,
    to_term,
    try_evaluate,
    unify,
)
from .nodes import (
    Expression,
    OrderCondition,
    Projection,
    TriplePatternNode,
    ValuesPattern,
)
from .optimizer import CardinalityEstimator, choose_bgp_strategy
from .plan import (
    LogicalAggregate,
    LogicalBGP,
    LogicalDistinct,
    LogicalExtend,
    LogicalFilter,
    LogicalJoin,
    LogicalLeftJoin,
    LogicalNode,
    LogicalProject,
    LogicalPrune,
    LogicalSlice,
    LogicalSort,
    LogicalUnion,
    LogicalValues,
    _canonical_expression,
    possible_variables,
)

__all__ = [
    "EvalStats",
    "ExplainNode",
    "PhysicalOperator",
    "build_plan",
    "execution_strategy",
    "operator_span",
    "scan_observations",
]


@dataclass
class EvalStats:
    """Execution counters, accumulated per query and mergeable across queries.

    The engine keeps one long-lived instance (totals since construction or
    the last :meth:`reset`) and additionally attaches a fresh per-query
    instance to each :class:`~repro.sparql.results.SelectResult`.

    Contract of :meth:`reset`: all counters return to zero and the
    ``operator_rows`` mapping is emptied *in place* — existing references
    to the stats object (and to ``operator_rows``) stay valid.

    ``tracer`` doubles as the timing switch: when it is not ``None``,
    operators accumulate per-operator wall-clock time (suspension-aware)
    into ``wall_ns``, which EXPLAIN surfaces as ``time=``. The fast path
    when unset is a single attribute check in :meth:`PhysicalOperator.execute`.
    """

    store_lookups: int = 0
    intermediate_bindings: int = 0
    solutions: int = 0
    # Vectorized-engine counters: id batches pulled from stores and id rows
    # they carried. Zero on pure iterator runs, so they also identify which
    # engine actually executed a query.
    scan_batches: int = 0
    scan_rows: int = 0
    operator_rows: dict[str, int] = field(default_factory=dict)
    tracer: object | None = field(default=None, repr=False, compare=False)

    def reset(self) -> None:
        self.store_lookups = 0
        self.intermediate_bindings = 0
        self.solutions = 0
        self.scan_batches = 0
        self.scan_rows = 0
        self.operator_rows.clear()

    def record_rows(self, operator: str, count: int = 1) -> None:
        self.operator_rows[operator] = self.operator_rows.get(operator, 0) + count

    def merge(self, other: "EvalStats") -> None:
        """Fold another stats object (e.g. a per-query one) into this one."""
        self.store_lookups += other.store_lookups
        self.intermediate_bindings += other.intermediate_bindings
        self.solutions += other.solutions
        self.scan_batches += other.scan_batches
        self.scan_rows += other.scan_rows
        for operator, count in other.operator_rows.items():
            self.record_rows(operator, count)


@dataclass(frozen=True)
class ExplainNode:
    """One node of an EXPLAIN (ANALYZE) tree.

    ``wall_ms`` is the operator's inclusive wall-clock time (children
    included), sourced from the span timers; ``None`` when the run was not
    timed. ``cached`` marks a plan served from a digest-keyed cache: its
    actual cardinalities describe the *prior* run, not fresh execution.
    """

    operator: str
    detail: str
    estimated_rows: float | None
    actual_rows: int | None
    children: tuple["ExplainNode", ...] = ()
    wall_ms: float | None = None
    cached: bool = False

    def render(self, indent: int = 0) -> str:
        estimated = (
            "?" if self.estimated_rows is None else f"{self.estimated_rows:.1f}"
        )
        actual = "-" if self.actual_rows is None else str(self.actual_rows)
        detail = f" {self.detail}" if self.detail else ""
        timing = "" if self.wall_ms is None else f" time={self.wall_ms:.3f}ms"
        cached = "  [cached plan: actuals from prior run]" if self.cached else ""
        line = (
            f"{'  ' * indent}{self.operator}{detail}  "
            f"(est={estimated} actual={actual}{timing}){cached}"
        )
        return "\n".join([line] + [c.render(indent + 1) for c in self.children])

    def walk(self) -> Iterator["ExplainNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, operator: str) -> list["ExplainNode"]:
        return [node for node in self.walk() if node.operator == operator]


class PhysicalOperator:
    """Base class: wraps ``_run`` with actual-row accounting.

    When the owning :class:`EvalStats` carries a tracer, execution also
    accumulates inclusive wall-clock time into ``wall_ns``. Timing is
    suspension-aware: a pull-based operator is only charged for the
    segments between being resumed and yielding the next row, never for
    the time its consumer holds the generator suspended.
    """

    name = "Operator"

    def __init__(
        self,
        stats: EvalStats,
        estimate: float | None,
        children: tuple["PhysicalOperator", ...] = (),
    ) -> None:
        self.stats = stats
        self.estimated_rows = estimate
        self.actual_rows = 0
        self.executions = 0
        self.children = children
        self.wall_ns = 0
        self.timed = False

    def execute(self, binding: Binding) -> Iterator[Binding]:
        self.executions += 1
        if self.stats.tracer is None:  # the disabled-telemetry fast path
            for row in self._run(binding):
                self.actual_rows += 1
                self.stats.record_rows(self.name)
                yield row
            return
        self.timed = True
        clock = time.perf_counter_ns
        started = clock()
        for row in self._run(binding):
            self.wall_ns += clock() - started
            self.actual_rows += 1
            self.stats.record_rows(self.name)
            yield row
            started = clock()
        self.wall_ns += clock() - started

    def _run(self, binding: Binding) -> Iterator[Binding]:  # pragma: no cover
        raise NotImplementedError

    def detail(self) -> str:
        return ""

    def explain(self) -> ExplainNode:
        return ExplainNode(
            self.name,
            self.detail(),
            self.estimated_rows,
            self.actual_rows if self.executions else None,
            tuple(child.explain() for child in self.children),
            wall_ms=self.wall_ns / 1e6 if self.timed else None,
        )


class Singleton(PhysicalOperator):
    """The empty BGP: one solution, the ambient binding itself."""

    name = "Singleton"

    def _run(self, binding: Binding) -> Iterator[Binding]:
        yield dict(binding)


class IndexScan(PhysicalOperator):
    """One triple-pattern lookup against the store, unified into bindings."""

    name = "IndexScan"

    def __init__(
        self,
        store: TripleSource,
        pattern: TriplePatternNode,
        stats: EvalStats,
        estimate: float | None,
    ) -> None:
        super().__init__(stats, estimate)
        self.store = store
        self.pattern = pattern

    def _run(self, binding: Binding) -> Iterator[Binding]:
        lookup = tuple(
            resolve(term, binding)
            for term in (self.pattern.subject, self.pattern.predicate, self.pattern.object)
        )
        store_pattern = tuple(None if isinstance(t, Variable) else t for t in lookup)
        self.stats.store_lookups += 1
        for triple in self.store.triples(store_pattern):
            extended = unify(lookup, triple, binding)
            if extended is not None:
                self.stats.intermediate_bindings += 1
                yield extended

    def detail(self) -> str:
        return " ".join(
            t.n3() for t in (self.pattern.subject, self.pattern.predicate, self.pattern.object)
        )


class NestedLoopJoin(PhysicalOperator):
    """Correlated join: right side re-executes under each left row."""

    name = "NestedLoopJoin"

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        stats: EvalStats,
        estimate: float | None,
    ) -> None:
        super().__init__(stats, estimate, (left, right))
        self.left = left
        self.right = right

    def _run(self, binding: Binding) -> Iterator[Binding]:
        for left_row in self.left.execute(binding):
            yield from self.right.execute(left_row)


class HashJoin(PhysicalOperator):
    """Join of variable-disjoint subplans: materialize right once, reuse.

    The right side only depends on the ambient binding through
    ``right_variables`` (the variables its patterns mention), so its rows
    are cached per distinct restriction of the binding to those variables.
    The right side executes with exactly that restriction, never the full
    ambient row, so cached rows can be merged under any compatible context.
    """

    name = "HashJoin"

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        right_variables: frozenset[Variable],
        stats: EvalStats,
        estimate: float | None,
    ) -> None:
        super().__init__(stats, estimate, (left, right))
        self.left = left
        self.right = right
        self.right_variables = right_variables
        self._materialized: dict[tuple, list[Binding]] = {}

    def _right_rows(self, binding: Binding) -> list[Binding]:
        restricted = {v: binding[v] for v in self.right_variables if v in binding}
        key = tuple(sorted((str(v), group_key(t)) for v, t in restricted.items()))
        rows = self._materialized.get(key)
        if rows is None:
            rows = list(self.right.execute(restricted))
            self._materialized[key] = rows
        return rows

    def _run(self, binding: Binding) -> Iterator[Binding]:
        right_rows = self._right_rows(binding)
        if not right_rows:
            return
        for left_row in self.left.execute(binding):
            for right_row in right_rows:
                merged = dict(left_row)
                compatible = True
                for variable, term in right_row.items():
                    bound = merged.get(variable)
                    if bound is None:
                        merged[variable] = term
                    elif bound != term:
                        compatible = False
                        break
                if compatible:
                    yield merged

    def detail(self) -> str:
        return "disjoint" if not self.right_variables else ""


class LeftJoinOp(PhysicalOperator):
    """OPTIONAL: left rows extended by the right side when it matches."""

    name = "LeftJoin"

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        stats: EvalStats,
        estimate: float | None,
    ) -> None:
        super().__init__(stats, estimate, (left, right))
        self.left = left
        self.right = right

    def _run(self, binding: Binding) -> Iterator[Binding]:
        for left_row in self.left.execute(binding):
            matched = False
            for joined in self.right.execute(left_row):
                matched = True
                yield joined
            if not matched:
                yield left_row


class UnionOp(PhysicalOperator):
    name = "Union"

    def __init__(
        self,
        branches: tuple[PhysicalOperator, ...],
        stats: EvalStats,
        estimate: float | None,
    ) -> None:
        super().__init__(stats, estimate, branches)

    def _run(self, binding: Binding) -> Iterator[Binding]:
        for branch in self.children:
            yield from branch.execute(binding)


class ValuesOp(PhysicalOperator):
    name = "Values"

    def __init__(
        self, pattern: ValuesPattern, stats: EvalStats, estimate: float | None
    ) -> None:
        super().__init__(stats, estimate)
        self.pattern = pattern

    def _run(self, binding: Binding) -> Iterator[Binding]:
        for row in self.pattern.rows:
            extended = dict(binding)
            compatible = True
            for variable, term in zip(self.pattern.variables, row):
                if term is None:  # UNDEF constrains nothing
                    continue
                bound = extended.get(variable)
                if bound is None:
                    extended[variable] = term
                elif bound != term:
                    compatible = False
                    break
            if compatible:
                yield extended

    def detail(self) -> str:
        return f"{len(self.pattern.rows)} rows"


class FilterOp(PhysicalOperator):
    """Drops rows whose expression errors or is not effectively true."""

    name = "Filter"

    def __init__(
        self,
        child: PhysicalOperator,
        expression: Expression,
        stats: EvalStats,
        estimate: float | None,
    ) -> None:
        super().__init__(stats, estimate, (child,))
        self.child = child
        self.expression = expression

    def _run(self, binding: Binding) -> Iterator[Binding]:
        for row in self.child.execute(binding):
            try:
                if ebv(evaluate(self.expression, row)):
                    yield row
            except ExprError:
                # repro: swallow(a FILTER error excludes the row,
                # per the SPARQL spec)
                continue

    def detail(self) -> str:
        return _canonical_expression(self.expression)


class ExtendOp(PhysicalOperator):
    """BIND: evaluation errors leave the row unchanged, rebinding drops it."""

    name = "Extend"

    def __init__(
        self,
        child: PhysicalOperator,
        variable: Variable,
        expression: Expression,
        stats: EvalStats,
        estimate: float | None,
    ) -> None:
        super().__init__(stats, estimate, (child,))
        self.child = child
        self.variable = variable
        self.expression = expression

    def _run(self, binding: Binding) -> Iterator[Binding]:
        for row in self.child.execute(binding):
            try:
                value = to_term(evaluate(self.expression, row))
            except ExprError:
                yield row
                continue
            if self.variable in row:
                continue  # BIND on a bound variable: no solution
            extended = dict(row)
            extended[self.variable] = value
            yield extended

    def detail(self) -> str:
        return f"?{self.variable} := {_canonical_expression(self.expression)}"


class ProjectOp(PhysicalOperator):
    name = "Project"

    def __init__(
        self,
        child: PhysicalOperator,
        projections: tuple[Projection, ...],
        select_all: bool,
        stats: EvalStats,
        estimate: float | None,
    ) -> None:
        super().__init__(stats, estimate, (child,))
        self.child = child
        self.projections = projections
        self.select_all = select_all

    def _run(self, binding: Binding) -> Iterator[Binding]:
        for row in self.child.execute(binding):
            if self.select_all:
                yield dict(row)
                continue
            projected: Binding = {}
            for projection in self.projections:
                if projection.expression is None:
                    value: Term | None = row.get(projection.variable)
                else:
                    try:
                        value = to_term(evaluate(projection.expression, row))
                    except ExprError:
                        # repro: swallow(an erroring SELECT expression
                        # leaves the variable unbound, per the spec)
                        value = None
                if value is not None:
                    projected[projection.variable] = value
            yield projected

    def detail(self) -> str:
        if self.select_all:
            return "*"
        return ", ".join(f"?{p.variable}" for p in self.projections)


class PruneOp(PhysicalOperator):
    """Projection pruning: trim rows to the observable variables."""

    name = "Prune"

    def __init__(
        self,
        child: PhysicalOperator,
        variables: frozenset[Variable],
        stats: EvalStats,
        estimate: float | None,
    ) -> None:
        super().__init__(stats, estimate, (child,))
        self.child = child
        self.variables = variables

    def _run(self, binding: Binding) -> Iterator[Binding]:
        for row in self.child.execute(binding):
            yield {v: t for v, t in row.items() if v in self.variables}

    def detail(self) -> str:
        return ", ".join(sorted(f"?{v}" for v in self.variables))


class SortOp(PhysicalOperator):
    """Blocking: materializes its input, sorts by the ORDER BY keys."""

    name = "Sort"

    def __init__(
        self,
        child: PhysicalOperator,
        conditions: tuple[OrderCondition, ...],
        stats: EvalStats,
        estimate: float | None,
    ) -> None:
        super().__init__(stats, estimate, (child,))
        self.child = child
        self.conditions = conditions

    def _run(self, binding: Binding) -> Iterator[Binding]:
        def key(row: Binding):
            parts = []
            for condition in self.conditions:
                try:
                    value = evaluate(condition.expression, row)
                except ExprError:
                    parts.append((0,))  # unbound sorts first
                    continue
                sort_key = term_sort_key(to_term(value))
                parts.append(ReversedKey(sort_key) if condition.descending else sort_key)
            return tuple(parts)

        yield from sorted(self.child.execute(binding), key=key)

    def detail(self) -> str:
        return ", ".join(
            ("DESC " if c.descending else "") + _canonical_expression(c.expression)
            for c in self.conditions
        )


class DistinctOp(PhysicalOperator):
    """Streaming dedup, first occurrence wins (keeps sorted order intact)."""

    name = "Distinct"

    def __init__(
        self, child: PhysicalOperator, stats: EvalStats, estimate: float | None
    ) -> None:
        super().__init__(stats, estimate, (child,))
        self.child = child

    def _run(self, binding: Binding) -> Iterator[Binding]:
        seen: set[tuple] = set()
        for row in self.child.execute(binding):
            key = tuple(sorted((str(k), group_key(v)) for k, v in row.items()))
            if key not in seen:
                seen.add(key)
                yield row


class SliceOp(PhysicalOperator):
    """OFFSET/LIMIT window; stops pulling as soon as the window is full."""

    name = "Slice"

    def __init__(
        self,
        child: PhysicalOperator,
        limit: int | None,
        offset: int,
        stats: EvalStats,
        estimate: float | None,
    ) -> None:
        super().__init__(stats, estimate, (child,))
        self.child = child
        self.limit = limit
        self.offset = offset

    def _run(self, binding: Binding) -> Iterator[Binding]:
        if self.limit == 0:
            return
        produced = 0
        skipped = 0
        for row in self.child.execute(binding):
            if skipped < self.offset:
                skipped += 1
                continue
            yield row
            produced += 1
            if self.limit is not None and produced >= self.limit:
                return

    def detail(self) -> str:
        parts = []
        if self.limit is not None:
            parts.append(f"limit={self.limit}")
        if self.offset:
            parts.append(f"offset={self.offset}")
        return " ".join(parts)


class AggregateOp(PhysicalOperator):
    """Blocking: GROUP BY / aggregate projection / HAVING."""

    name = "Aggregate"

    def __init__(
        self,
        child: PhysicalOperator,
        projections: tuple[Projection, ...],
        group_by: tuple[Expression, ...],
        having: Expression | None,
        stats: EvalStats,
        estimate: float | None,
    ) -> None:
        super().__init__(stats, estimate, (child,))
        self.child = child
        self.projections = projections
        self.group_by = group_by
        self.having = having

    def _run(self, binding: Binding) -> Iterator[Binding]:
        solutions = list(self.child.execute(binding))
        groups: dict[tuple, list[Binding]] = {}
        if self.group_by:
            for solution in solutions:
                key = tuple(
                    group_key(try_evaluate(expr, solution)) for expr in self.group_by
                )
                groups.setdefault(key, []).append(solution)
        else:
            groups[()] = solutions  # implicit single group (may be empty)

        for _, members in sorted(groups.items(), key=lambda kv: str(kv[0])):
            representative = members[0] if members else {}
            row: Binding = {}
            for projection in self.projections:
                if projection.expression is None:
                    value = representative.get(projection.variable)
                else:
                    try:
                        value = to_term(
                            eval_group_expr(projection.expression, members, representative)
                        )
                    except ExprError:
                        # repro: swallow(an erroring group projection
                        # leaves the variable unbound, per the spec)
                        value = None
                if value is not None:
                    row[projection.variable] = value
            if self.having is not None:
                try:
                    if not ebv(eval_group_expr(self.having, members, representative)):
                        continue
                except ExprError:
                    # repro: swallow(a HAVING error excludes the
                    # group, per the SPARQL spec)
                    continue
            yield row

    def detail(self) -> str:
        if not self.group_by:
            return "implicit group"
        return "group by " + ", ".join(
            _canonical_expression(e) for e in self.group_by
        )


def operator_span(op: PhysicalOperator) -> Span:
    """Build the span tree of one executed operator tree.

    Spans are assembled post-hoc from the operators' accumulated timers
    (one span per operator, nested like the plan), so the engine can hang
    the whole execution under its ``sparql.query`` span without paying a
    per-row tracing cost during execution.
    """
    span = Span.manual(
        f"op.{op.name}",
        op.wall_ns,
        detail=op.detail(),
        actual_rows=op.actual_rows,
        estimated_rows=op.estimated_rows,
        executions=op.executions,
    )
    for child in op.children:
        span.add_child(operator_span(child))
    return span


# --------------------------------------------------------------------------- #
# Logical → physical lowering
# --------------------------------------------------------------------------- #


def build_plan(
    node: LogicalNode,
    store: TripleSource,
    stats: EvalStats,
    estimator: CardinalityEstimator | None = None,
    optimize: bool = True,
    exec_mode: str | None = None,
) -> PhysicalOperator:
    """Lower a logical plan into an executable operator tree.

    ``estimator`` drives both greedy BGP ordering and the per-operator
    ``estimated_rows`` annotations; pass ``None`` to skip estimation
    entirely (no store access, no estimates in EXPLAIN).
    ``optimize=False`` keeps BGP patterns in textual order and joins them
    with plain nested loops — the baseline the C10 benchmark compares
    against.

    ``exec_mode`` selects the operator family for BGPs: ``"iterator"``
    forces the streaming iterator operators, ``"vectorized"``/``"auto"``
    lower BGP components onto :class:`~repro.sparql.vectorized
    .VectorizedBGP` when the store supports id scans (and fall back to
    iterators when it doesn't — federation, remote endpoints, plain
    graphs). ``None`` reads ``REPRO_EXEC`` (default ``auto``). Vectorized
    lowering additionally requires ``optimize=True``: the unoptimized
    baseline keeps textual-order iterator semantics.
    """
    builder = _Builder(store, stats, estimator, optimize, exec_mode)
    return builder.build(node)


class _Builder:
    def __init__(
        self,
        store: TripleSource,
        stats: EvalStats,
        estimator: CardinalityEstimator | None,
        optimize: bool,
        exec_mode: str | None = None,
    ) -> None:
        from .vectorized import resolve_exec_mode

        self.store = store
        self.stats = stats
        self.estimator = estimator
        self.optimize = optimize
        self._total = estimator.total_triples() if estimator is not None else None
        mode = resolve_exec_mode(exec_mode)
        self._id_source = (
            as_id_scan_source(store) if mode != "iterator" and optimize else None
        )
        self._vectorize = self._id_source is not None

    # -- estimate arithmetic (None-propagating) ----------------------------

    def _join_estimate(
        self, left: float | None, right: float | None, shared: bool
    ) -> float | None:
        if left is None or right is None:
            return None
        product = left * right
        if shared and self._total:
            return product / self._total
        return product

    @staticmethod
    def _filter_estimate(child: float | None) -> float | None:
        if child is None:
            return None
        return child / 3.0

    # -- dispatch -----------------------------------------------------------

    def build(self, node: LogicalNode) -> PhysicalOperator:
        if isinstance(node, LogicalBGP):
            return self._build_bgp(node)
        if isinstance(node, LogicalJoin):
            left = self.build(node.left)
            right = self.build(node.right)
            shared = bool(
                possible_variables(node.left) & possible_variables(node.right)
            )
            estimate = self._join_estimate(
                left.estimated_rows, right.estimated_rows, shared
            )
            return NestedLoopJoin(left, right, self.stats, estimate)
        if isinstance(node, LogicalLeftJoin):
            left = self.build(node.left)
            right = self.build(node.right)
            estimate = self._join_estimate(left.estimated_rows, right.estimated_rows, True)
            if estimate is not None and left.estimated_rows is not None:
                estimate = max(estimate, left.estimated_rows)
            return LeftJoinOp(left, right, self.stats, estimate)
        if isinstance(node, LogicalUnion):
            branches = tuple(self.build(b) for b in node.branches)
            estimates = [b.estimated_rows for b in branches]
            estimate = None if any(e is None for e in estimates) else sum(estimates)
            return UnionOp(branches, self.stats, estimate)
        if isinstance(node, LogicalFilter):
            child = self.build(node.input)
            return FilterOp(
                child,
                node.expression,
                self.stats,
                self._filter_estimate(child.estimated_rows),
            )
        if isinstance(node, LogicalExtend):
            child = self.build(node.input)
            return ExtendOp(
                child, node.variable, node.expression, self.stats, child.estimated_rows
            )
        if isinstance(node, LogicalValues):
            estimate = float(len(node.pattern.rows)) if self.estimator else None
            return ValuesOp(node.pattern, self.stats, estimate)
        if isinstance(node, LogicalProject):
            child = self.build(node.input)
            return ProjectOp(
                child, node.projections, node.select_all, self.stats, child.estimated_rows
            )
        if isinstance(node, LogicalPrune):
            if self._vectorize and isinstance(node.input, LogicalBGP):
                # Late materialization: push the projection-pruned variable
                # set into the BGP so only observable ids get decoded. The
                # lowering returns rows already restricted to the pruned
                # set (plus nothing else), so no PruneOp is needed unless
                # filters forced extra variables into the rows.
                return self._build_bgp(
                    node.input, needed=frozenset(node.variables)
                )
            child = self.build(node.input)
            return PruneOp(child, node.variables, self.stats, child.estimated_rows)
        if isinstance(node, LogicalAggregate):
            child = self.build(node.input)
            estimate = child.estimated_rows
            if not node.group_by:
                estimate = 1.0 if self.estimator else None
            return AggregateOp(
                child, node.projections, node.group_by, node.having, self.stats, estimate
            )
        if isinstance(node, LogicalDistinct):
            child = self.build(node.input)
            return DistinctOp(child, self.stats, child.estimated_rows)
        if isinstance(node, LogicalSort):
            child = self.build(node.input)
            return SortOp(child, node.conditions, self.stats, child.estimated_rows)
        if isinstance(node, LogicalSlice):
            child = self.build(node.input)
            estimate = child.estimated_rows
            if estimate is not None:
                estimate = max(0.0, estimate - node.offset)
                if node.limit is not None:
                    estimate = min(estimate, float(node.limit))
            return SliceOp(child, node.limit, node.offset, self.stats, estimate)
        raise TypeError(f"unknown logical node: {node!r}")

    # -- BGP lowering --------------------------------------------------------

    def _build_bgp(
        self, node: LogicalBGP, needed: frozenset[Variable] | None = None
    ) -> PhysicalOperator:
        if not node.patterns:
            op: PhysicalOperator = Singleton(self.stats, 1.0 if self.estimator else None)
            for expression in node.filters:
                op = FilterOp(
                    op, expression, self.stats, self._filter_estimate(op.estimated_rows)
                )
            return op

        if self.optimize and self.estimator is not None:
            ordered = self.estimator.order(node.patterns)
        else:
            ordered = list(node.patterns)

        if self._vectorize:
            return self._build_vectorized_bgp(node, ordered, needed)

        remaining = list(node.filters)

        def absorb(op: PhysicalOperator, covered: set[Variable]) -> PhysicalOperator:
            still = []
            for expression in remaining:
                if expression_variables(expression) <= covered:
                    op = FilterOp(
                        op,
                        expression,
                        self.stats,
                        self._filter_estimate(op.estimated_rows),
                    )
                else:
                    still.append(expression)
            remaining[:] = still
            return op

        if self.optimize:
            components = self._segment(ordered)
        else:
            components = [ordered]

        combined: PhysicalOperator | None = None
        covered: set[Variable] = set()
        for component in components:
            component_vars: set[Variable] = set()
            chain: PhysicalOperator | None = None
            for pattern in component:
                estimate = (
                    self.estimator.pattern_cardinality(pattern)
                    if self.estimator is not None
                    else None
                )
                scan = IndexScan(self.store, pattern, self.stats, estimate)
                if chain is None:
                    chain = scan
                else:
                    chain = NestedLoopJoin(
                        chain,
                        scan,
                        self.stats,
                        self._join_estimate(chain.estimated_rows, estimate, True),
                    )
                component_vars |= pattern.variables()
                # Filters confined to this component apply mid-chain, as
                # early as their variables are covered.
                chain = absorb(chain, component_vars)
            if combined is None:
                combined = chain
            else:
                combined = HashJoin(
                    combined,
                    chain,
                    frozenset(component_vars),
                    self.stats,
                    self._join_estimate(
                        combined.estimated_rows, chain.estimated_rows, False
                    ),
                )
            covered |= component_vars
            if combined is not None and len(components) > 1:
                # Cross-component filters attach above the join that first
                # covers their variables.
                combined = absorb(combined, covered)

        assert combined is not None
        for expression in remaining:  # safety net: apply anything left on top
            combined = FilterOp(
                combined,
                expression,
                self.stats,
                self._filter_estimate(combined.estimated_rows),
            )
        return combined

    def _build_vectorized_bgp(
        self,
        node: LogicalBGP,
        ordered: list[TriplePatternNode],
        needed: frozenset[Variable] | None,
    ) -> PhysicalOperator:
        """Lower BGP components onto the batched id-scan operator family.

        Each variable-disjoint component becomes one
        :class:`~repro.sparql.vectorized.VectorizedBGP` (strategy chosen
        per component from the statistics snapshot); components still
        compose with :class:`HashJoin`, and filters spanning components
        attach above the join that first covers their variables — the same
        placement discipline as the iterator lowering. ``needed`` is the
        late-materialization contract from an enclosing projection prune:
        only those variables (plus what filters read) get decoded.
        """
        from .vectorized import VectorizedBGP

        components = self._segment(ordered)
        snapshot = self.estimator.snapshot if self.estimator is not None else None
        filter_vars: set[Variable] = set()
        for expression in node.filters:
            filter_vars |= expression_variables(expression)

        remaining = list(node.filters)
        combined: PhysicalOperator | None = None
        covered: set[Variable] = set()
        decoded_total: set[Variable] = set()
        for component in components:
            component_vars: set[Variable] = set()
            for pattern in component:
                component_vars |= pattern.variables()
            local = [
                expression
                for expression in remaining
                if expression_variables(expression) <= component_vars
            ]
            remaining = [e for e in remaining if not any(e is l for l in local)]

            pattern_estimates = [
                self.estimator.pattern_cardinality(pattern)
                if self.estimator is not None
                else None
                for pattern in component
            ]
            estimate: float | None = None
            for index, pattern_estimate in enumerate(pattern_estimates):
                if index == 0:
                    estimate = pattern_estimate
                else:
                    estimate = self._join_estimate(estimate, pattern_estimate, True)
            for _ in local:
                estimate = self._filter_estimate(estimate)

            if needed is None:
                keep: frozenset[Variable] | None = None
                decoded_total |= component_vars
            else:
                keep = frozenset((needed | filter_vars) & component_vars)
                decoded_total |= keep
            strategy, center, reason = choose_bgp_strategy(component, snapshot)
            op: PhysicalOperator = VectorizedBGP(
                self._id_source,
                tuple(component),
                tuple(local),
                keep,
                self.stats,
                estimate,
                pattern_estimates,
                strategy,
                center,
                reason,
            )

            if combined is None:
                combined = op
            else:
                combined = HashJoin(
                    combined,
                    op,
                    frozenset(component_vars),
                    self.stats,
                    self._join_estimate(
                        combined.estimated_rows, op.estimated_rows, False
                    ),
                )
            covered |= component_vars
            if len(components) > 1:
                still = []
                for expression in remaining:
                    if expression_variables(expression) <= covered:
                        combined = FilterOp(
                            combined,
                            expression,
                            self.stats,
                            self._filter_estimate(combined.estimated_rows),
                        )
                    else:
                        still.append(expression)
                remaining = still

        assert combined is not None
        for expression in remaining:  # safety net, as in the iterator path
            combined = FilterOp(
                combined,
                expression,
                self.stats,
                self._filter_estimate(combined.estimated_rows),
            )
        if needed is not None and decoded_total - needed:
            # Filters forced extra variables to be decoded; restore exact
            # Prune(BGP) output on top.
            combined = PruneOp(
                combined, needed, self.stats, combined.estimated_rows
            )
        return combined

    @staticmethod
    def _segment(ordered: list[TriplePatternNode]) -> list[list[TriplePatternNode]]:
        """Split greedily ordered patterns into variable-disjoint components.

        The greedy ordering always prefers connected patterns, so a pattern
        sharing no variable with everything chosen so far starts a component
        that stays disjoint from all earlier ones.
        """
        components: list[list[TriplePatternNode]] = []
        seen_vars: set[Variable] = set()
        for pattern in ordered:
            pattern_vars = pattern.variables()
            if not components or (pattern_vars and not (pattern_vars & seen_vars)):
                components.append([pattern])
            else:
                components[-1].append(pattern)
            seen_vars |= pattern_vars
        return components


def _pattern_mask(pattern: TriplePatternNode) -> str:
    """Bound-position signature of a pattern: ``b``/``v`` per S/P/O slot —
    the key the planner estimated the pattern under."""
    return "".join(
        "v" if isinstance(term, Variable) else "b"
        for term in (pattern.subject, pattern.predicate, pattern.object)
    )


def _pattern_predicate(pattern: TriplePatternNode) -> str | None:
    predicate = pattern.predicate
    return None if isinstance(predicate, Variable) else predicate.n3()


def scan_observations(root: PhysicalOperator | None) -> list[dict]:
    """Estimated-vs-actual cardinality per pattern scan of an executed plan.

    Walks the operator tree for scan-shaped nodes (iterator ``IndexScan``
    and vectorized ``IdScan`` — matched by name so this module need not
    import the vectorized family) and reports each one's planner estimate
    against the rows it actually produced, in the dict shape
    :class:`repro.obs.querylog.ScanObservation` parses.

    ``leading`` marks scans that executed exactly once against an empty
    ambient binding — the left-most scan of a join chain (or the first
    child of a once-executed vectorized BGP). Only those are directly
    comparable to the planner's unconditioned estimate; inner scans run
    conditioned on outer rows, where estimate and actual measure different
    quantities.
    """
    observations: list[dict] = []
    if root is None:
        return observations

    def visit(node: PhysicalOperator, leading: bool) -> None:
        name = node.name
        pattern = getattr(node, "pattern", None)
        if isinstance(pattern, TriplePatternNode) and name in (
            "IndexScan", "IdScan"
        ):
            if not node.executions:
                return  # never pulled (e.g. short-circuited LIMIT)
            observations.append({
                "predicate": _pattern_predicate(pattern),
                "mask": _pattern_mask(pattern),
                "est": node.estimated_rows,
                "actual": node.actual_rows,
                "executions": node.executions,
                "leading": leading and node.executions <= 1,
            })
            return
        children = node.children
        if not children:
            return
        if name == "VectorizedBGP":
            # Children are the component's scans in join order; only the
            # first runs unconditioned, and only when the BGP itself did.
            first = leading and node.executions <= 1
            for index, child in enumerate(children):
                visit(child, first and index == 0)
        elif name in ("NestedLoopJoin", "LeftJoin"):
            visit(children[0], leading)
            for child in children[1:]:
                visit(child, False)
        else:
            # Unary wrappers (Filter/Project/Slice/...), HashJoin (both
            # sides run against the ambient context), Union branches.
            for child in children:
                visit(child, leading)

    visit(root, True)
    return observations


def execution_strategy(root: PhysicalOperator | None) -> str:
    """Which engine executed a plan: ``iterator``, ``vectorized:<kinds>``
    (sorted, ``+``-joined when a query mixes BGP strategies), or ``none``
    for plans without a root (e.g. DESCRIBE without a pattern)."""
    if root is None:
        return "none"
    strategies: set[str] = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if node.name == "VectorizedBGP":
            strategies.add(str(getattr(node, "strategy", "binary")))
        stack.extend(node.children)
    if strategies:
        return "vectorized:" + "+".join(sorted(strategies))
    return "iterator"
