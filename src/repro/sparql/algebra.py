"""Translation of parsed graph patterns into an algebra tree.

Follows the SPARQL 1.1 semantics for group graph patterns: adjacent basic
patterns merge into one BGP, OPTIONAL becomes a left join against the group
built so far, sibling FILTERs scope over the whole group, BIND extends the
running group. The algebra is deliberately small — it is what the
evaluator (:mod:`repro.sparql.eval`) walks and the optimizer
(:mod:`repro.sparql.optimizer`) rewrites.
"""

from __future__ import annotations

from dataclasses import dataclass

from .nodes import (
    BindPattern,
    Expression,
    FilterPattern,
    GroupGraphPattern,
    OptionalPattern,
    TriplePatternNode,
    UnionPattern,
    ValuesPattern,
)

__all__ = [
    "AlgebraNode",
    "BGP",
    "Join",
    "LeftJoin",
    "Union",
    "Filter",
    "Extend",
    "Values",
    "translate_group",
]


class AlgebraNode:
    """Marker base class for algebra operators."""

    __slots__ = ()


@dataclass(frozen=True)
class BGP(AlgebraNode):
    """A basic graph pattern: a conjunction of triple patterns."""

    patterns: tuple[TriplePatternNode, ...]


@dataclass(frozen=True)
class Join(AlgebraNode):
    left: AlgebraNode
    right: AlgebraNode


@dataclass(frozen=True)
class LeftJoin(AlgebraNode):
    """OPTIONAL: keep every left solution, extend when right matches."""

    left: AlgebraNode
    right: AlgebraNode


@dataclass(frozen=True)
class Union(AlgebraNode):
    branches: tuple[AlgebraNode, ...]


@dataclass(frozen=True)
class Filter(AlgebraNode):
    expression: Expression
    input: AlgebraNode


@dataclass(frozen=True)
class Extend(AlgebraNode):
    """BIND(expr AS ?var) over the input solutions."""

    input: AlgebraNode
    variable: object  # Variable; object to avoid import cycle in dataclass repr
    expression: Expression


@dataclass(frozen=True)
class Values(AlgebraNode):
    """Inline data: solutions joined against the group."""

    pattern: ValuesPattern


_EMPTY_BGP = BGP(())


def translate_group(group: GroupGraphPattern) -> AlgebraNode:
    """Translate one ``{ ... }`` group into algebra."""
    current: AlgebraNode = _EMPTY_BGP
    pending_triples: list[TriplePatternNode] = []
    filters: list[Expression] = []

    def flush_triples() -> None:
        nonlocal current
        if not pending_triples:
            return
        bgp = BGP(tuple(pending_triples))
        pending_triples.clear()
        current = bgp if current == _EMPTY_BGP else Join(current, bgp)

    for element in group.elements:
        if isinstance(element, TriplePatternNode):
            pending_triples.append(element)
        elif isinstance(element, FilterPattern):
            filters.append(element.expression)
        elif isinstance(element, OptionalPattern):
            flush_triples()
            current = LeftJoin(current, translate_group(element.pattern))
        elif isinstance(element, UnionPattern):
            flush_triples()
            union = Union(tuple(translate_group(g) for g in element.alternatives))
            current = union if current == _EMPTY_BGP else Join(current, union)
        elif isinstance(element, BindPattern):
            flush_triples()
            current = Extend(current, element.variable, element.expression)
        elif isinstance(element, ValuesPattern):
            flush_triples()
            values = Values(element)
            current = values if current == _EMPTY_BGP else Join(current, values)
        elif isinstance(element, GroupGraphPattern):
            flush_triples()
            sub = translate_group(element)
            current = sub if current == _EMPTY_BGP else Join(current, sub)
        else:  # pragma: no cover - parser only emits the kinds above
            raise TypeError(f"unknown group element: {element!r}")

    flush_triples()
    for expression in filters:
        current = Filter(expression, current)
    return current
