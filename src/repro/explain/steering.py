"""Explore-by-example query steering (Dimitriadou et al. [37]).

Survey §2, assisting users: "other approaches help users to discover
interest areas in the dataset; by capturing user interests, they guide her
to interesting data parts; e.g., [37]". The interaction: the user labels a
few result objects relevant / irrelevant; the system learns a predicate
region and proposes the next query.

:class:`ExampleSteering` implements the classic greedy box learner over
numeric attributes: the relevant region is the bounding box of positive
examples per attribute, shrunk on the attributes that best exclude
negatives (information-gain-style attribute selection).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["LabeledExample", "RegionPredicate", "ExampleSteering"]

Row = dict[str, object]


@dataclass(frozen=True)
class LabeledExample:
    row: Row
    relevant: bool


@dataclass
class RegionPredicate:
    """A conjunctive numeric box: attribute → [low, high]."""

    bounds: dict[str, tuple[float, float]] = field(default_factory=dict)

    def matches(self, row: Row) -> bool:
        for attribute, (low, high) in self.bounds.items():
            value = row.get(attribute)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                return False
            if not low <= float(value) <= high:
                return False
        return True

    def describe(self) -> str:
        if not self.bounds:
            return "(everything)"
        return " AND ".join(
            f"{low:g} <= {attribute} <= {high:g}"
            for attribute, (low, high) in sorted(self.bounds.items())
        )

    def to_sparql_filter(self, variable_of: dict[str, str]) -> str:
        """Render as a SPARQL FILTER body (attribute → ?var mapping)."""
        clauses = [
            f"?{variable_of[attribute]} >= {low:g} && ?{variable_of[attribute]} <= {high:g}"
            for attribute, (low, high) in sorted(self.bounds.items())
            if attribute in variable_of
        ]
        return " && ".join(clauses)


class ExampleSteering:
    """Accumulates labels, learns a region, scores candidate objects."""

    def __init__(self, attributes: list[str]) -> None:
        if not attributes:
            raise ValueError("need at least one steering attribute")
        self.attributes = list(attributes)
        self.examples: list[LabeledExample] = []

    def label(self, row: Row, relevant: bool) -> None:
        self.examples.append(LabeledExample(dict(row), relevant))

    @property
    def positives(self) -> list[Row]:
        return [e.row for e in self.examples if e.relevant]

    @property
    def negatives(self) -> list[Row]:
        return [e.row for e in self.examples if not e.relevant]

    def learn_region(self) -> RegionPredicate:
        """The positives' bounding box, restricted to attributes that also
        separate at least one negative (uninformative bounds are dropped)."""
        positives = self.positives
        if not positives:
            raise ValueError("need at least one relevant example")
        region = RegionPredicate()
        for attribute in self.attributes:
            values = [
                float(row[attribute])
                for row in positives
                if isinstance(row.get(attribute), (int, float))
                and not isinstance(row.get(attribute), bool)
            ]
            if not values:
                continue
            region.bounds[attribute] = (min(values), max(values))
        if not self.negatives:
            return region
        # keep only bounds that exclude at least one negative — the others
        # add no information and over-constrain future queries
        informative: dict[str, tuple[float, float]] = {}
        for attribute, (low, high) in region.bounds.items():
            excludes = any(
                isinstance(row.get(attribute), (int, float))
                and not isinstance(row.get(attribute), bool)
                and not low <= float(row[attribute]) <= high
                for row in self.negatives
            )
            if excludes:
                informative[attribute] = (low, high)
        region.bounds = informative or region.bounds
        return region

    def accuracy(self, region: RegionPredicate | None = None) -> float:
        """Training accuracy of the learned region over the labels."""
        if not self.examples:
            return 0.0
        region = region or self.learn_region()
        correct = sum(
            1 for e in self.examples if region.matches(e.row) == e.relevant
        )
        return correct / len(self.examples)

    def next_candidates(
        self, pool: list[Row], k: int = 5, region: RegionPredicate | None = None
    ) -> list[Row]:
        """Unlabeled rows inside the region — what the system shows next."""
        if k < 1:
            raise ValueError("k must be positive")
        region = region or self.learn_region()
        labeled = [e.row for e in self.examples]
        fresh = [row for row in pool if row not in labeled and region.matches(row)]
        return fresh[:k]
